//! Addressing: servers and clients.

use std::fmt;

/// Identifier of a location server within one service deployment.
///
/// Server ids are assigned by the hierarchy builder in breadth-first
/// order (the root is always `ServerId(0)`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a client of the location service.
///
/// A mobile device usually has both roles — tracked object and client —
/// so a `ClientId` frequently corresponds to a tracked object id, but
/// stationary clients (e.g. a fleet-dispatch console) get their own.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A network-addressable participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A location server.
    Server(ServerId),
    /// A client / tracked object.
    Client(ClientId),
}

impl Endpoint {
    /// The server id, when this endpoint is a server.
    pub fn as_server(self) -> Option<ServerId> {
        match self {
            Endpoint::Server(id) => Some(id),
            Endpoint::Client(_) => None,
        }
    }

    /// The client id, when this endpoint is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            Endpoint::Client(id) => Some(id),
            Endpoint::Server(_) => None,
        }
    }
}

impl From<ServerId> for Endpoint {
    fn from(id: ServerId) -> Self {
        Endpoint::Server(id)
    }
}

impl From<ClientId> for Endpoint {
    fn from(id: ClientId) -> Self {
        Endpoint::Client(id)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Server(id) => write!(f, "{id}"),
            Endpoint::Client(id) => write!(f, "{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let s: Endpoint = ServerId(3).into();
        assert_eq!(s.as_server(), Some(ServerId(3)));
        assert_eq!(s.as_client(), None);
        let c: Endpoint = ClientId(7).into();
        assert_eq!(c.as_client(), Some(ClientId(7)));
        assert_eq!(c.as_server(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Endpoint::from(ServerId(4)).to_string(), "s4");
        assert_eq!(Endpoint::from(ClientId(11)).to_string(), "c11");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [Endpoint::from(ClientId(1)),
            Endpoint::from(ServerId(2)),
            Endpoint::from(ServerId(0))];
        v.sort();
        assert_eq!(v[0], Endpoint::Server(ServerId(0)));
    }
}
