//! Transports and wire infrastructure for the hiloc location service.
//!
//! The paper's prototype ran its protocols "on top of UDP to achieve
//! efficient client/server and server/server interactions" on a 100 Mbit
//! LAN of five workstations. hiloc keeps the server logic sans-IO
//! (servers consume and emit [`Envelope`]s) and provides three
//! interchangeable ways to move envelopes:
//!
//! * [`SimNet`] — a deterministic virtual-time network with configurable
//!   per-link latency, jitter, loss and duplication, plus full message
//!   tracing. Used for the reproducible experiments and the
//!   message-flow tests of the paper's Figure 6.
//! * [`ChannelNetwork`] — in-process channels between OS threads, for
//!   wall-clock throughput measurements (Table 2).
//! * [`UdpEndpoint`] — real UDP datagrams over blocking std sockets,
//!   one envelope per datagram, for deployments across processes/hosts.
//!
//! Message payloads are generic: anything implementing [`WireCodec`]
//! (the protocol itself lives in `hiloc-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel_net;
mod endpoint;
mod sim_net;
mod udp;
pub mod wire;

pub use channel_net::{ChannelNetwork, Mailbox, SendOutcome, DEFAULT_MAILBOX_CAP};
pub use endpoint::{ClientId, Endpoint, ServerId};
pub use sim_net::{FaultPlan, LatencyModel, LatencySpike, LinkFault, Partition, SimNet, TraceEntry};
pub use udp::{RecvBatch, SendBatch, UdpEndpoint, UdpError};
pub use wire::WireCodec;

use std::fmt;

/// A correlation identifier linking requests to their responses.
///
/// The paper's pseudocode blocks inside handlers (`receive handoverRes`);
/// hiloc's servers are event-driven instead and park pending operations
/// keyed by `CorrId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CorrId(pub u64);

impl CorrId {
    /// A correlation id that is never allocated (usable as a sentinel).
    pub const NONE: CorrId = CorrId(0);
}

impl fmt::Display for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corr#{}", self.0)
    }
}

/// Monotonic [`CorrId`] generator (not thread-safe; each node owns one).
#[derive(Debug, Default)]
pub struct CorrIdGen {
    next: u64,
}

impl CorrIdGen {
    /// Creates a generator starting at 1 (0 is the sentinel).
    pub fn new() -> Self {
        CorrIdGen { next: 0 }
    }

    /// Creates a generator in a private namespace: ids are
    /// `(namespace << 40) + n`. Nodes use their own id as namespace so
    /// correlation ids are globally unique across a deployment.
    pub fn namespaced(namespace: u64) -> Self {
        CorrIdGen { next: namespace << 40 }
    }

    /// Allocates the next correlation id.
    pub fn next_id(&mut self) -> CorrId {
        self.next += 1;
        CorrId(self.next)
    }
}

/// An addressed message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: Endpoint,
    /// Destination address.
    pub to: Endpoint,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: Endpoint, to: Endpoint, msg: M) -> Self {
        Envelope { from, to, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_id_gen_is_monotonic_and_skips_sentinel() {
        let mut g = CorrIdGen::new();
        let a = g.next_id();
        let b = g.next_id();
        assert_ne!(a, CorrId::NONE);
        assert!(b > a);
    }

    #[test]
    fn envelope_roundtrip_fields() {
        let e = Envelope::new(
            Endpoint::Server(ServerId(1)),
            Endpoint::Client(ClientId(9)),
            42u32,
        );
        assert_eq!(e.from, Endpoint::Server(ServerId(1)));
        assert_eq!(e.to, Endpoint::Client(ClientId(9)));
        assert_eq!(e.msg, 42);
    }
}
