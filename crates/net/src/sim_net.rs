//! Deterministic virtual-time network simulator.

use crate::{Endpoint, Envelope};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-link latency model, all values in virtual microseconds.
///
/// The defaults approximate the paper's testbed: five machines on a
/// switched 100 Mbit Ethernet, where a small UDP datagram takes a few
/// hundred microseconds end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed one-way latency between distinct endpoints.
    pub base_us: u64,
    /// Uniform jitter added on top: `U[0, jitter_us]`.
    pub jitter_us: u64,
    /// Latency for an endpoint sending to itself (loopback processing).
    pub local_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~250 µs one-way LAN latency, ±50 µs jitter, 20 µs loopback.
        LatencyModel { base_us: 250, jitter_us: 50, local_us: 20 }
    }
}

impl LatencyModel {
    /// A zero-latency model (messages arrive in send order at the same
    /// virtual instant) — useful for pure protocol-logic tests.
    pub fn instant() -> Self {
        LatencyModel { base_us: 0, jitter_us: 0, local_us: 0 }
    }
}

/// Fault injection knobs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

/// A record of one message delivery, for flow tests and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual time at which the message was sent.
    pub sent_us: u64,
    /// Virtual time at which it was (or will be) delivered.
    pub deliver_us: u64,
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Short label describing the message (payload-provided).
    pub label: &'static str,
}

/// A deterministic, virtual-time message network.
///
/// All sends go through a priority queue ordered by delivery time (ties
/// broken by send sequence, so FIFO per simultaneous batch). The driver
/// pops messages with [`SimNet::next`], advancing the virtual clock.
/// With a fixed seed, runs are bit-for-bit reproducible — the property
/// the hiloc experiment harness relies on.
///
/// # Example
///
/// ```
/// use hiloc_net::{Endpoint, Envelope, LatencyModel, FaultPlan, ServerId, SimNet};
///
/// let mut net: SimNet<&'static str> = SimNet::new(LatencyModel::default(), FaultPlan::none(), 42);
/// net.send(Envelope::new(ServerId(0).into(), ServerId(1).into(), "hello"));
/// let (t, env) = net.next().unwrap();
/// assert!(t >= 250);
/// assert_eq!(env.msg, "hello");
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    now_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, QueuedEnvelope<M>)>>,
    latency: LatencyModel,
    faults: FaultPlan,
    rng: StdRng,
    trace: Option<Vec<TraceEntry>>,
    labeler: Option<fn(&M) -> &'static str>,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

/// Wrapper so the heap never compares message payloads.
#[derive(Debug, Clone)]
struct QueuedEnvelope<M>(Envelope<M>);

impl<M> PartialEq for QueuedEnvelope<M> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<M> Eq for QueuedEnvelope<M> {}
impl<M> PartialOrd for QueuedEnvelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEnvelope<M> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<M> SimNet<M> {
    /// Creates a network with the given latency model, fault plan and
    /// RNG seed.
    pub fn new(latency: LatencyModel, faults: FaultPlan, seed: u64) -> Self {
        SimNet {
            now_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            latency,
            faults,
            rng: StdRng::seed_from_u64(seed),
            trace: None,
            labeler: None,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Enables message tracing; `labeler` renders a payload into a
    /// short static label (e.g. the message kind).
    pub fn enable_trace(&mut self, labeler: fn(&M) -> &'static str) {
        self.trace = Some(Vec::new());
        self.labeler = Some(labeler);
    }

    /// The trace collected so far (empty when tracing is disabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Clears the collected trace (tracing stays enabled).
    pub fn clear_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Counters: `(sent, delivered, dropped)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.sent, self.delivered, self.dropped)
    }

    /// Sends an envelope, scheduling its delivery per the latency model
    /// and fault plan.
    pub fn send(&mut self, env: Envelope<M>)
    where
        M: Clone,
    {
        self.sent += 1;
        if self.faults.drop_prob > 0.0 && self.rng.random_bool(self.faults.drop_prob) {
            self.dropped += 1;
            return;
        }
        let copies = if self.faults.duplicate_prob > 0.0
            && self.rng.random_bool(self.faults.duplicate_prob)
        {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let latency = self.sample_latency(env.from, env.to);
            let deliver = self.now_us + latency;
            if let (Some(trace), Some(labeler)) = (&mut self.trace, self.labeler) {
                trace.push(TraceEntry {
                    sent_us: self.now_us,
                    deliver_us: deliver,
                    from: env.from,
                    to: env.to,
                    label: labeler(&env.msg),
                });
            }
            self.seq += 1;
            self.queue.push(Reverse((deliver, self.seq, QueuedEnvelope(env.clone()))));
        }
    }

    /// Schedules a message at an absolute virtual time (used by drivers
    /// for timers; bypasses latency and faults).
    pub fn send_at(&mut self, deliver_us: u64, env: Envelope<M>) {
        self.seq += 1;
        let t = deliver_us.max(self.now_us);
        self.queue.push(Reverse((t, self.seq, QueuedEnvelope(env))));
    }

    /// The delivery time of the earliest in-flight message, when any.
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Delivers the next message, advancing virtual time to its
    /// delivery instant. Returns `None` when the network is quiet.
    ///
    /// (Not an [`Iterator`]: delivery mutates the virtual clock and the
    /// caller usually interleaves sends between calls.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, Envelope<M>)> {
        let Reverse((t, _, QueuedEnvelope(env))) = self.queue.pop()?;
        self.now_us = self.now_us.max(t);
        self.delivered += 1;
        Some((self.now_us, env))
    }

    /// Advances virtual time without delivering anything (e.g. to model
    /// idle periods before a timer fires).
    pub fn advance_to(&mut self, t_us: u64) {
        self.now_us = self.now_us.max(t_us);
    }

    fn sample_latency(&mut self, from: Endpoint, to: Endpoint) -> u64 {
        let base = if from == to { self.latency.local_us } else { self.latency.base_us };
        let jitter = if self.latency.jitter_us > 0 {
            self.rng.random_range(0..=self.latency.jitter_us)
        } else {
            0
        };
        base + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, ServerId};

    fn env(from: u32, to: u32, msg: u32) -> Envelope<u32> {
        Envelope::new(ServerId(from).into(), ServerId(to).into(), msg)
    }

    #[test]
    fn delivery_in_time_order() {
        let mut net: SimNet<u32> =
            SimNet::new(LatencyModel { base_us: 100, jitter_us: 0, local_us: 10 }, FaultPlan::none(), 1);
        net.send(env(0, 1, 1)); // arrives t=100
        net.send(Envelope::new(ServerId(2).into(), ServerId(2).into(), 2u32)); // local, t=10
        let (t1, e1) = net.next().unwrap();
        assert_eq!((t1, e1.msg), (10, 2));
        let (t2, e2) = net.next().unwrap();
        assert_eq!((t2, e2.msg), (100, 1));
        assert!(net.next().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), FaultPlan::none(), 1);
        for i in 0..10 {
            net.send(env(0, 1, i));
        }
        for i in 0..10 {
            assert_eq!(net.next().unwrap().1.msg, i);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net: SimNet<u32> = SimNet::new(
                LatencyModel { base_us: 100, jitter_us: 80, local_us: 0 },
                FaultPlan { drop_prob: 0.2, duplicate_prob: 0.1 },
                seed,
            );
            for i in 0..100 {
                net.send(env(0, 1, i));
            }
            let mut got = Vec::new();
            while let Some((t, e)) = net.next() {
                got.push((t, e.msg));
            }
            got
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drops_honour_probability_roughly() {
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel::instant(),
            FaultPlan { drop_prob: 0.5, duplicate_prob: 0.0 },
            99,
        );
        for i in 0..1_000 {
            net.send(env(0, 1, i));
        }
        let (sent, _, dropped) = net.counters();
        assert_eq!(sent, 1_000);
        assert!((300..700).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel::instant(),
            FaultPlan { drop_prob: 0.0, duplicate_prob: 1.0 },
            5,
        );
        net.send(env(0, 1, 42));
        assert_eq!(net.next().unwrap().1.msg, 42);
        assert_eq!(net.next().unwrap().1.msg, 42);
        assert!(net.next().is_none());
    }

    #[test]
    fn clock_monotonic_and_advance() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::default(), FaultPlan::none(), 3);
        net.send(env(0, 1, 1));
        let (t, _) = net.next().unwrap();
        assert!(t >= 250);
        net.advance_to(t + 1_000);
        assert_eq!(net.now_us(), t + 1_000);
        // send_at in the past clamps to now.
        net.send_at(0, env(1, 0, 2));
        let (t2, _) = net.next().unwrap();
        assert_eq!(t2, net.now_us());
    }

    #[test]
    fn trace_records_flows() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), FaultPlan::none(), 1);
        net.enable_trace(|m| if *m == 1 { "one" } else { "other" });
        net.send(env(0, 1, 1));
        net.send(Envelope::new(ClientId(5).into(), ServerId(0).into(), 9u32));
        assert_eq!(net.trace().len(), 2);
        assert_eq!(net.trace()[0].label, "one");
        assert_eq!(net.trace()[1].from, Endpoint::Client(ClientId(5)));
        net.clear_trace();
        assert!(net.trace().is_empty());
    }
}
