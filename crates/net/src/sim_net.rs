//! Deterministic virtual-time network simulator.

use crate::{Endpoint, Envelope};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-link latency model, all values in virtual microseconds.
///
/// The defaults approximate the paper's testbed: five machines on a
/// switched 100 Mbit Ethernet, where a small UDP datagram takes a few
/// hundred microseconds end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed one-way latency between distinct endpoints.
    pub base_us: u64,
    /// Uniform jitter added on top: `U[0, jitter_us]`.
    pub jitter_us: u64,
    /// Latency for an endpoint sending to itself (loopback processing).
    pub local_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~250 µs one-way LAN latency, ±50 µs jitter, 20 µs loopback.
        LatencyModel { base_us: 250, jitter_us: 50, local_us: 20 }
    }
}

impl LatencyModel {
    /// A zero-latency model (messages arrive in send order at the same
    /// virtual instant) — useful for pure protocol-logic tests.
    pub fn instant() -> Self {
        LatencyModel { base_us: 0, jitter_us: 0, local_us: 0 }
    }
}

/// Validates a probability on fault-plan construction: silently feeding
/// NaN or an out-of-range value into the RNG draw would misbehave (NaN
/// compares false, so `random_bool(NaN)` never fires) — reject it here.
fn checked_prob(p: f64, what: &str) -> f64 {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "{what} must be a finite probability in [0, 1], got {p}"
    );
    p
}

/// Validates a virtual-time fault window.
fn checked_window(start_us: u64, end_us: u64, what: &str) -> (u64, u64) {
    assert!(start_us <= end_us, "{what} window must have start <= end, got [{start_us}, {end_us})");
    (start_us, end_us)
}

/// A per-link fault override: matches messages by sender and/or
/// receiver (a `None` side matches any endpoint) and layers extra
/// drop/duplication probability and latency on top of the global plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkFault {
    from: Option<Endpoint>,
    to: Option<Endpoint>,
    drop_prob: f64,
    duplicate_prob: f64,
    extra_latency_us: u64,
}

impl LinkFault {
    /// A fault on the directed link `from → to`.
    pub fn between(from: Endpoint, to: Endpoint) -> Self {
        LinkFault { from: Some(from), to: Some(to), ..Default::default() }
    }

    /// A fault on every message sent by `from`.
    pub fn from_endpoint(from: Endpoint) -> Self {
        LinkFault { from: Some(from), ..Default::default() }
    }

    /// A fault on every message addressed to `to`.
    pub fn to_endpoint(to: Endpoint) -> Self {
        LinkFault { to: Some(to), ..Default::default() }
    }

    /// Sets the link's drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN, infinite or outside `[0, 1]`.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = checked_prob(p, "link drop_prob");
        self
    }

    /// Sets the link's duplication probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN, infinite or outside `[0, 1]`.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = checked_prob(p, "link duplicate_prob");
        self
    }

    /// Adds fixed extra one-way latency on the link.
    #[must_use]
    pub fn with_extra_latency(mut self, us: u64) -> Self {
        self.extra_latency_us = us;
        self
    }

    /// Whether this fault applies to a `from → to` message.
    pub fn matches(&self, from: Endpoint, to: Endpoint) -> bool {
        self.from.map(|f| f == from).unwrap_or(true) && self.to.map(|t| t == to).unwrap_or(true)
    }
}

/// A timed network partition between two endpoint sets: while active,
/// every message crossing between the sets (either direction) is
/// dropped. Endpoints in neither set are unaffected.
///
/// The cut is evaluated at *send* time; a message sent just before the
/// window opens still arrives (it was already on the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    start_us: u64,
    end_us: u64,
    a: Vec<Endpoint>,
    /// `None` means "everyone not in `a`" (the set is isolated).
    b: Option<Vec<Endpoint>>,
}

impl Partition {
    /// A partition separating set `a` from set `b` during
    /// `[start_us, end_us)`.
    ///
    /// # Panics
    ///
    /// Panics when the window is inverted or either set is empty.
    pub fn between(start_us: u64, end_us: u64, a: Vec<Endpoint>, b: Vec<Endpoint>) -> Self {
        let (start_us, end_us) = checked_window(start_us, end_us, "partition");
        assert!(!a.is_empty() && !b.is_empty(), "partition sets must be non-empty");
        Partition { start_us, end_us, a, b: Some(b) }
    }

    /// A partition isolating set `a` from everyone else during
    /// `[start_us, end_us)`.
    ///
    /// # Panics
    ///
    /// Panics when the window is inverted or the set is empty.
    pub fn isolate(start_us: u64, end_us: u64, a: Vec<Endpoint>) -> Self {
        let (start_us, end_us) = checked_window(start_us, end_us, "partition");
        assert!(!a.is_empty(), "partition set must be non-empty");
        Partition { start_us, end_us, a, b: None }
    }

    /// Whether the partition is active at virtual time `now`.
    pub fn active_at(&self, now_us: u64) -> bool {
        self.start_us <= now_us && now_us < self.end_us
    }

    /// Whether a `from → to` message sent at `now` crosses the cut.
    pub fn severs(&self, now_us: u64, from: Endpoint, to: Endpoint) -> bool {
        if !self.active_at(now_us) {
            return false;
        }
        let in_a = |e: Endpoint| self.a.contains(&e);
        let in_b = |e: Endpoint| match &self.b {
            Some(b) => b.contains(&e),
            None => !self.a.contains(&e),
        };
        (in_a(from) && in_b(to)) || (in_b(from) && in_a(to))
    }

    /// The partition window `[start_us, end_us)`.
    pub fn window(&self) -> (u64, u64) {
        (self.start_us, self.end_us)
    }
}

/// A timed global latency spike: every message sent during
/// `[start_us, end_us)` takes `extra_us` additional one-way latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpike {
    start_us: u64,
    end_us: u64,
    extra_us: u64,
}

impl LatencySpike {
    /// A spike of `extra_us` during `[start_us, end_us)`.
    ///
    /// # Panics
    ///
    /// Panics when the window is inverted.
    pub fn new(start_us: u64, end_us: u64, extra_us: u64) -> Self {
        let (start_us, end_us) = checked_window(start_us, end_us, "latency spike");
        LatencySpike { start_us, end_us, extra_us }
    }

    /// The extra latency this spike contributes at `now`.
    pub fn extra_at(&self, now_us: u64) -> u64 {
        if self.start_us <= now_us && now_us < self.end_us {
            self.extra_us
        } else {
            0
        }
    }
}

/// A schedulable fault model: global loss/duplication/reordering plus
/// per-link overrides, timed latency spikes and timed network
/// partitions between endpoint sets.
///
/// All probabilities are validated on construction (NaN or values
/// outside `[0, 1]` are rejected with a panic rather than silently
/// misbehaving inside the RNG draw). The plan is immutable once handed
/// to a [`SimNet`]; drivers swap a new plan in with
/// [`SimNet::set_faults`] (e.g. to heal a network mid-run).
///
/// # Example
///
/// ```
/// use hiloc_net::{Endpoint, FaultPlan, LinkFault, Partition, ServerId};
///
/// let plan = FaultPlan::none()
///     .with_drop(0.05)
///     .with_reorder(0.2, 10_000)
///     .with_link(LinkFault::to_endpoint(ServerId(3).into()).with_drop(0.5))
///     .with_partition(Partition::isolate(
///         1_000_000,
///         5_000_000,
///         vec![ServerId(1).into(), ServerId(2).into()],
///     ));
/// assert!(plan.severs(2_000_000, ServerId(1).into(), ServerId(0).into()));
/// assert!(!plan.severs(6_000_000, ServerId(1).into(), ServerId(0).into()));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    drop_prob: f64,
    duplicate_prob: f64,
    reorder_prob: f64,
    reorder_spread_us: u64,
    links: Vec<LinkFault>,
    partitions: Vec<Partition>,
    spikes: Vec<LatencySpike>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform global loss and duplication (the classic lossy-UDP
    /// model).
    ///
    /// # Panics
    ///
    /// Panics when either probability is NaN, infinite or outside
    /// `[0, 1]`.
    pub fn uniform(drop_prob: f64, duplicate_prob: f64) -> Self {
        FaultPlan::none().with_drop(drop_prob).with_duplicate(duplicate_prob)
    }

    /// Sets the global drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN, infinite or outside `[0, 1]`.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = checked_prob(p, "drop_prob");
        self
    }

    /// Sets the global duplication probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN, infinite or outside `[0, 1]`.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = checked_prob(p, "duplicate_prob");
        self
    }

    /// Enables message reordering: with probability `p`, a message gets
    /// extra latency drawn uniformly from `[0, spread_us]`, letting
    /// later sends overtake it.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN, infinite or outside `[0, 1]`.
    #[must_use]
    pub fn with_reorder(mut self, p: f64, spread_us: u64) -> Self {
        self.reorder_prob = checked_prob(p, "reorder_prob");
        self.reorder_spread_us = spread_us;
        self
    }

    /// Adds a per-link fault override.
    #[must_use]
    pub fn with_link(mut self, link: LinkFault) -> Self {
        self.links.push(link);
        self
    }

    /// Adds a timed partition.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Adds a timed latency spike.
    #[must_use]
    pub fn with_spike(mut self, spike: LatencySpike) -> Self {
        self.spikes.push(spike);
        self
    }

    /// The global drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The global duplication probability.
    pub fn duplicate_prob(&self) -> f64 {
        self.duplicate_prob
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Whether any partition severs a `from → to` message sent at `now`.
    pub fn severs(&self, now_us: u64, from: Endpoint, to: Endpoint) -> bool {
        self.partitions.iter().any(|p| p.severs(now_us, from, to))
    }

    /// Effective `(drop_prob, duplicate_prob, extra_latency_us)` for a
    /// `from → to` message: the maximum probability among the global
    /// plan and matching link overrides, and the sum of link latencies.
    fn link_effects(&self, from: Endpoint, to: Endpoint) -> (f64, f64, u64) {
        let mut drop = self.drop_prob;
        let mut dup = self.duplicate_prob;
        let mut extra = 0u64;
        for l in &self.links {
            if l.matches(from, to) {
                drop = drop.max(l.drop_prob);
                dup = dup.max(l.duplicate_prob);
                extra = extra.saturating_add(l.extra_latency_us);
            }
        }
        (drop, dup, extra)
    }

    /// Total spike latency active at `now`.
    fn spike_extra_at(&self, now_us: u64) -> u64 {
        self.spikes.iter().map(|s| s.extra_at(now_us)).sum()
    }

    /// A human-readable description of the fault timeline — printed by
    /// the chaos harness with the seed so any failure can be replayed.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "drop={} dup={} reorder={}/{}us",
            self.drop_prob, self.duplicate_prob, self.reorder_prob, self.reorder_spread_us
        );
        for l in &self.links {
            let _ = write!(
                out,
                "\nlink {:?}->{:?}: drop={} dup={} +{}us",
                l.from, l.to, l.drop_prob, l.duplicate_prob, l.extra_latency_us
            );
        }
        for p in &self.partitions {
            let _ = write!(
                out,
                "\npartition [{}us, {}us): {:?} <-> {}",
                p.start_us,
                p.end_us,
                p.a,
                match &p.b {
                    Some(b) => format!("{b:?}"),
                    None => "rest".to_string(),
                }
            );
        }
        for s in &self.spikes {
            let _ = write!(out, "\nspike [{}us, {}us): +{}us", s.start_us, s.end_us, s.extra_us);
        }
        out
    }
}

/// A record of one message delivery, for flow tests and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual time at which the message was sent.
    pub sent_us: u64,
    /// Virtual time at which it was (or will be) delivered.
    pub deliver_us: u64,
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Short label describing the message (payload-provided).
    pub label: &'static str,
}

/// A deterministic, virtual-time message network.
///
/// All sends go through a priority queue ordered by delivery time (ties
/// broken by send sequence, so FIFO per simultaneous batch). The driver
/// pops messages with [`SimNet::next`], advancing the virtual clock.
/// With a fixed seed, runs are bit-for-bit reproducible — the property
/// the hiloc experiment harness relies on.
///
/// # Example
///
/// ```
/// use hiloc_net::{Endpoint, Envelope, LatencyModel, FaultPlan, ServerId, SimNet};
///
/// let mut net: SimNet<&'static str> = SimNet::new(LatencyModel::default(), FaultPlan::none(), 42);
/// net.send(Envelope::new(ServerId(0).into(), ServerId(1).into(), "hello"));
/// let (t, env) = net.next().unwrap();
/// assert!(t >= 250);
/// assert_eq!(env.msg, "hello");
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    now_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, QueuedEnvelope<M>)>>,
    latency: LatencyModel,
    faults: FaultPlan,
    rng: StdRng,
    trace: Option<Vec<TraceEntry>>,
    labeler: Option<fn(&M) -> &'static str>,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

/// Wrapper so the heap never compares message payloads.
#[derive(Debug, Clone)]
struct QueuedEnvelope<M>(Envelope<M>);

impl<M> PartialEq for QueuedEnvelope<M> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<M> Eq for QueuedEnvelope<M> {}
impl<M> PartialOrd for QueuedEnvelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEnvelope<M> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<M> SimNet<M> {
    /// Creates a network with the given latency model, fault plan and
    /// RNG seed.
    pub fn new(latency: LatencyModel, faults: FaultPlan, seed: u64) -> Self {
        SimNet {
            now_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            latency,
            faults,
            rng: StdRng::seed_from_u64(seed),
            trace: None,
            labeler: None,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Enables message tracing; `labeler` renders a payload into a
    /// short static label (e.g. the message kind).
    pub fn enable_trace(&mut self, labeler: fn(&M) -> &'static str) {
        self.trace = Some(Vec::new());
        self.labeler = Some(labeler);
    }

    /// The trace collected so far (empty when tracing is disabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Clears the collected trace (tracing stays enabled).
    pub fn clear_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Counters: `(sent, delivered, dropped)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.sent, self.delivered, self.dropped)
    }

    /// Sends an envelope, scheduling its delivery per the latency model
    /// and fault plan.
    // lint:hot_path
    pub fn send(&mut self, env: Envelope<M>)
    where
        M: Clone,
    {
        self.sent += 1;
        if self.faults.severs(self.now_us, env.from, env.to) {
            self.dropped += 1;
            return;
        }
        let (drop_prob, duplicate_prob, link_extra_us) =
            self.faults.link_effects(env.from, env.to);
        if drop_prob > 0.0 && self.rng.random_bool(drop_prob) {
            self.dropped += 1;
            return;
        }
        let copies = if duplicate_prob > 0.0 && self.rng.random_bool(duplicate_prob) {
            2
        } else {
            1
        };
        let spike_us = self.faults.spike_extra_at(self.now_us);
        // The envelope is *moved* into its queue slot; only fault
        // duplication pays a clone. The common path is clone-free per
        // hop.
        if copies == 2 {
            self.enqueue(env.clone(), link_extra_us, spike_us); // lint:allow(hot_path) fault-duplication path only; common path moves the envelope
        }
        self.enqueue(env, link_extra_us, spike_us);
    }

    /// Schedules one copy of an envelope, consuming it.
    fn enqueue(&mut self, env: Envelope<M>, link_extra_us: u64, spike_us: u64) {
        let mut latency = self
            .sample_latency(env.from, env.to)
            .saturating_add(link_extra_us)
            .saturating_add(spike_us);
        if self.faults.reorder_prob > 0.0
            && self.faults.reorder_spread_us > 0
            && self.rng.random_bool(self.faults.reorder_prob)
        {
            latency =
                latency.saturating_add(self.rng.random_range(0..=self.faults.reorder_spread_us));
        }
        let deliver = self.now_us + latency;
        if let (Some(trace), Some(labeler)) = (&mut self.trace, self.labeler) {
            trace.push(TraceEntry {
                sent_us: self.now_us,
                deliver_us: deliver,
                from: env.from,
                to: env.to,
                label: labeler(&env.msg),
            });
        }
        self.seq += 1;
        self.queue.push(Reverse((deliver, self.seq, QueuedEnvelope(env))));
    }

    /// Schedules a message at an absolute virtual time (used by drivers
    /// for timers; bypasses latency and faults).
    pub fn send_at(&mut self, deliver_us: u64, env: Envelope<M>) {
        self.seq += 1;
        let t = deliver_us.max(self.now_us);
        self.queue.push(Reverse((t, self.seq, QueuedEnvelope(env))));
    }

    /// The delivery time of the earliest in-flight message, when any.
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Delivers the next message, advancing virtual time to its
    /// delivery instant. Returns `None` when the network is quiet.
    ///
    /// (Not an [`Iterator`]: delivery mutates the virtual clock and the
    /// caller usually interleaves sends between calls.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, Envelope<M>)> {
        let Reverse((t, _, QueuedEnvelope(env))) = self.queue.pop()?;
        self.now_us = self.now_us.max(t);
        self.delivered += 1;
        Some((self.now_us, env))
    }

    /// Advances virtual time without delivering anything (e.g. to model
    /// idle periods before a timer fires).
    pub fn advance_to(&mut self, t_us: u64) {
        self.now_us = self.now_us.max(t_us);
    }

    /// Replaces the fault plan mid-run (e.g. healing a partition early,
    /// or injecting new faults from a scenario script). Messages already
    /// in flight are unaffected.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Removes all in-flight messages matching `pred` (e.g. everything
    /// addressed to a crashed server), counting them as dropped.
    /// Returns how many were discarded.
    pub fn discard_where(&mut self, mut pred: impl FnMut(&Envelope<M>) -> bool) -> usize {
        let before = self.queue.len();
        let kept: Vec<_> = std::mem::take(&mut self.queue)
            .into_vec()
            .into_iter()
            .filter(|Reverse((_, _, q))| !pred(&q.0))
            .collect();
        self.queue = BinaryHeap::from(kept);
        let removed = before - self.queue.len();
        self.dropped += removed as u64;
        removed
    }

    fn sample_latency(&mut self, from: Endpoint, to: Endpoint) -> u64 {
        let base = if from == to { self.latency.local_us } else { self.latency.base_us };
        let jitter = if self.latency.jitter_us > 0 {
            self.rng.random_range(0..=self.latency.jitter_us)
        } else {
            0
        };
        base + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, ServerId};

    fn env(from: u32, to: u32, msg: u32) -> Envelope<u32> {
        Envelope::new(ServerId(from).into(), ServerId(to).into(), msg)
    }

    #[test]
    fn delivery_in_time_order() {
        let mut net: SimNet<u32> =
            SimNet::new(LatencyModel { base_us: 100, jitter_us: 0, local_us: 10 }, FaultPlan::none(), 1);
        net.send(env(0, 1, 1)); // arrives t=100
        net.send(Envelope::new(ServerId(2).into(), ServerId(2).into(), 2u32)); // local, t=10
        let (t1, e1) = net.next().unwrap();
        assert_eq!((t1, e1.msg), (10, 2));
        let (t2, e2) = net.next().unwrap();
        assert_eq!((t2, e2.msg), (100, 1));
        assert!(net.next().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), FaultPlan::none(), 1);
        for i in 0..10 {
            net.send(env(0, 1, i));
        }
        for i in 0..10 {
            assert_eq!(net.next().unwrap().1.msg, i);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net: SimNet<u32> = SimNet::new(
                LatencyModel { base_us: 100, jitter_us: 80, local_us: 0 },
                FaultPlan::uniform(0.2, 0.1),
                seed,
            );
            for i in 0..100 {
                net.send(env(0, 1, i));
            }
            let mut got = Vec::new();
            while let Some((t, e)) = net.next() {
                got.push((t, e.msg));
            }
            got
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drops_honour_probability_roughly() {
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel::instant(),
            FaultPlan::uniform(0.5, 0.0),
            99,
        );
        for i in 0..1_000 {
            net.send(env(0, 1, i));
        }
        let (sent, _, dropped) = net.counters();
        assert_eq!(sent, 1_000);
        assert!((300..700).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel::instant(),
            FaultPlan::uniform(0.0, 1.0),
            5,
        );
        net.send(env(0, 1, 42));
        assert_eq!(net.next().unwrap().1.msg, 42);
        assert_eq!(net.next().unwrap().1.msg, 42);
        assert!(net.next().is_none());
    }

    #[test]
    fn clock_monotonic_and_advance() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::default(), FaultPlan::none(), 3);
        net.send(env(0, 1, 1));
        let (t, _) = net.next().unwrap();
        assert!(t >= 250);
        net.advance_to(t + 1_000);
        assert_eq!(net.now_us(), t + 1_000);
        // send_at in the past clamps to now.
        net.send_at(0, env(1, 0, 2));
        let (t2, _) = net.next().unwrap();
        assert_eq!(t2, net.now_us());
    }

    #[test]
    fn partition_drops_crossing_messages_then_heals() {
        let a: Endpoint = ServerId(0).into();
        let b: Endpoint = ServerId(1).into();
        let c: Endpoint = ServerId(2).into();
        let plan = FaultPlan::none().with_partition(Partition::isolate(100, 200, vec![a, b]));
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), plan, 1);
        // Before the window: crossing traffic flows.
        net.send(env(0, 2, 1));
        assert_eq!(net.next().unwrap().1.msg, 1);
        net.advance_to(150);
        // Inside the window: cut both directions, intra-set unaffected.
        net.send(env(0, 2, 2)); // a -> rest: dropped
        net.send(env(2, 1, 3)); // rest -> b: dropped
        net.send(env(0, 1, 4)); // a -> b (same side): delivered
        assert_eq!(net.next().unwrap().1.msg, 4);
        assert!(net.next().is_none());
        net.advance_to(200);
        // Healed (end is exclusive).
        net.send(env(2, 0, 5));
        assert_eq!(net.next().unwrap().1.msg, 5);
        let (sent, delivered, dropped) = net.counters();
        assert_eq!((sent, delivered, dropped), (5, 3, 2));
        let _ = c;
    }

    #[test]
    fn partition_between_two_sets_leaves_third_parties_alone() {
        let plan = FaultPlan::none().with_partition(Partition::between(
            0,
            1_000,
            vec![ServerId(0).into()],
            vec![ServerId(1).into()],
        ));
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), plan, 1);
        net.send(env(0, 1, 1)); // severed
        net.send(env(0, 2, 2)); // third party: fine
        net.send(env(2, 1, 3)); // third party: fine
        assert_eq!(net.next().unwrap().1.msg, 2);
        assert_eq!(net.next().unwrap().1.msg, 3);
        assert!(net.next().is_none());
    }

    #[test]
    fn link_fault_overrides_apply_per_link() {
        let plan = FaultPlan::none()
            .with_link(LinkFault::between(ServerId(0).into(), ServerId(1).into()).with_drop(1.0));
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), plan, 1);
        net.send(env(0, 1, 1)); // dead link
        net.send(env(1, 0, 2)); // reverse direction unaffected
        net.send(env(0, 2, 3)); // other destination unaffected
        assert_eq!(net.next().unwrap().1.msg, 2);
        assert_eq!(net.next().unwrap().1.msg, 3);
        assert!(net.next().is_none());
    }

    #[test]
    fn link_extra_latency_and_spike_delay_delivery() {
        let plan = FaultPlan::none()
            .with_link(LinkFault::to_endpoint(ServerId(1).into()).with_extra_latency(500))
            .with_spike(LatencySpike::new(0, 10_000, 1_000));
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel { base_us: 100, jitter_us: 0, local_us: 0 },
            plan,
            1,
        );
        net.send(env(0, 1, 1)); // 100 + 500 link + 1000 spike
        net.send(env(0, 2, 2)); // 100 + 1000 spike
        let (t2, e2) = net.next().unwrap();
        assert_eq!((t2, e2.msg), (1_100, 2));
        let (t1, e1) = net.next().unwrap();
        assert_eq!((t1, e1.msg), (1_600, 1));
        // After the spike window the link penalty alone remains.
        net.advance_to(10_000);
        net.send(env(0, 1, 3));
        assert_eq!(net.next().unwrap().0, 10_600);
    }

    #[test]
    fn reordering_overtakes_messages() {
        let plan = FaultPlan::none().with_reorder(0.5, 10_000);
        let mut net: SimNet<u32> = SimNet::new(
            LatencyModel { base_us: 10, jitter_us: 0, local_us: 0 },
            plan,
            3,
        );
        for i in 0..100 {
            net.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        while let Some((_, e)) = net.next() {
            got.push(e.msg);
        }
        assert_eq!(got.len(), 100, "reordering must not lose messages");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(got, sorted, "with p=0.5 over 100 sends some message must be overtaken");
    }

    #[test]
    fn discard_where_drops_in_flight_messages() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), FaultPlan::none(), 1);
        for i in 0..6 {
            net.send(env(0, i % 3, i));
        }
        let removed = net.discard_where(|e| e.to == Endpoint::Server(ServerId(1)));
        assert_eq!(removed, 2);
        assert_eq!(net.in_flight(), 4);
        let mut got = Vec::new();
        while let Some((_, e)) = net.next() {
            got.push(e.msg);
        }
        assert_eq!(got, vec![0, 2, 3, 5], "survivors keep their order");
        assert_eq!(net.counters().2, 2);
    }

    #[test]
    fn set_faults_heals_mid_run() {
        let mut net: SimNet<u32> =
            SimNet::new(LatencyModel::instant(), FaultPlan::uniform(1.0, 0.0), 1);
        net.send(env(0, 1, 1));
        assert!(net.next().is_none());
        net.set_faults(FaultPlan::none());
        net.send(env(0, 1, 2));
        assert_eq!(net.next().unwrap().1.msg, 2);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn nan_drop_probability_rejected() {
        let _ = FaultPlan::none().with_drop(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::none().with_duplicate(1.5);
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn negative_link_probability_rejected() {
        let _ = LinkFault::from_endpoint(ServerId(0).into()).with_drop(-0.1);
    }

    #[test]
    #[should_panic(expected = "reorder_prob")]
    fn infinite_reorder_probability_rejected() {
        let _ = FaultPlan::none().with_reorder(f64::INFINITY, 10);
    }

    #[test]
    #[should_panic(expected = "start <= end")]
    fn inverted_partition_window_rejected() {
        let _ = Partition::isolate(100, 50, vec![ServerId(0).into()]);
    }

    #[test]
    fn describe_mentions_every_component() {
        let plan = FaultPlan::uniform(0.1, 0.2)
            .with_reorder(0.3, 400)
            .with_link(LinkFault::between(ServerId(0).into(), ServerId(1).into()).with_drop(0.9))
            .with_partition(Partition::isolate(5, 9, vec![ServerId(2).into()]))
            .with_spike(LatencySpike::new(1, 2, 3));
        let d = plan.describe();
        for needle in ["drop=0.1", "dup=0.2", "reorder=0.3/400us", "link", "partition [5us, 9us)", "spike [1us, 2us)"] {
            assert!(d.contains(needle), "describe() missing {needle:?} in:\n{d}");
        }
    }

    #[test]
    fn trace_records_flows() {
        let mut net: SimNet<u32> = SimNet::new(LatencyModel::instant(), FaultPlan::none(), 1);
        net.enable_trace(|m| if *m == 1 { "one" } else { "other" });
        net.send(env(0, 1, 1));
        net.send(Envelope::new(ClientId(5).into(), ServerId(0).into(), 9u32));
        assert_eq!(net.trace().len(), 2);
        assert_eq!(net.trace()[0].label, "one");
        assert_eq!(net.trace()[1].from, Endpoint::Client(ClientId(5)));
        net.clear_trace();
        assert!(net.trace().is_empty());
    }
}
