//! Real UDP transport (blocking `std::net` sockets): one envelope per
//! datagram. Concurrency is threads, as in the paper's prototype — the
//! deployment runtime in `hiloc-core` runs one receive loop per server
//! thread.

// lint:allow-file(wallclock) real transport: receive deadlines are genuine wall-clock timeouts
use crate::wire::{self, WireCodec};
use crate::{Endpoint, Envelope};
#[cfg(test)]
use crate::ServerId;
use hiloc_util::sync::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::io::ErrorKind;
use std::marker::PhantomData;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors produced by the UDP transport.
#[derive(Debug)]
pub enum UdpError {
    /// Socket I/O failed.
    Io(std::io::Error),
    /// The destination endpoint has no known socket address.
    UnknownRoute(Endpoint),
    /// The encoded envelope exceeds a single datagram.
    TooLarge(usize),
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Io(e) => write!(f, "udp i/o error: {e}"),
            UdpError::UnknownRoute(ep) => write!(f, "no route to endpoint {ep}"),
            UdpError::TooLarge(n) => write!(f, "envelope of {n} bytes exceeds datagram limit"),
        }
    }
}

impl std::error::Error for UdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UdpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for UdpError {
    fn from(e: std::io::Error) -> Self {
        UdpError::Io(e)
    }
}

/// Frame magic: distinguishes hiloc datagrams from stray traffic.
const MAGIC: u16 = 0x4C53; // "LS"
/// Maximum payload we will put in one datagram.
const MAX_DATAGRAM: usize = 60_000;

/// Counts from one [`UdpEndpoint::recv_batch`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvBatch {
    /// Well-formed envelopes appended to the caller's buffer.
    pub received: usize,
    /// Datagrams dropped as stray (bad magic, truncated, corrupt).
    pub stray: usize,
}

/// Counts from one [`UdpEndpoint::send_many`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendBatch {
    /// Envelopes written to the socket.
    pub sent: usize,
    /// Envelopes dropped: destination had no route.
    pub no_route: usize,
    /// Envelopes dropped: encoding exceeded the datagram limit.
    pub too_large: usize,
}

use wire::{get_endpoint, put_endpoint};

/// A UDP-backed network endpoint carrying [`Envelope`]s of `M`.
///
/// Mirrors the paper's transport choice ("our communication protocols
/// are implemented on top of UDP"): no connection state, no built-in
/// reliability — loss handling is the protocol layer's business
/// (soft-state refresh and client retries).
///
/// Routes (endpoint → socket address) are added explicitly; a
/// deployment bootstrapper distributes the address book.
///
/// Cloning shares the underlying socket (and its read timeout), so an
/// endpoint should have a single receiving thread.
pub struct UdpEndpoint<M> {
    endpoint: Endpoint,
    socket: Arc<UdpSocket>,
    routes: Arc<RwLock<BTreeMap<Endpoint, SocketAddr>>>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M> fmt::Debug for UdpEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("endpoint", &self.endpoint)
            .field("local_addr", &self.socket.local_addr().ok())
            .finish()
    }
}

impl<M> Clone for UdpEndpoint<M> {
    fn clone(&self) -> Self {
        UdpEndpoint {
            endpoint: self.endpoint,
            socket: Arc::clone(&self.socket),
            routes: Arc::clone(&self.routes),
            _marker: PhantomData,
        }
    }
}

/// True when the error kind signals an elapsed socket read timeout.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

thread_local! {
    /// Reusable datagram buffer: receiving is per-thread (one server or
    /// client loop per thread), so a thread-local avoids a 64 KiB
    /// zeroed allocation per receive call on the message hot path.
    static RECV_BUF: std::cell::RefCell<Vec<u8>> =
        std::cell::RefCell::new(vec![0u8; 65_536]);

    /// Reusable send scratch: each sender thread frames its datagrams
    /// into this buffer via [`WireCodec::encode_into`] on
    /// [`EnvelopeFrame`], so a steady update storm encodes without
    /// allocating per message.
    static SEND_BUF: std::cell::RefCell<Vec<u8>> =
        std::cell::RefCell::new(Vec::with_capacity(256));
}

/// The on-wire shape of one datagram: magic, sender, receiver,
/// message. One codec impl serves both directions — the send path
/// frames into the thread-local scratch through
/// [`WireCodec::encode_into`], the receive path decodes with the
/// strict whole-input [`WireCodec::from_bytes`].
struct EnvelopeFrame<M>(Envelope<M>);

impl<M: WireCodec> WireCodec for EnvelopeFrame<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_u16(buf, MAGIC);
        put_endpoint(buf, self.0.from);
        put_endpoint(buf, self.0.to);
        self.0.msg.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if wire::get_u16(buf)? != MAGIC {
            return None;
        }
        let from = get_endpoint(buf)?;
        let to = get_endpoint(buf)?;
        let msg = M::decode(buf)?;
        Some(EnvelopeFrame(Envelope { from, to, msg }))
    }
}

impl<M: WireCodec> UdpEndpoint<M> {
    /// Binds `endpoint` to a local socket address (use port 0 for an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns an error when binding fails.
    pub fn bind(endpoint: Endpoint, addr: SocketAddr) -> Result<Self, UdpError> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpEndpoint {
            endpoint,
            socket: Arc::new(socket),
            routes: Arc::new(RwLock::new(BTreeMap::new())),
            _marker: PhantomData,
        })
    }

    /// This endpoint's identity.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Returns an error when the OS cannot report the local address.
    pub fn local_addr(&self) -> Result<SocketAddr, UdpError> {
        Ok(self.socket.local_addr()?)
    }

    /// Adds (or replaces) the route for `ep`.
    pub fn add_route(&self, ep: Endpoint, addr: SocketAddr) {
        self.routes.write().insert(ep, addr);
    }

    /// Installs a whole address book at once.
    pub fn add_routes(&self, routes: impl IntoIterator<Item = (Endpoint, SocketAddr)>) {
        let mut table = self.routes.write();
        for (ep, addr) in routes {
            table.insert(ep, addr);
        }
    }

    /// Sends one envelope as a single datagram.
    ///
    /// # Errors
    ///
    /// Returns an error when the destination has no route, the encoding
    /// exceeds a datagram, or the socket write fails.
    pub fn send(&self, env: Envelope<M>) -> Result<(), UdpError> {
        let dst = {
            let routes = self.routes.read();
            *routes.get(&env.to).ok_or(UdpError::UnknownRoute(env.to))?
        };
        let frame = EnvelopeFrame(env);
        SEND_BUF.with_borrow_mut(|buf| {
            frame.encode_into(buf);
            if buf.len() > MAX_DATAGRAM {
                return Err(UdpError::TooLarge(buf.len()));
            }
            self.socket.send_to(buf, dst)?;
            Ok(())
        })
    }

    /// Blocks until the next well-formed envelope arrives, silently
    /// skipping datagrams that fail to decode (stray or corrupt
    /// traffic).
    ///
    /// # Errors
    ///
    /// Returns an error when the socket read fails.
    pub fn recv(&self) -> Result<Envelope<M>, UdpError> {
        self.socket.set_read_timeout(None)?;
        RECV_BUF.with_borrow_mut(|buf| loop {
            if let Some(env) = self.recv_step(buf)? {
                return Ok(env);
            }
        })
    }

    /// Waits up to `timeout` for the next well-formed envelope;
    /// `Ok(None)` when the wait elapses. Stray or corrupt datagrams are
    /// skipped without consuming the remaining wait.
    ///
    /// # Errors
    ///
    /// Returns an error when the socket read fails for a reason other
    /// than the timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, UdpError> {
        let deadline = Instant::now() + timeout;
        RECV_BUF.with_borrow_mut(|buf| loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // A zero read timeout is rejected by the OS; round up.
            self.socket
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.recv_step(buf) {
                Ok(Some(env)) => return Ok(Some(env)),
                Ok(None) => continue, // stray datagram; keep waiting
                Err(UdpError::Io(ref e)) if is_timeout(e) => return Ok(None),
                Err(e) => return Err(e),
            }
        })
    }

    /// Waits up to `nap` for traffic, then drains the socket without
    /// blocking — up to `max` envelopes appended to `out` — before
    /// returning. This is the event-loop receive primitive: one
    /// timed wait, then batch syscalls until `WouldBlock`, so a busy
    /// socket costs ~one mode switch per *batch* instead of one timed
    /// receive per *datagram*.
    ///
    /// Stray datagrams (bad magic, truncated or corrupt frames) are
    /// counted and dropped without consuming the wait or panicking.
    ///
    /// # Errors
    ///
    /// Returns an error when the socket read fails for a reason other
    /// than the timeout/empty-socket signal.
    pub fn recv_batch(
        &self,
        nap: Duration,
        max: usize,
        out: &mut Vec<Envelope<M>>,
    ) -> Result<RecvBatch, UdpError> {
        let mut counts = RecvBatch::default();
        if max == 0 {
            return Ok(counts);
        }
        RECV_BUF.with_borrow_mut(|buf| {
            // Phase 1: one blocking wait (bounded by `nap`) for the
            // first datagram; strays burn none of the batch budget.
            let deadline = Instant::now() + nap;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(counts);
                }
                // A zero read timeout is rejected by the OS; round up.
                self.socket
                    .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
                match self.recv_step(buf) {
                    Ok(Some(env)) => {
                        out.push(env);
                        counts.received += 1;
                        break;
                    }
                    Ok(None) => counts.stray += 1,
                    Err(UdpError::Io(ref e)) if is_timeout(e) => return Ok(counts),
                    Err(e) => return Err(e),
                }
            }
            // Phase 2: drain without blocking until the socket is empty
            // or the batch is full.
            self.socket.set_nonblocking(true)?;
            let drained = loop {
                if counts.received >= max {
                    break Ok(());
                }
                match self.recv_step(buf) {
                    Ok(Some(env)) => {
                        out.push(env);
                        counts.received += 1;
                    }
                    Ok(None) => counts.stray += 1,
                    Err(UdpError::Io(ref e)) if is_timeout(e) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            // Restore blocking mode even when the drain failed.
            self.socket.set_nonblocking(false)?;
            drained.map(|()| counts)
        })
    }

    /// Sends a batch of envelopes, reusing the thread-local encode
    /// scratch across the whole run. Per-envelope soft failures
    /// (unknown route, oversized encoding) are counted and the rest of
    /// the batch still goes out — only hard socket errors abort.
    ///
    /// # Errors
    ///
    /// Returns an error when a socket write fails.
    pub fn send_many(
        &self,
        envs: impl IntoIterator<Item = Envelope<M>>,
    ) -> Result<SendBatch, UdpError> {
        let mut counts = SendBatch::default();
        for env in envs {
            match self.send(env) {
                Ok(()) => counts.sent += 1,
                Err(UdpError::UnknownRoute(_)) => counts.no_route += 1,
                Err(UdpError::TooLarge(_)) => counts.too_large += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(counts)
    }

    /// One receive attempt: `Ok(None)` when the datagram was stray.
    fn recv_step(&self, buf: &mut [u8]) -> Result<Option<Envelope<M>>, UdpError> {
        let (n, peer) = self.socket.recv_from(buf)?;
        if let Some(env) = decode_frame::<M>(&buf[..n]) {
            // Opportunistically learn the sender's address so replies
            // work without pre-provisioned routes.
            self.routes.write().entry(env.from).or_insert(peer);
            return Ok(Some(env));
        }
        Ok(None)
    }
}

fn decode_frame<M: WireCodec>(raw: &[u8]) -> Option<Envelope<M>> {
    EnvelopeFrame::from_bytes(raw).map(|f| f.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u64, String);

    impl WireCodec for TestMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            wire::put_u64(buf, self.0);
            wire::put_u32(buf, self.1.len() as u32);
            buf.extend_from_slice(self.1.as_bytes());
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            let n = wire::get_u64(buf)?;
            let len = wire::get_u32(buf)? as usize;
            if buf.len() < len {
                return None;
            }
            let s = String::from_utf8(buf[..len].to_vec()).ok()?;
            *buf = &buf[len..];
            Some(TestMsg(n, s))
        }
    }

    fn bind(id: u32) -> UdpEndpoint<TestMsg> {
        UdpEndpoint::bind(ServerId(id).into(), "127.0.0.1:0".parse().unwrap()).unwrap()
    }

    #[test]
    fn two_endpoints_exchange_messages() {
        let a = bind(0);
        let b = bind(1);
        a.add_route(ServerId(1).into(), b.local_addr().unwrap());
        b.add_route(ServerId(0).into(), a.local_addr().unwrap());

        a.send(Envelope::new(
            ServerId(0).into(),
            ServerId(1).into(),
            TestMsg(7, "ping".into()),
        ))
        .unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.msg, TestMsg(7, "ping".into()));
        assert_eq!(got.from, Endpoint::Server(ServerId(0)));

        // Reply works because the route was learned on receive.
        b.send(Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(8, "pong".into()),
        ))
        .unwrap();
        let back = a.recv().unwrap();
        assert_eq!(back.msg.1, "pong");
    }

    #[test]
    fn unknown_route_is_an_error() {
        let a = bind(0);
        let err = a
            .send(Envelope::new(
                ServerId(0).into(),
                ServerId(9).into(),
                TestMsg(0, String::new()),
            ))
            .unwrap_err();
        assert!(matches!(err, UdpError::UnknownRoute(_)));
    }

    #[test]
    fn stray_datagrams_are_skipped() {
        let a = bind(0);
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dst = a.local_addr().unwrap();
        raw.send_to(b"garbage-not-a-frame", dst).unwrap();

        // A valid frame after the garbage is still received.
        let b = bind(1);
        b.add_route(ServerId(0).into(), dst);
        b.send(Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(1, "ok".into()),
        ))
        .unwrap();
        let got = a.recv().unwrap();
        assert_eq!(got.msg.1, "ok");
    }

    #[test]
    fn recv_timeout_elapses_quietly() {
        let a = bind(0);
        let got = a.recv_timeout(Duration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn recv_timeout_skips_stray_datagrams_without_expiring() {
        let a = bind(0);
        let dst = a.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"garbage-not-a-frame", dst).unwrap();

        // A valid frame arrives after the garbage but well before the
        // deadline; the stray must not consume the whole wait.
        let b = bind(1);
        b.add_route(ServerId(0).into(), dst);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            b.send(Envelope::new(
                ServerId(1).into(),
                ServerId(0).into(),
                TestMsg(2, "late".into()),
            ))
            .unwrap();
        });
        let got = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.expect("valid frame after stray").msg.1, "late");
        sender.join().unwrap();
    }

    #[test]
    fn oversized_payload_rejected() {
        // Encoding path check without sockets.
        let msg = TestMsg(0, "x".repeat(70_000));
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert!(buf.len() > MAX_DATAGRAM);
    }

    /// The full robustness sweep through a real socket: garbage (bad
    /// magic), a truncated envelope (valid magic, body cut mid-frame),
    /// and valid traffic interleaved. The receive loop must drop the
    /// malformed datagrams — counting them as stray — and deliver every
    /// valid frame without panicking.
    #[test]
    fn recv_batch_survives_garbage_and_truncated_frames() {
        let a = bind(0);
        let dst = a.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();

        // 1: bad magic.
        raw.send_to(b"\xDE\xADgarbage-not-a-frame", dst).unwrap();
        // 2: valid magic, envelope truncated mid-message.
        let mut frame = Vec::new();
        wire::put_u16(&mut frame, MAGIC);
        put_endpoint(&mut frame, ServerId(1).into());
        put_endpoint(&mut frame, ServerId(0).into());
        TestMsg(3, "truncate-me-please".into()).encode(&mut frame);
        frame.truncate(frame.len() - 7);
        raw.send_to(&frame, dst).unwrap();
        // 3+4: valid traffic.
        let b = bind(1);
        b.add_route(ServerId(0).into(), dst);
        for i in 0..2 {
            b.send(Envelope::new(
                ServerId(1).into(),
                ServerId(0).into(),
                TestMsg(i, format!("ok{i}")),
            ))
            .unwrap();
        }

        let mut out = Vec::new();
        let mut total = RecvBatch::default();
        // Drain until both valid frames arrive (delivery order of
        // separate datagrams is not guaranteed to land in one batch).
        while total.received < 2 {
            let c = a.recv_batch(Duration::from_secs(5), 64, &mut out).unwrap();
            assert!(c.received > 0 || c.stray > 0, "batch wait expired");
            total.received += c.received;
            total.stray += c.stray;
        }
        assert_eq!(total.stray, 2, "garbage + truncated both dropped as stray");
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.msg.1 == "ok0"));
        assert!(out.iter().any(|e| e.msg.1 == "ok1"));
    }

    /// `recv_batch` drains a burst in one call (up to `max`) instead of
    /// one datagram per timed receive.
    #[test]
    fn recv_batch_drains_burst_and_honors_max() {
        let a = bind(0);
        let b = bind(1);
        b.add_route(ServerId(0).into(), a.local_addr().unwrap());
        for i in 0..10u64 {
            b.send(Envelope::new(
                ServerId(1).into(),
                ServerId(0).into(),
                TestMsg(i, "burst".into()),
            ))
            .unwrap();
        }
        let mut out = Vec::new();
        let mut got = 0;
        while got < 10 {
            let c = a.recv_batch(Duration::from_secs(5), 4, &mut out).unwrap();
            assert!(c.received <= 4, "batch cap respected");
            assert!(c.received > 0, "burst must arrive before the wait expires");
            got += c.received;
        }
        let mut ids: Vec<u64> = out.iter().map(|e| e.msg.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    /// An oversized payload is rejected at the send socket (TooLarge),
    /// and `send_many` skips it while the rest of the batch goes out.
    #[test]
    fn oversized_payload_rejected_at_socket_send() {
        let a = bind(0);
        let b = bind(1);
        b.add_route(ServerId(0).into(), a.local_addr().unwrap());
        let big = Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(0, "x".repeat(MAX_DATAGRAM + 1)),
        );
        assert!(matches!(b.send(big.clone()).unwrap_err(), UdpError::TooLarge(_)));

        let ok = Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(1, "small".into()),
        );
        let unrouted = Envelope::new(
            ServerId(1).into(),
            ServerId(9).into(),
            TestMsg(2, "nowhere".into()),
        );
        let counts = b.send_many([big, ok, unrouted]).unwrap();
        assert_eq!(counts, SendBatch { sent: 1, no_route: 1, too_large: 1 });
        let got = a.recv().unwrap();
        assert_eq!(got.msg.1, "small");
    }

    #[test]
    fn frame_decode_rejects_bad_magic_and_trailing() {
        let mut buf = Vec::new();
        wire::put_u16(&mut buf, 0xDEAD);
        assert!(decode_frame::<TestMsg>(&buf).is_none());

        let mut good = Vec::new();
        wire::put_u16(&mut good, MAGIC);
        put_endpoint(&mut good, ServerId(0).into());
        put_endpoint(&mut good, ServerId(1).into());
        TestMsg(1, "a".into()).encode(&mut good);
        assert!(decode_frame::<TestMsg>(&good).is_some());
        good.push(0xFF); // trailing byte
        assert!(decode_frame::<TestMsg>(&good).is_none());
    }
}
