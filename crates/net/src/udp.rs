//! Real UDP transport (tokio): one envelope per datagram.

use crate::wire::{self, WireCodec};
use crate::{Endpoint, Envelope};
#[cfg(test)]
use crate::ServerId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;

/// Errors produced by the UDP transport.
#[derive(Debug)]
pub enum UdpError {
    /// Socket I/O failed.
    Io(std::io::Error),
    /// The destination endpoint has no known socket address.
    UnknownRoute(Endpoint),
    /// The encoded envelope exceeds a single datagram.
    TooLarge(usize),
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Io(e) => write!(f, "udp i/o error: {e}"),
            UdpError::UnknownRoute(ep) => write!(f, "no route to endpoint {ep}"),
            UdpError::TooLarge(n) => write!(f, "envelope of {n} bytes exceeds datagram limit"),
        }
    }
}

impl std::error::Error for UdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UdpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for UdpError {
    fn from(e: std::io::Error) -> Self {
        UdpError::Io(e)
    }
}

/// Frame magic: distinguishes hiloc datagrams from stray traffic.
const MAGIC: u16 = 0x4C53; // "LS"
/// Maximum payload we will put in one datagram.
const MAX_DATAGRAM: usize = 60_000;

use wire::{get_endpoint, put_endpoint};

/// A UDP-backed network endpoint carrying [`Envelope`]s of `M`.
///
/// Mirrors the paper's transport choice ("our communication protocols
/// are implemented on top of UDP"): no connection state, no built-in
/// reliability — loss handling is the protocol layer's business
/// (soft-state refresh and client retries).
///
/// Routes (endpoint → socket address) are added explicitly; a
/// deployment bootstrapper distributes the address book.
pub struct UdpEndpoint<M> {
    endpoint: Endpoint,
    socket: Arc<UdpSocket>,
    routes: Arc<RwLock<HashMap<Endpoint, SocketAddr>>>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M> fmt::Debug for UdpEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("endpoint", &self.endpoint)
            .field("local_addr", &self.socket.local_addr().ok())
            .finish()
    }
}

impl<M> Clone for UdpEndpoint<M> {
    fn clone(&self) -> Self {
        UdpEndpoint {
            endpoint: self.endpoint,
            socket: Arc::clone(&self.socket),
            routes: Arc::clone(&self.routes),
            _marker: PhantomData,
        }
    }
}

impl<M: WireCodec> UdpEndpoint<M> {
    /// Binds `endpoint` to a local socket address (use port 0 for an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns an error when binding fails.
    pub async fn bind(endpoint: Endpoint, addr: SocketAddr) -> Result<Self, UdpError> {
        let socket = UdpSocket::bind(addr).await?;
        Ok(UdpEndpoint {
            endpoint,
            socket: Arc::new(socket),
            routes: Arc::new(RwLock::new(HashMap::new())),
            _marker: PhantomData,
        })
    }

    /// This endpoint's identity.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Returns an error when the OS cannot report the local address.
    pub fn local_addr(&self) -> Result<SocketAddr, UdpError> {
        Ok(self.socket.local_addr()?)
    }

    /// Adds (or replaces) the route for `ep`.
    pub fn add_route(&self, ep: Endpoint, addr: SocketAddr) {
        self.routes.write().insert(ep, addr);
    }

    /// Installs a whole address book at once.
    pub fn add_routes(&self, routes: impl IntoIterator<Item = (Endpoint, SocketAddr)>) {
        let mut table = self.routes.write();
        for (ep, addr) in routes {
            table.insert(ep, addr);
        }
    }

    /// Sends one envelope as a single datagram.
    ///
    /// # Errors
    ///
    /// Returns an error when the destination has no route, the encoding
    /// exceeds a datagram, or the socket write fails.
    pub async fn send(&self, env: Envelope<M>) -> Result<(), UdpError> {
        let dst = {
            let routes = self.routes.read();
            *routes.get(&env.to).ok_or(UdpError::UnknownRoute(env.to))?
        };
        let mut buf = Vec::with_capacity(128);
        wire::put_u16(&mut buf, MAGIC);
        put_endpoint(&mut buf, env.from);
        put_endpoint(&mut buf, env.to);
        env.msg.encode(&mut buf);
        if buf.len() > MAX_DATAGRAM {
            return Err(UdpError::TooLarge(buf.len()));
        }
        self.socket.send_to(&buf, dst).await?;
        Ok(())
    }

    /// Receives the next well-formed envelope, silently skipping
    /// datagrams that fail to decode (stray or corrupt traffic).
    ///
    /// # Errors
    ///
    /// Returns an error when the socket read fails.
    pub async fn recv(&self) -> Result<Envelope<M>, UdpError> {
        let mut buf = vec![0u8; 65_536];
        loop {
            let (n, peer) = self.socket.recv_from(&mut buf).await?;
            if let Some(env) = decode_frame::<M>(&buf[..n]) {
                // Opportunistically learn the sender's address so
                // replies work without pre-provisioned routes.
                self.routes.write().entry(env.from).or_insert(peer);
                return Ok(env);
            }
        }
    }
}

fn decode_frame<M: WireCodec>(mut raw: &[u8]) -> Option<Envelope<M>> {
    let buf = &mut raw;
    if wire::get_u16(buf)? != MAGIC {
        return None;
    }
    let from = get_endpoint(buf)?;
    let to = get_endpoint(buf)?;
    let msg = M::decode(buf)?;
    if !buf.is_empty() {
        return None;
    }
    Some(Envelope { from, to, msg })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u64, String);

    impl WireCodec for TestMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            wire::put_u64(buf, self.0);
            wire::put_u32(buf, self.1.len() as u32);
            buf.extend_from_slice(self.1.as_bytes());
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            let n = wire::get_u64(buf)?;
            let len = wire::get_u32(buf)? as usize;
            if buf.len() < len {
                return None;
            }
            let s = String::from_utf8(buf[..len].to_vec()).ok()?;
            *buf = &buf[len..];
            Some(TestMsg(n, s))
        }
    }

    #[tokio::test]
    async fn two_endpoints_exchange_messages() {
        let a: UdpEndpoint<TestMsg> =
            UdpEndpoint::bind(ServerId(0).into(), "127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
        let b: UdpEndpoint<TestMsg> =
            UdpEndpoint::bind(ServerId(1).into(), "127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
        a.add_route(ServerId(1).into(), b.local_addr().unwrap());
        b.add_route(ServerId(0).into(), a.local_addr().unwrap());

        a.send(Envelope::new(
            ServerId(0).into(),
            ServerId(1).into(),
            TestMsg(7, "ping".into()),
        ))
        .await
        .unwrap();
        let got = b.recv().await.unwrap();
        assert_eq!(got.msg, TestMsg(7, "ping".into()));
        assert_eq!(got.from, Endpoint::Server(ServerId(0)));

        // Reply works because the route was learned on receive.
        b.send(Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(8, "pong".into()),
        ))
        .await
        .unwrap();
        let back = a.recv().await.unwrap();
        assert_eq!(back.msg.1, "pong");
    }

    #[tokio::test]
    async fn unknown_route_is_an_error() {
        let a: UdpEndpoint<TestMsg> =
            UdpEndpoint::bind(ServerId(0).into(), "127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
        let err = a
            .send(Envelope::new(
                ServerId(0).into(),
                ServerId(9).into(),
                TestMsg(0, String::new()),
            ))
            .await
            .unwrap_err();
        assert!(matches!(err, UdpError::UnknownRoute(_)));
    }

    #[tokio::test]
    async fn stray_datagrams_are_skipped() {
        let a: UdpEndpoint<TestMsg> =
            UdpEndpoint::bind(ServerId(0).into(), "127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let dst = a.local_addr().unwrap();
        raw.send_to(b"garbage-not-a-frame", dst).await.unwrap();

        // A valid frame after the garbage is still received.
        let b: UdpEndpoint<TestMsg> =
            UdpEndpoint::bind(ServerId(1).into(), "127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
        b.add_route(ServerId(0).into(), dst);
        b.send(Envelope::new(
            ServerId(1).into(),
            ServerId(0).into(),
            TestMsg(1, "ok".into()),
        ))
        .await
        .unwrap();
        let got = a.recv().await.unwrap();
        assert_eq!(got.msg.1, "ok");
    }

    #[test]
    fn oversized_payload_rejected() {
        // Encoding path check without sockets.
        let msg = TestMsg(0, "x".repeat(70_000));
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert!(buf.len() > MAX_DATAGRAM);
    }

    #[test]
    fn frame_decode_rejects_bad_magic_and_trailing() {
        let mut buf = Vec::new();
        wire::put_u16(&mut buf, 0xDEAD);
        assert!(decode_frame::<TestMsg>(&buf).is_none());

        let mut good = Vec::new();
        wire::put_u16(&mut good, MAGIC);
        put_endpoint(&mut good, ServerId(0).into());
        put_endpoint(&mut good, ServerId(1).into());
        TestMsg(1, "a".into()).encode(&mut good);
        assert!(decode_frame::<TestMsg>(&good).is_some());
        good.push(0xFF); // trailing byte
        assert!(decode_frame::<TestMsg>(&good).is_none());
    }
}
