//! Binary wire encoding: the [`WireCodec`] trait and field helpers.
//!
//! hiloc frames one message per UDP datagram (as the paper's prototype
//! did), so encodings are compact, little-endian and length-prefixed
//! where variable. The protocol messages themselves live in
//! `hiloc-core`; this module provides the reusable primitives.

use hiloc_util::buf::{Buf, BufMut};
use hiloc_geo::{Point, Polygon, Rect, Region};

/// A type that can be encoded to / decoded from the hiloc wire format.
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value, advancing `buf` past it. Returns `None` on
    /// malformed input (never panics on hostile bytes).
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// Encodes into a reusable scratch buffer: clears `scratch` (its
    /// capacity is retained) and appends the encoding. The send hot
    /// path uses this with a per-connection (or per-thread) scratch so
    /// steady-state encoding performs no allocation.
    // lint:hot_path
    fn encode_into(&self, scratch: &mut Vec<u8>) {
        scratch.clear();
        self.encode(scratch);
    }

    /// The exact number of bytes [`encode`](WireCodec::encode) appends,
    /// when the type can compute it cheaply. One-shot encodes use it to
    /// size their allocation exactly; `None` falls back to a guess.
    fn encoded_len(&self) -> Option<usize> {
        None
    }

    /// Convenience: encodes into a fresh buffer, sized exactly when
    /// [`encoded_len`](WireCodec::encoded_len) is available.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len().unwrap_or(64));
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decodes a value that must consume the entire input.
    fn from_bytes(mut bytes: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Some(v)
        } else {
            None
        }
    }
}

/// Reads `n` bytes or bails.
pub fn need(buf: &&[u8], n: usize) -> Option<()> {
    if buf.remaining() >= n {
        Some(())
    } else {
        None
    }
}

/// Encodes an `f64` (little-endian IEEE 754).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.put_f64_le(v);
}

/// Decodes an `f64`.
pub fn get_f64(buf: &mut &[u8]) -> Option<f64> {
    need(buf, 8)?;
    Some(buf.get_f64_le())
}

/// Encodes a `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.put_u64_le(v);
}

/// Decodes a `u64`.
pub fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    need(buf, 8)?;
    Some(buf.get_u64_le())
}

/// Encodes a `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.put_u32_le(v);
}

/// Decodes a `u32`.
pub fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    need(buf, 4)?;
    Some(buf.get_u32_le())
}

/// Encodes a `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.put_u16_le(v);
}

/// Decodes a `u16`.
pub fn get_u16(buf: &mut &[u8]) -> Option<u16> {
    need(buf, 2)?;
    Some(buf.get_u16_le())
}

/// Encodes a byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.put_u8(v);
}

/// Decodes a byte.
pub fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    need(buf, 1)?;
    Some(buf.get_u8())
}

/// Encodes a bool as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.put_u8(v as u8);
}

/// Decodes a bool (strictly 0 or 1).
pub fn get_bool(buf: &mut &[u8]) -> Option<bool> {
    match get_u8(buf)? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// Encodes a planar point (16 bytes).
pub fn put_point(buf: &mut Vec<u8>, p: Point) {
    put_f64(buf, p.x);
    put_f64(buf, p.y);
}

/// Decodes a planar point.
pub fn get_point(buf: &mut &[u8]) -> Option<Point> {
    let x = get_f64(buf)?;
    let y = get_f64(buf)?;
    Some(Point::new(x, y))
}

/// Encodes a rectangle (32 bytes).
pub fn put_rect(buf: &mut Vec<u8>, r: &Rect) {
    put_point(buf, r.min());
    put_point(buf, r.max());
}

/// Decodes a rectangle.
pub fn get_rect(buf: &mut &[u8]) -> Option<Rect> {
    let min = get_point(buf)?;
    let max = get_point(buf)?;
    Some(Rect::new(min, max))
}

/// Encodes an [`Endpoint`](crate::Endpoint) (9 bytes).
pub fn put_endpoint(buf: &mut Vec<u8>, ep: crate::Endpoint) {
    match ep {
        crate::Endpoint::Server(crate::ServerId(id)) => {
            put_u8(buf, 0);
            put_u64(buf, id as u64);
        }
        crate::Endpoint::Client(crate::ClientId(id)) => {
            put_u8(buf, 1);
            put_u64(buf, id);
        }
    }
}

/// Decodes an [`Endpoint`](crate::Endpoint).
pub fn get_endpoint(buf: &mut &[u8]) -> Option<crate::Endpoint> {
    match get_u8(buf)? {
        0 => Some(crate::Endpoint::Server(crate::ServerId(get_u64(buf)? as u32))),
        1 => Some(crate::Endpoint::Client(crate::ClientId(get_u64(buf)?))),
        _ => None,
    }
}

const REGION_RECT: u8 = 0;
const REGION_POLYGON: u8 = 1;
/// Maximum polygon vertices accepted from the wire.
const MAX_POLYGON_VERTICES: u32 = 10_000;

/// Encodes a region (tagged rect or polygon).
pub fn put_region(buf: &mut Vec<u8>, region: &Region) {
    match region {
        Region::Rect(r) => {
            put_u8(buf, REGION_RECT);
            put_rect(buf, r);
        }
        Region::Polygon(p) => {
            put_u8(buf, REGION_POLYGON);
            put_u32(buf, p.vertices().len() as u32);
            for v in p.vertices() {
                put_point(buf, *v);
            }
        }
    }
}

/// Decodes a region.
pub fn get_region(buf: &mut &[u8]) -> Option<Region> {
    match get_u8(buf)? {
        REGION_RECT => Some(Region::Rect(get_rect(buf)?)),
        REGION_POLYGON => {
            let n = get_u32(buf)?;
            if n > MAX_POLYGON_VERTICES {
                return None;
            }
            let mut vs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                vs.push(get_point(buf)?);
            }
            Polygon::new(vs).ok().map(Region::Polygon)
        }
        _ => None,
    }
}

/// Exact encoded size of an [`Endpoint`](crate::Endpoint): tag + id.
pub const ENDPOINT_LEN: usize = 9;

/// Exact encoded size of a region (tag + rect, or tag + count +
/// vertices).
pub fn region_encoded_len(region: &Region) -> usize {
    match region {
        Region::Rect(_) => 1 + 32,
        Region::Polygon(p) => 1 + 4 + 16 * p.vertices().len(),
    }
}

/// Encodes a length-prefixed list.
pub fn put_vec<T>(buf: &mut Vec<u8>, items: &[T], mut put: impl FnMut(&mut Vec<u8>, &T)) {
    put_u32(buf, items.len() as u32);
    for item in items {
        put(buf, item);
    }
}

/// Decodes a length-prefixed list; `max` bounds hostile lengths.
pub fn get_vec<T>(
    buf: &mut &[u8],
    max: u32,
    mut get: impl FnMut(&mut &[u8]) -> Option<T>,
) -> Option<Vec<T>> {
    let n = get_u32(buf)?;
    if n > max {
        return None;
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(get(buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        put_f64(&mut buf, -1.25);
        put_u64(&mut buf, u64::MAX);
        put_u32(&mut buf, 7);
        put_u16(&mut buf, 513);
        put_u8(&mut buf, 200);
        put_bool(&mut buf, true);
        let mut r = buf.as_slice();
        assert_eq!(get_f64(&mut r), Some(-1.25));
        assert_eq!(get_u64(&mut r), Some(u64::MAX));
        assert_eq!(get_u32(&mut r), Some(7));
        assert_eq!(get_u16(&mut r), Some(513));
        assert_eq!(get_u8(&mut r), Some(200));
        assert_eq!(get_bool(&mut r), Some(true));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_is_none_not_panic() {
        let mut buf = Vec::new();
        put_point(&mut buf, Point::new(1.0, 2.0));
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            assert!(get_point(&mut r).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn bool_rejects_garbage() {
        let data = [7u8];
        let mut r = data.as_slice();
        assert_eq!(get_bool(&mut r), None);
    }

    #[test]
    fn geometry_roundtrips() {
        let mut buf = Vec::new();
        let rect = Rect::new(Point::new(-3.0, 2.0), Point::new(5.5, 9.0));
        put_rect(&mut buf, &rect);
        let region = Region::Polygon(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(2.0, 3.0),
            ])
            .unwrap(),
        );
        put_region(&mut buf, &region);
        put_region(&mut buf, &Region::Rect(rect));

        let mut r = buf.as_slice();
        assert_eq!(get_rect(&mut r), Some(rect));
        assert_eq!(get_region(&mut r), Some(region));
        assert_eq!(get_region(&mut r), Some(Region::Rect(rect)));
        assert!(r.is_empty());
    }

    #[test]
    fn hostile_polygon_length_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1); // polygon tag
        put_u32(&mut buf, u32::MAX); // absurd vertex count
        let mut r = buf.as_slice();
        assert!(get_region(&mut r).is_none());
    }

    #[test]
    fn encode_into_reuses_capacity() {
        struct P(Point);
        impl WireCodec for P {
            fn encode(&self, buf: &mut Vec<u8>) {
                put_point(buf, self.0);
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                get_point(buf).map(P)
            }
            fn encoded_len(&self) -> Option<usize> {
                Some(16)
            }
        }
        let mut scratch = Vec::new();
        P(Point::new(1.0, 2.0)).encode_into(&mut scratch);
        assert_eq!(scratch.len(), 16);
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        P(Point::new(3.0, 4.0)).encode_into(&mut scratch);
        assert_eq!(scratch.len(), 16);
        assert_eq!((scratch.capacity(), scratch.as_ptr()), (cap, ptr), "no reallocation");
        // And to_bytes sizes its allocation exactly from encoded_len.
        let bytes = P(Point::new(5.0, 6.0)).to_bytes();
        assert_eq!((bytes.len(), bytes.capacity()), (16, 16));
    }

    #[test]
    fn region_len_matches_encoding() {
        let rect = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let poly = Region::Polygon(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(2.0, 3.0)])
                .unwrap(),
        );
        for region in [rect, poly] {
            let mut buf = Vec::new();
            put_region(&mut buf, &region);
            assert_eq!(buf.len(), region_encoded_len(&region));
        }
    }

    #[test]
    fn vec_helpers() {
        let mut buf = Vec::new();
        put_vec(&mut buf, &[1u64, 2, 3], |b, v| put_u64(b, *v));
        let mut r = buf.as_slice();
        assert_eq!(get_vec(&mut r, 100, get_u64), Some(vec![1, 2, 3]));

        // Over the cap.
        let mut buf = Vec::new();
        put_vec(&mut buf, &[0u64; 10], |b, v| put_u64(b, *v));
        let mut r = buf.as_slice();
        assert!(get_vec(&mut r, 5, get_u64).is_none());
    }
}
