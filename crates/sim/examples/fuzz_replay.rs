//! Replays one fuzzer reproducer from the command line:
//!
//! ```text
//! cargo run -p hiloc-sim --example fuzz_replay "seed=… levels=… ev=…"
//! ```
//!
//! The argument is the exact DSL line a failing fuzz batch prints
//! (`hiloc_sim::fuzz::replay_dsl("…")`). A green run prints the
//! verdict stats; a red one panics with the full oracle report, seed
//! and trace.

fn main() {
    let dsl = std::env::args().nth(1).expect("usage: fuzz_replay \"<dsl line>\"");
    let run = hiloc_sim::fuzz::replay_dsl(&dsl);
    println!("green: alive={} stats={:?}", run.alive, run.stats);
}
