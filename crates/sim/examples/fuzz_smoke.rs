//! Exploratory fuzz campaign driver: `fuzz_smoke [base_seed] [cases]`
//! runs a batch with the §6.5 caches off and another with them on,
//! printing the aggregate stats — or panicking with a shrunk,
//! replayable reproducer on the first oracle violation. CI runs the
//! fixed-seed gate in `tests/fuzz_scenarios.rs`; this binary is for
//! longer local hunts across many base seeds.

// lint:allow-file(wallclock) local campaign driver measuring its own elapsed time; not part of a deterministic run
use hiloc_sim::fuzz::{fuzz_batch, CacheMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xF00D);
    let n: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let t = std::time::Instant::now();
    let s = fuzz_batch(base, n, CacheMode::Off);
    println!("off: {s:?} in {:?}", t.elapsed());
    let t = std::time::Instant::now();
    let s = fuzz_batch(base ^ 0xCACE, n, CacheMode::On { max_aged_acc_m: 100.0 });
    println!("on:  {s:?} in {:?}", t.elapsed());
}
