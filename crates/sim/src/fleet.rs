//! A fleet of tracked objects driving a simulated deployment.

use crate::mobility::{MobilityKind, MobilityModel};
use hiloc_core::model::{
    LastReport, LsError, Micros, ObjectId, Sighting, UpdateDecision, UpdatePolicy, SECOND,
};
use hiloc_core::proto::Message;
use hiloc_core::runtime::{SimDeployment, UpdateOutcome};
use hiloc_geo::Point;
use hiloc_net::ServerId;
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

/// Configuration of a tracked-object fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tracked objects.
    pub num_objects: u64,
    /// Nominal object speed (m/s). The paper's capacity estimate uses
    /// 3 km/h ≈ 0.83 m/s pedestrians.
    pub speed_mps: f64,
    /// Sensor accuracy attached to sightings.
    pub acc_sens_m: f64,
    /// Desired accuracy at registration.
    pub des_acc_m: f64,
    /// Minimal acceptable accuracy at registration.
    pub min_acc_m: f64,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Update-reporting policy.
    pub policy: UpdatePolicy,
    /// RNG seed (placement + per-object models).
    pub seed: u64,
    /// First object id: objects get ids `first_oid..first_oid +
    /// num_objects`. Lets several fleets (e.g. one per mobility model
    /// in the macro benchmark) share one deployment without id
    /// collisions.
    pub first_oid: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            num_objects: 100,
            speed_mps: 0.83, // 3 km/h, the paper's pedestrian estimate
            acc_sens_m: 10.0,
            des_acc_m: 25.0,
            min_acc_m: 100.0,
            mobility: MobilityKind::RandomWaypoint,
            policy: UpdatePolicy::Distance { threshold_m: 15.0 },
            seed: 0,
            first_oid: 0,
        }
    }
}

struct FleetObject {
    oid: ObjectId,
    model: Box<dyn MobilityModel>,
    agent: ServerId,
    last_report: LastReport,
    /// Velocity estimate from the most recent step (for dead
    /// reckoning).
    velocity_mps: Point,
    offered_acc_m: f64,
    alive: bool,
}

/// Statistics of one [`Fleet::step`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Objects whose position changed.
    pub moved: u64,
    /// Updates actually transmitted (per the update policy).
    pub updates_sent: u64,
    /// Updates acknowledged in place.
    pub acks: u64,
    /// Updates that triggered a handover.
    pub handovers: u64,
    /// Objects deregistered (left the service area).
    pub deregistered: u64,
    /// Updates that got no response (lost messages / crashed agent);
    /// the object retries on its next report.
    pub lost: u64,
}

/// Statistics of one [`Fleet::process_inbox`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InboxStats {
    /// `AgentChanged` notifications applied (agent pointer fixed).
    pub agent_changes: u64,
    /// `PositionProbe`s answered with a fresh update (the client half
    /// of the paper's §5 restore-on-demand restart path).
    pub probes_answered: u64,
    /// `NotifyAvailAcc` accuracy notifications applied.
    pub acc_notifications: u64,
    /// Other (stale or duplicate) messages discarded.
    pub stray: u64,
}

/// How a [`Fleet`] transmit attempt ended.
enum TransmitResult {
    /// Acked by the (unchanged) agent.
    Acked,
    /// One or more handovers occurred; the final agent acked.
    HandedOver,
    /// The object left the service area and was deregistered.
    Deregistered,
    /// No response (message loss, crashed server, or too many
    /// redirects); the sighting was not confirmed.
    Lost,
}

/// A population of tracked objects moving inside a simulated
/// deployment: registers them, advances their mobility models and
/// transmits updates per the configured policy.
///
/// # Example
///
/// ```
/// use hiloc_core::area::HierarchyBuilder;
/// use hiloc_core::runtime::SimDeployment;
/// use hiloc_sim::{Fleet, FleetConfig};
/// use hiloc_geo::{Point, Rect};
///
/// let h = HierarchyBuilder::grid(
///     Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)), 1, 2,
/// ).build().unwrap();
/// let mut ls = SimDeployment::new(h, Default::default(), 1);
/// let cfg = FleetConfig { num_objects: 20, ..Default::default() };
/// let mut fleet = Fleet::register(cfg, &mut ls).unwrap();
/// let stats = fleet.step(&mut ls, 10.0);
/// assert_eq!(stats.moved, 20);
/// ```
pub struct Fleet {
    cfg: FleetConfig,
    objects: Vec<FleetObject>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("objects", &self.objects.len())
            .field("alive", &self.alive_count())
            .finish()
    }
}

impl Fleet {
    /// Registers `cfg.num_objects` objects at uniformly random
    /// positions.
    ///
    /// # Errors
    ///
    /// Propagates the first registration failure.
    pub fn register(cfg: FleetConfig, ls: &mut SimDeployment) -> Result<Self, LsError> {
        let area = ls.hierarchy().root_area();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut objects = Vec::with_capacity(cfg.num_objects as usize);
        let now = ls.now_us();
        for i in 0..cfg.num_objects {
            let start = Point::new(
                rng.random_range(area.min().x..area.max().x - 1e-3),
                rng.random_range(area.min().y..area.max().y - 1e-3),
            );
            let model = cfg.mobility.build(area, start, cfg.speed_mps, cfg.seed ^ (i + 1));
            let oid = ObjectId(cfg.first_oid + i);
            let entry = ls.leaf_for(start);
            let (agent, offered) = ls.register_with_speed(
                entry,
                Sighting::new(oid, now, start, cfg.acc_sens_m),
                cfg.des_acc_m,
                cfg.min_acc_m,
                cfg.speed_mps,
            )?;
            objects.push(FleetObject {
                oid,
                model,
                agent,
                last_report: LastReport { pos: start, time_us: now, velocity_mps: Point::ORIGIN },
                velocity_mps: Point::ORIGIN,
                offered_acc_m: offered,
                alive: true,
            });
        }
        Ok(Fleet { cfg, objects })
    }

    /// Number of objects (including deregistered ones).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the fleet has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of objects still registered.
    pub fn alive_count(&self) -> usize {
        self.objects.iter().filter(|o| o.alive).count()
    }

    /// Current true position of object `i`.
    pub fn position(&self, i: usize) -> Point {
        self.objects[i].model.position()
    }

    /// Current agent of object `i`.
    pub fn agent(&self, i: usize) -> ServerId {
        self.objects[i].agent
    }

    /// The accuracy currently offered for object `i`.
    pub fn offered_acc(&self, i: usize) -> f64 {
        self.objects[i].offered_acc_m
    }

    /// The object id of object `i`.
    pub fn oid(&self, i: usize) -> ObjectId {
        self.objects[i].oid
    }

    /// Whether object `i` is still registered.
    pub fn alive(&self, i: usize) -> bool {
        self.objects[i].alive
    }

    /// The last *acknowledged* report of object `i`: the position the
    /// service has confirmed storing (the chaos oracle's ground truth).
    pub fn last_report(&self, i: usize) -> LastReport {
        self.objects[i].last_report
    }

    /// Advances virtual time by `dt_s`, moves every object and
    /// transmits updates per the update policy.
    pub fn step(&mut self, ls: &mut SimDeployment, dt_s: f64) -> StepStats {
        let target = ls.now_us() + (dt_s * SECOND as f64) as u64;
        ls.advance_time(target);
        let now = ls.now_us();
        let mut stats = StepStats::default();
        for idx in 0..self.objects.len() {
            let obj = &mut self.objects[idx];
            if !obj.alive {
                continue;
            }
            let before = obj.model.position();
            let pos = obj.model.step(dt_s);
            stats.moved += 1;
            if dt_s > 0.0 {
                obj.velocity_mps = (pos - before) / dt_s;
            }
            if self.cfg.policy.decide(&obj.last_report, pos, now) == UpdateDecision::Skip {
                continue;
            }
            stats.updates_sent += 1;
            self.transmit_into(idx, ls, pos, now, &mut stats);
        }
        stats
    }

    /// Forces a fresh position report from every live object regardless
    /// of the update policy — the settle primitive of the chaos
    /// harness, and what restores volatile sightings after a restart.
    pub fn report_all(&mut self, ls: &mut SimDeployment) -> StepStats {
        let mut stats = StepStats::default();
        for idx in 0..self.objects.len() {
            if !self.objects[idx].alive {
                continue;
            }
            let pos = self.objects[idx].model.position();
            let now = ls.now_us();
            stats.updates_sent += 1;
            self.transmit_into(idx, ls, pos, now, &mut stats);
        }
        stats
    }

    /// Drains every object's client inbox, applying asynchronous
    /// notifications: `AgentChanged` (fix the agent pointer after a
    /// lost handover notification), `NotifyAvailAcc`, and
    /// `PositionProbe` — a recovering server asking for a fresh
    /// position update (paper §5 restore-on-demand), which is answered
    /// with an immediate report.
    pub fn process_inbox(&mut self, ls: &mut SimDeployment) -> InboxStats {
        let mut stats = InboxStats::default();
        for idx in 0..self.objects.len() {
            let client = SimDeployment::object_endpoint(self.objects[idx].oid);
            let msgs = ls.drain_client(client);
            if !self.objects[idx].alive {
                continue; // deregistered: discard stale traffic
            }
            let mut probed = false;
            for m in msgs {
                let obj = &mut self.objects[idx];
                match m {
                    Message::AgentChanged { new_agent, offered_acc_m, .. } => {
                        obj.agent = new_agent;
                        obj.offered_acc_m = offered_acc_m;
                        stats.agent_changes += 1;
                    }
                    Message::NotifyAvailAcc { offered_acc_m, .. } => {
                        obj.offered_acc_m = offered_acc_m;
                        stats.acc_notifications += 1;
                    }
                    Message::PositionProbe { .. } => {
                        probed = true;
                    }
                    // A stale OutOfServiceArea (e.g. a duplicate of one
                    // already consumed by a blocking update) must not
                    // kill a live registration; real deregistrations
                    // are seen by the blocking update itself.
                    _ => stats.stray += 1,
                }
            }
            if probed {
                stats.probes_answered += 1;
                let pos = self.objects[idx].model.position();
                let now = ls.now_us();
                let mut ignored = StepStats::default();
                self.transmit_into(idx, ls, pos, now, &mut ignored);
            }
        }
        stats
    }

    /// Sends a sighting to the object's current agent, following
    /// `AgentChanged` redirects until a plain ack confirms the sighting
    /// is stored — the idempotent client-resend protocol the paper's
    /// UDP deployment relies on. `last_report` is only advanced on that
    /// final ack, so it always reflects state the service has durably
    /// observed (which is what the chaos oracle checks against).
    fn transmit_into(
        &mut self,
        idx: usize,
        ls: &mut SimDeployment,
        pos: Point,
        now: Micros,
        stats: &mut StepStats,
    ) {
        match self.transmit(idx, ls, pos, now) {
            TransmitResult::Acked => stats.acks += 1,
            TransmitResult::HandedOver => stats.handovers += 1,
            TransmitResult::Deregistered => stats.deregistered += 1,
            TransmitResult::Lost => stats.lost += 1,
        }
    }

    fn transmit(
        &mut self,
        idx: usize,
        ls: &mut SimDeployment,
        pos: Point,
        now: Micros,
    ) -> TransmitResult {
        const MAX_REDIRECTS: usize = 4;
        let mut handed_over = false;
        for _ in 0..=MAX_REDIRECTS {
            let obj = &mut self.objects[idx];
            let sighting = Sighting::new(obj.oid, now, pos, self.cfg.acc_sens_m);
            match ls.update(obj.agent, sighting) {
                Ok(UpdateOutcome::Ack { offered_acc_m }) => {
                    obj.offered_acc_m = offered_acc_m;
                    obj.last_report =
                        LastReport { pos, time_us: now, velocity_mps: obj.velocity_mps };
                    return if handed_over {
                        TransmitResult::HandedOver
                    } else {
                        TransmitResult::Acked
                    };
                }
                Ok(UpdateOutcome::NewAgent { agent, offered_acc_m }) => {
                    // Redirected: the sighting may not have reached the
                    // new agent (AgentLookup recovery answers without
                    // applying it) — re-send until a plain ack.
                    handed_over = true;
                    obj.agent = agent;
                    obj.offered_acc_m = offered_acc_m;
                }
                Ok(UpdateOutcome::OutOfServiceArea) => {
                    obj.alive = false;
                    return TransmitResult::Deregistered;
                }
                Err(_) => return TransmitResult::Lost, // retry on the next report
            }
        }
        TransmitResult::Lost
    }
}
