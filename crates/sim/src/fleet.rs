//! A fleet of tracked objects driving a simulated deployment.

use crate::mobility::{MobilityKind, MobilityModel};
use hiloc_core::model::{LastReport, LsError, ObjectId, Sighting, UpdateDecision, UpdatePolicy, SECOND};
use hiloc_core::runtime::{SimDeployment, UpdateOutcome};
use hiloc_geo::Point;
use hiloc_net::ServerId;
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

/// Configuration of a tracked-object fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tracked objects.
    pub num_objects: u64,
    /// Nominal object speed (m/s). The paper's capacity estimate uses
    /// 3 km/h ≈ 0.83 m/s pedestrians.
    pub speed_mps: f64,
    /// Sensor accuracy attached to sightings.
    pub acc_sens_m: f64,
    /// Desired accuracy at registration.
    pub des_acc_m: f64,
    /// Minimal acceptable accuracy at registration.
    pub min_acc_m: f64,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Update-reporting policy.
    pub policy: UpdatePolicy,
    /// RNG seed (placement + per-object models).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            num_objects: 100,
            speed_mps: 0.83, // 3 km/h, the paper's pedestrian estimate
            acc_sens_m: 10.0,
            des_acc_m: 25.0,
            min_acc_m: 100.0,
            mobility: MobilityKind::RandomWaypoint,
            policy: UpdatePolicy::Distance { threshold_m: 15.0 },
            seed: 0,
        }
    }
}

struct FleetObject {
    oid: ObjectId,
    model: Box<dyn MobilityModel>,
    agent: ServerId,
    last_report: LastReport,
    /// Velocity estimate from the most recent step (for dead
    /// reckoning).
    velocity_mps: Point,
    offered_acc_m: f64,
    alive: bool,
}

/// Statistics of one [`Fleet::step`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Objects whose position changed.
    pub moved: u64,
    /// Updates actually transmitted (per the update policy).
    pub updates_sent: u64,
    /// Updates acknowledged in place.
    pub acks: u64,
    /// Updates that triggered a handover.
    pub handovers: u64,
    /// Objects deregistered (left the service area).
    pub deregistered: u64,
}

/// A population of tracked objects moving inside a simulated
/// deployment: registers them, advances their mobility models and
/// transmits updates per the configured policy.
///
/// # Example
///
/// ```
/// use hiloc_core::area::HierarchyBuilder;
/// use hiloc_core::runtime::SimDeployment;
/// use hiloc_sim::{Fleet, FleetConfig};
/// use hiloc_geo::{Point, Rect};
///
/// let h = HierarchyBuilder::grid(
///     Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)), 1, 2,
/// ).build().unwrap();
/// let mut ls = SimDeployment::new(h, Default::default(), 1);
/// let cfg = FleetConfig { num_objects: 20, ..Default::default() };
/// let mut fleet = Fleet::register(cfg, &mut ls).unwrap();
/// let stats = fleet.step(&mut ls, 10.0);
/// assert_eq!(stats.moved, 20);
/// ```
pub struct Fleet {
    cfg: FleetConfig,
    objects: Vec<FleetObject>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("objects", &self.objects.len())
            .field("alive", &self.alive_count())
            .finish()
    }
}

impl Fleet {
    /// Registers `cfg.num_objects` objects at uniformly random
    /// positions.
    ///
    /// # Errors
    ///
    /// Propagates the first registration failure.
    pub fn register(cfg: FleetConfig, ls: &mut SimDeployment) -> Result<Self, LsError> {
        let area = ls.hierarchy().root_area();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut objects = Vec::with_capacity(cfg.num_objects as usize);
        let now = ls.now_us();
        for i in 0..cfg.num_objects {
            let start = Point::new(
                rng.random_range(area.min().x..area.max().x - 1e-3),
                rng.random_range(area.min().y..area.max().y - 1e-3),
            );
            let model = cfg.mobility.build(area, start, cfg.speed_mps, cfg.seed ^ (i + 1));
            let oid = ObjectId(i);
            let entry = ls.leaf_for(start);
            let (agent, offered) = ls.register_with_speed(
                entry,
                Sighting::new(oid, now, start, cfg.acc_sens_m),
                cfg.des_acc_m,
                cfg.min_acc_m,
                cfg.speed_mps,
            )?;
            objects.push(FleetObject {
                oid,
                model,
                agent,
                last_report: LastReport { pos: start, time_us: now, velocity_mps: Point::ORIGIN },
                velocity_mps: Point::ORIGIN,
                offered_acc_m: offered,
                alive: true,
            });
        }
        Ok(Fleet { cfg, objects })
    }

    /// Number of objects (including deregistered ones).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the fleet has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of objects still registered.
    pub fn alive_count(&self) -> usize {
        self.objects.iter().filter(|o| o.alive).count()
    }

    /// Current true position of object `i`.
    pub fn position(&self, i: usize) -> Point {
        self.objects[i].model.position()
    }

    /// Current agent of object `i`.
    pub fn agent(&self, i: usize) -> ServerId {
        self.objects[i].agent
    }

    /// The accuracy currently offered for object `i`.
    pub fn offered_acc(&self, i: usize) -> f64 {
        self.objects[i].offered_acc_m
    }

    /// Advances virtual time by `dt_s`, moves every object and
    /// transmits updates per the update policy.
    pub fn step(&mut self, ls: &mut SimDeployment, dt_s: f64) -> StepStats {
        let target = ls.now_us() + (dt_s * SECOND as f64) as u64;
        ls.advance_time(target);
        let now = ls.now_us();
        let mut stats = StepStats::default();
        for obj in &mut self.objects {
            if !obj.alive {
                continue;
            }
            let before = obj.model.position();
            let pos = obj.model.step(dt_s);
            stats.moved += 1;
            if dt_s > 0.0 {
                obj.velocity_mps = (pos - before) / dt_s;
            }
            if self.cfg.policy.decide(&obj.last_report, pos, now) == UpdateDecision::Skip {
                continue;
            }
            stats.updates_sent += 1;
            let sighting = Sighting::new(obj.oid, now, pos, self.cfg.acc_sens_m);
            match ls.update(obj.agent, sighting) {
                Ok(UpdateOutcome::Ack { offered_acc_m }) => {
                    stats.acks += 1;
                    obj.offered_acc_m = offered_acc_m;
                }
                Ok(UpdateOutcome::NewAgent { agent, offered_acc_m }) => {
                    stats.handovers += 1;
                    obj.agent = agent;
                    obj.offered_acc_m = offered_acc_m;
                }
                Ok(UpdateOutcome::OutOfServiceArea) => {
                    stats.deregistered += 1;
                    obj.alive = false;
                    continue;
                }
                Err(_) => continue, // lost messages: retry next step
            }
            obj.last_report = LastReport { pos, time_us: now, velocity_mps: obj.velocity_mps };
        }
        stats
    }
}
