//! Generative chaos: a property-based scenario fuzzer with shrinking.
//!
//! The scripted suites (`chaos_scenarios.rs`, `churn_scenarios.rs`)
//! explore a handful of curated timelines. This module explores the
//! *space*: a seeded generator emits random but **valid** scenario
//! timelines — mixed update/query load interleaved with `Partition`,
//! `LatencySpike`, `Crash`, `PowerLoss`, `Spawn`, `Retire` and
//! `PromoteStandby` verbs — runs each against the
//! [`scenario`](crate::scenario) oracle (optionally with the §6.5
//! caches enabled under bounded-staleness semantics), and on failure
//! **shrinks** the timeline to a minimal reproducer printed as a
//! single replayable DSL line.
//!
//! Validity is enforced at construction time by replaying every
//! candidate timeline against a [`Hierarchy`] model: never crash an
//! already-down server, never restart a retired one, never retire the
//! last mergeable leaf, never promote over a live root, and close
//! every crash with a restart (or a root failover) so the settle phase
//! is reachable. The same checker guards the shrinker, so dropping a
//! `Crash` also drops its paired `Restart` rather than producing a
//! nonsense timeline.
//!
//! Everything is seed-deterministic: `generate(seed, mode)` always
//! yields the same spec, a run of that spec always produces the same
//! trace, and the printed DSL replays the exact scenario via
//! [`replay_dsl`]. `HILOC_FUZZ_CASES` scales batch sizes for longer
//! local runs (CI uses the fixed default).

use crate::mobility::MobilityKind;
use crate::scenario::{subtree_endpoints, FaultAction, ScenarioEvent, ScenarioRun, ScenarioSpec};
use hiloc_core::area::{Hierarchy, HierarchyBuilder};
use hiloc_core::cache::CacheConfig;
use hiloc_core::model::{Micros, UpdatePolicy, SECOND};
use hiloc_geo::{Point, Rect};
use hiloc_net::{Endpoint, FaultPlan, LatencySpike, Partition, ServerId};
use hiloc_util::prop::Gen;
use hiloc_util::rng::RngExt;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Service-area side length used by every generated scenario (m).
const AREA_M: f64 = 1_000.0;
/// Hard cap on the number of servers a timeline may grow to.
const MAX_SERVERS: usize = 32;
/// Hard cap on candidate runs one [`shrink`] call may spend.
const SHRINK_BUDGET: usize = 300;

/// Whether generated scenarios run with the §6.5 caches on, and under
/// which staleness bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheMode {
    /// All caches off — the paper's measured prototype.
    Off,
    /// Area, agent and position caches on.
    On {
        /// The position cache's `position_max_aged_acc_m` bound (m).
        max_aged_acc_m: f64,
    },
}

impl CacheMode {
    /// The [`CacheConfig`] this mode deploys.
    pub fn to_config(self) -> CacheConfig {
        match self {
            CacheMode::Off => CacheConfig::default(),
            CacheMode::On { max_aged_acc_m } => CacheConfig {
                position_max_aged_acc_m: max_aged_acc_m,
                ..CacheConfig::all_enabled()
            },
        }
    }
}

/// A generated (or parsed) fuzz scenario: everything needed to rebuild
/// the exact [`ScenarioSpec`], in a shape the shrinker can mutate and
/// the DSL can round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSpec {
    /// Master seed (placement, mobility, network jitter).
    pub seed: u64,
    /// Hierarchy depth below the root.
    pub levels: u32,
    /// Grid fan-out per level.
    pub fanout: u32,
    /// Number of tracked objects.
    pub num_objects: u64,
    /// Object speed (m/s).
    pub speed_mps: f64,
    /// Chaos steps before the settle phase.
    pub steps: u32,
    /// Virtual seconds per step.
    pub step_dt_s: f64,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Update-reporting policy.
    pub policy: UpdatePolicy,
    /// Mixed query load through the root during chaos.
    pub mid_chaos_queries: bool,
    /// Use the macro-benchmark query mix (Zipf-skewed pos/range/NN
    /// entering at hot leaves) instead of the root round. Only
    /// meaningful when `mid_chaos_queries` is set.
    pub macro_mix: bool,
    /// §6.5 cache mode.
    pub caches: CacheMode,
    /// Deploy the replication subsystem (warm standbys + leaf replica
    /// rings). Standby slots shift every later-spawned server id, so
    /// the validity model mirrors the reservation exactly.
    pub replication: bool,
    /// Global message-drop probability.
    pub drop_prob: f64,
    /// Global message-duplication probability.
    pub dup_prob: f64,
    /// Message reordering `(probability, spread_us)`, when enabled.
    pub reorder: Option<(f64, u64)>,
    /// Timed partitions: `(start_us, end_us, isolated server ids)`.
    pub partitions: Vec<(Micros, Micros, Vec<u32>)>,
    /// Timed latency spikes: `(start_us, end_us, extra_us)`.
    pub spikes: Vec<(Micros, Micros, Micros)>,
    /// The scripted timeline verbs.
    pub events: Vec<ScenarioEvent>,
}

impl FuzzSpec {
    /// The initial (pre-reshape) hierarchy of this spec.
    pub fn hierarchy(&self) -> Hierarchy {
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(AREA_M, AREA_M));
        HierarchyBuilder::grid(rect, self.levels, self.fanout).build().expect("fuzz grid")
    }

    /// The concrete scenario this spec runs.
    pub fn to_scenario(&self) -> ScenarioSpec {
        let mut faults = FaultPlan::uniform(self.drop_prob, self.dup_prob);
        if let Some((p, spread)) = self.reorder {
            faults = faults.with_reorder(p, spread);
        }
        for (start, end, ids) in &self.partitions {
            let eps: Vec<Endpoint> =
                ids.iter().map(|&id| Endpoint::Server(ServerId(id))).collect();
            faults = faults.with_partition(Partition::isolate(*start, *end, eps));
        }
        for (start, end, extra) in &self.spikes {
            faults = faults.with_spike(LatencySpike::new(*start, *end, *extra));
        }
        ScenarioSpec {
            name: format!("fuzz-{}", self.seed),
            seed: self.seed,
            area_m: AREA_M,
            levels: self.levels,
            fanout: self.fanout,
            num_objects: self.num_objects,
            speed_mps: self.speed_mps,
            mobility: self.mobility,
            policy: self.policy,
            step_dt_s: self.step_dt_s,
            steps: self.steps,
            faults,
            durable: true,
            mid_chaos_queries: self.mid_chaos_queries,
            macro_mix: self.macro_mix,
            caches: self.caches.to_config(),
            replication: self.replication,
            events: self.events.clone(),
            ..Default::default()
        }
    }

    /// Whether the timeline is constructible: every verb is legal at
    /// its step (replayed against a hierarchy model) and every crashed
    /// server is back up — or retired — before the settle phase.
    pub fn valid(&self) -> bool {
        if self.levels == 0
            || self.fanout < 2
            || self.steps < 2
            || self.num_objects == 0
            || self.events.iter().any(|e| e.at_step >= self.steps)
        {
            return false;
        }
        let mut model = if self.replication {
            TimelineModel::new_replicated(self.hierarchy())
        } else {
            TimelineModel::new(self.hierarchy())
        };
        for step in 0..self.steps {
            for ev in self.events.iter().filter(|e| e.at_step == step) {
                if !model.try_apply(&ev.action) {
                    return false;
                }
            }
        }
        model.closed()
    }
}

// --------------------------------------------------------------- model

/// Replays a timeline against the hierarchy the runtime would build,
/// mirroring `SimDeployment`'s preconditions: which servers are up,
/// which are retired, which reshape verbs the tree accepts — and,
/// with replication on, the standby-slot reservations
/// (`SimDeployment::enable_replication` / `designate_standby`), since
/// every reserved slot shifts the id the next `Spawn` or cold
/// failover allocates.
struct TimelineModel {
    h: Hierarchy,
    down: std::collections::BTreeSet<u32>,
    /// Warm-standby slots (`shadowed non-leaf → standby`), mirrored
    /// from the runtime when `replication` is set.
    standbys: BTreeMap<u32, u32>,
    replication: bool,
}

impl TimelineModel {
    fn new(h: Hierarchy) -> Self {
        TimelineModel { h, down: Default::default(), standbys: BTreeMap::new(), replication: false }
    }

    /// Mirrors `SimDeployment::enable_replication`: one standby slot
    /// reserved per active non-leaf, in id order.
    fn new_replicated(h: Hierarchy) -> Self {
        let mut model = TimelineModel::new(h);
        model.replication = true;
        let non_leaves: Vec<ServerId> =
            model.h.active().filter(|c| !c.is_leaf()).map(|c| c.id).collect();
        for of in non_leaves {
            let slot = model.h.reserve_standby(of).expect("standby reservation");
            model.standbys.insert(of.0, slot.0);
        }
        model
    }

    fn in_range(&self, id: ServerId) -> bool {
        (id.0 as usize) < self.h.len()
    }

    /// Whether `id` is a reserved standby slot: hierarchy-retired, but
    /// with a live server instance that crashes and restarts normally.
    fn is_standby_slot(&self, id: ServerId) -> bool {
        self.standbys.values().any(|&s| s == id.0)
    }

    /// Live standby slots — crash targets the plain `active()` walk
    /// misses.
    fn live_standbys(&self) -> Vec<u32> {
        self.standbys.values().copied().filter(|s| !self.down.contains(s)).collect()
    }

    /// Applies one verb when it is legal at the current state; `false`
    /// (state untouched) otherwise.
    fn try_apply(&mut self, action: &FaultAction) -> bool {
        match action {
            FaultAction::Crash(id) | FaultAction::PowerLoss(id) => {
                if !self.in_range(*id)
                    || (self.h.is_retired(*id) && !self.is_standby_slot(*id))
                    || self.down.contains(&id.0)
                {
                    return false;
                }
                self.down.insert(id.0);
                true
            }
            FaultAction::Restart(id) => {
                if !self.in_range(*id)
                    || (self.h.is_retired(*id) && !self.is_standby_slot(*id))
                    || !self.down.contains(&id.0)
                {
                    return false;
                }
                self.down.remove(&id.0);
                true
            }
            FaultAction::Checkpoint(id) => {
                // Legal on any live server; leaves the timeline state
                // untouched (a checkpoint changes only on-disk layout).
                self.in_range(*id)
                    && (!self.h.is_retired(*id) || self.is_standby_slot(*id))
                    && !self.down.contains(&id.0)
            }
            FaultAction::Spawn { split } => {
                if !self.in_range(*split) || self.h.len() >= MAX_SERVERS {
                    return false;
                }
                self.h.split_leaf(*split).is_ok()
            }
            FaultAction::Retire(id) => {
                // A down server cannot drain (the runtime asserts).
                if !self.in_range(*id) || self.down.contains(&id.0) {
                    return false;
                }
                self.h.retire_leaf(*id).is_ok()
            }
            FaultAction::PromoteStandby => {
                // Failover over a live root would split the brain.
                let old = self.h.root();
                if !self.down.contains(&old.0) {
                    return false;
                }
                // Mirror `SimDeployment::promote_root` exactly: the
                // mapping is consumed either way; a live standby is
                // adopted in place (no new id), a dead or absent one
                // falls back to a freshly allocated successor — and
                // with replication on, the new root gets a fresh
                // reserved slot in both cases.
                let new_root = match self.standbys.remove(&old.0) {
                    Some(standby) if !self.down.contains(&standby) => {
                        let standby = ServerId(standby);
                        if self.h.fail_over_root_to(standby).is_err() {
                            return false;
                        }
                        standby
                    }
                    _ => match self.h.fail_over_root() {
                        Ok(id) => id,
                        Err(_) => return false,
                    },
                };
                if self.replication {
                    let slot = self.h.reserve_standby(new_root).expect("standby reservation");
                    self.standbys.insert(new_root.0, slot.0);
                }
                true
            }
            FaultAction::HealNetwork => true,
        }
    }

    /// Every still-down server is retired (exempt from the settle
    /// check); anything else must have been restarted.
    fn closed(&self) -> bool {
        self.down.iter().all(|&id| self.h.is_retired(ServerId(id)))
    }

    fn down_unretired(&self) -> Vec<ServerId> {
        self.down
            .iter()
            .map(|&id| ServerId(id))
            .filter(|&id| !self.h.is_retired(id))
            .collect()
    }
}

// ----------------------------------------------------------- generator

/// Generates a random, valid fuzz scenario for `seed`. Same seed, same
/// spec — the seed alone replays the generation bit-for-bit.
pub fn generate(seed: u64, caches: CacheMode) -> FuzzSpec {
    generate_with(seed, caches, false)
}

/// [`generate`] with the replication subsystem deployed. The timeline
/// walk then models the standby-slot reservations, adds live standbys
/// to the crash pool (a standby dying mid-delta-stream is exactly the
/// race worth fuzzing), biases crashes toward the root and its
/// shadow, and prefers a `PromoteStandby` follow-up over a root
/// restart — the campaign must *exercise* promotions, not trip over
/// them by luck. With `replication = false` the draw sequence is
/// bit-identical to [`generate`].
pub fn generate_with(seed: u64, caches: CacheMode, replication: bool) -> FuzzSpec {
    let mut g = Gen::for_seed(seed);
    let levels = if g.chance(0.5) { 1 } else { 2 };
    let fanout = 2;
    let steps: u32 = g.random_range(10..=16);
    let step_dt_s = 2.0;
    let horizon_us = u64::from(steps) * (step_dt_s as u64) * SECOND;

    let mobility = match g.weighted(&[3, 1, 1]) {
        0 => MobilityKind::RandomWaypoint,
        1 => MobilityKind::Manhattan { spacing_m: g.random_range(50.0..200.0) },
        _ => MobilityKind::GaussMarkov { alpha: g.random_range(0.3..0.9) },
    };
    let policy = if g.chance(0.7) {
        UpdatePolicy::Distance { threshold_m: g.random_range(8.0..16.0) }
    } else {
        UpdatePolicy::Periodic { period_us: g.random_range(3..=6u64) * SECOND }
    };

    let drop_prob = if g.chance(0.5) { g.random_range(0.0..0.10) } else { 0.0 };
    let dup_prob = if g.chance(0.4) { g.random_range(0.0..0.06) } else { 0.0 };
    let reorder = if g.chance(0.4) {
        Some((g.random_range(0.05..0.3), g.random_range(10_000..150_000u64)))
    } else {
        None
    };

    let h0 = {
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(AREA_M, AREA_M));
        HierarchyBuilder::grid(rect, levels, fanout).build().expect("fuzz grid")
    };

    let mut partitions = Vec::new();
    for _ in 0..g.weighted(&[4, 3, 1]) {
        let start = g.random_range(2 * SECOND..(horizon_us * 6 / 10).max(3 * SECOND));
        let dur = g.random_range(4 * SECOND..=16 * SECOND);
        let ids: Vec<u32> = if g.chance(0.5) {
            // Isolate a whole subtree.
            let all: Vec<ServerId> = h0.servers().iter().map(|c| c.id).collect();
            let sub = *g.pick(&all[1..]); // never the root's subtree (everything)
            subtree_endpoints(&h0, sub)
                .iter()
                .filter_map(|e| e.as_server().map(|s| s.0))
                .collect()
        } else {
            // Isolate one or two individual servers.
            let mut ids: Vec<u32> = (0..h0.len() as u32).collect();
            g.shuffle(&mut ids);
            ids.truncate(g.random_range(1..=2));
            ids
        };
        partitions.push((start, start + dur, ids));
    }
    let mut spikes = Vec::new();
    for _ in 0..g.weighted(&[3, 1]) {
        let start = g.random_range(SECOND..(horizon_us * 7 / 10).max(2 * SECOND));
        let dur = g.random_range(2 * SECOND..=10 * SECOND);
        spikes.push((start, start + dur, g.random_range(50_000..400_000u64)));
    }

    // ---- timeline walk: draw verbs only where they are legal *now*,
    // and schedule the follow-up that keeps the timeline closable
    // (every crash gets a restart — or, for a root, maybe a failover).
    let mut model =
        if replication { TimelineModel::new_replicated(h0) } else { TimelineModel::new(h0) };
    let mut events: Vec<ScenarioEvent> = Vec::new();
    let mut scheduled: BTreeMap<u32, Vec<FaultAction>> = BTreeMap::new();
    let budget = g.random_range(0..=5usize);
    let mut drawn = 0usize;
    for step in 1..steps {
        for action in scheduled.remove(&step).unwrap_or_default() {
            if model.try_apply(&action) {
                events.push(ScenarioEvent { at_step: step, action });
            }
        }
        if drawn >= budget || !g.chance(0.55) {
            continue;
        }
        // A crash needs room for its scheduled restart/failover before
        // the settle phase; reshape verbs are fire-and-forget and may
        // land on the very last step (late reshapes are exactly where
        // stale §6.5 cache entries survive into the verdict).
        let crash_ok = step + 2 < steps;
        let live: Vec<u32> = {
            let mut ids: Vec<u32> = model
                .h
                .active()
                .filter(|c| !model.down.contains(&c.id.0))
                .map(|c| c.id.0)
                .collect();
            // Standby slots are retired in the hierarchy but live as
            // processes — with replication on they crash too.
            ids.extend(model.live_standbys());
            ids.sort_unstable();
            ids
        };
        let crashable: Vec<u32> = if crash_ok { live.clone() } else { Vec::new() };
        let splittable: Vec<u32> = if model.h.len() < MAX_SERVERS {
            model
                .h
                .active()
                .filter(|c| c.is_leaf() && c.parent.is_some())
                .map(|c| c.id.0)
                .collect()
        } else {
            Vec::new()
        };
        let retirable: Vec<u32> = model
            .h
            .active()
            .filter(|c| c.is_leaf() && !model.down.contains(&c.id.0))
            .map(|c| c.id.0)
            .filter(|&id| model.h.clone().retire_leaf(ServerId(id)).is_ok())
            .collect();
        // (kind, weight): 0 = crash, 1 = power loss, 2 = spawn,
        // 3 = retire, 4 = checkpoint (often paired with an immediate
        // power loss — the across-the-commit-boundary draw)
        let weights = [
            if crashable.is_empty() { 0 } else { 3 },
            if crashable.is_empty() { 0 } else { 1 },
            if splittable.is_empty() { 0 } else { 2 },
            if retirable.is_empty() { 0 } else { 2 },
            if live.is_empty() { 0 } else { 2 },
        ];
        if weights.iter().all(|&w| w == 0) {
            continue;
        }
        match g.weighted(&weights) {
            kind @ (0 | 1) => {
                // With replication, steer half the crashes at the root
                // or its standby: those are the draws that put the
                // delta stream, the watermark and the promotion path
                // under fire.
                let hot: Vec<u32> = if replication {
                    let root = model.h.root().0;
                    let mut hot: Vec<u32> = crashable
                        .iter()
                        .copied()
                        .filter(|&id| id == root || model.standbys.get(&root) == Some(&id))
                        .collect();
                    hot.sort_unstable();
                    hot
                } else {
                    Vec::new()
                };
                let id = if !hot.is_empty() && g.chance(0.5) {
                    ServerId(*g.pick(&hot))
                } else {
                    ServerId(*g.pick(&crashable))
                };
                let action = if kind == 0 {
                    FaultAction::Crash(id)
                } else {
                    FaultAction::PowerLoss(id)
                };
                if model.try_apply(&action) {
                    events.push(ScenarioEvent { at_step: step, action });
                    let at = (step + g.random_range(1..=4u32)).min(steps - 1);
                    let promote_p = if replication { 0.85 } else { 0.5 };
                    let follow_up = if id == model.h.root() && g.chance(promote_p) {
                        FaultAction::PromoteStandby
                    } else {
                        FaultAction::Restart(id)
                    };
                    scheduled.entry(at).or_default().push(follow_up);
                }
            }
            2 => {
                let split = ServerId(*g.pick(&splittable));
                let action = FaultAction::Spawn { split };
                if model.try_apply(&action) {
                    events.push(ScenarioEvent { at_step: step, action });
                }
            }
            3 => {
                let id = ServerId(*g.pick(&retirable));
                let action = FaultAction::Retire(id);
                if model.try_apply(&action) {
                    events.push(ScenarioEvent { at_step: step, action });
                }
            }
            _ => {
                // A storage checkpoint — and, half the time, a power
                // loss on the same server in the same step, so the loss
                // lands right across the checkpoint commit boundary
                // (manifest committed, WAL truncation maybe lost): the
                // recovery-generation-arbitration case.
                let id = ServerId(*g.pick(&live));
                let action = FaultAction::Checkpoint(id);
                if model.try_apply(&action) {
                    events.push(ScenarioEvent { at_step: step, action });
                    if crash_ok && g.chance(0.5) {
                        let loss = FaultAction::PowerLoss(id);
                        if model.try_apply(&loss) {
                            events.push(ScenarioEvent { at_step: step, action: loss });
                            let at = (step + g.random_range(1..=4u32)).min(steps - 1);
                            let promote_p = if replication { 0.85 } else { 0.5 };
                            let follow_up = if id == model.h.root() && g.chance(promote_p) {
                                FaultAction::PromoteStandby
                            } else {
                                FaultAction::Restart(id)
                            };
                            scheduled.entry(at).or_default().push(follow_up);
                        }
                    }
                }
            }
        }
        drawn += 1;
    }
    // Close the timeline: whatever is still down and not retired comes
    // back up just before the settle phase.
    for id in model.down_unretired() {
        let action = FaultAction::Restart(id);
        if model.try_apply(&action) {
            events.push(ScenarioEvent { at_step: steps - 1, action });
        }
    }
    debug_assert!(model.closed(), "generator left an unclosable timeline");

    FuzzSpec {
        seed,
        levels,
        fanout,
        num_objects: g.random_range(6..=14),
        speed_mps: g.random_range(5.0..20.0),
        steps,
        step_dt_s,
        mobility,
        policy,
        mid_chaos_queries: g.chance(0.7),
        macro_mix: g.chance(0.35),
        caches,
        replication,
        drop_prob,
        dup_prob,
        reorder,
        partitions,
        spikes,
        events,
    }
}

// -------------------------------------------------------- quiet runner

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}
static PANIC_HOOK: Once = Once::new();

/// Runs a spec, converting an oracle panic into `Err(message)` without
/// spewing the (huge) failure report of every shrink candidate to
/// stderr. The silencing is thread-local: concurrent tests keep their
/// normal panic output.
pub fn run_captured(spec: &FuzzSpec) -> Result<ScenarioRun, String> {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| spec.to_scenario().run()));
    QUIET_PANICS.with(|q| q.set(false));
    result.map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

// ------------------------------------------------------------ shrinker

/// Shrinks a failing spec to a (locally) minimal one that still fails:
/// drops timeline verbs (singly, then in dependent pairs), strips
/// faults, shortens the run, thins the fleet and disables the query
/// load — every candidate re-validated against the timeline model and
/// re-run against the oracle. Returns the smallest failing spec found
/// within the shrink budget.
pub fn shrink(spec: &FuzzSpec) -> FuzzSpec {
    let mut best = spec.clone();
    let mut runs = 0usize;
    let still_fails = |s: &FuzzSpec, runs: &mut usize| -> bool {
        if *runs >= SHRINK_BUDGET || !s.valid() {
            return false;
        }
        *runs += 1;
        run_captured(s).is_err()
    };
    loop {
        let mut improved = false;

        // Drop one verb (later verbs first: follow-ups before causes).
        for i in (0..best.events.len()).rev() {
            let mut c = best.clone();
            c.events.remove(i);
            if still_fails(&c, &mut runs) {
                best = c;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // Drop dependent pairs (a crash and its restart/failover).
        'pairs: for i in 0..best.events.len() {
            for j in (i + 1..best.events.len()).rev() {
                let mut c = best.clone();
                c.events.remove(j);
                c.events.remove(i);
                if still_fails(&c, &mut runs) {
                    best = c;
                    improved = true;
                    break 'pairs;
                }
            }
        }
        if improved {
            continue;
        }

        // Strip network faults wholesale, then piecewise.
        if best.drop_prob > 0.0
            || best.dup_prob > 0.0
            || best.reorder.is_some()
            || !best.partitions.is_empty()
            || !best.spikes.is_empty()
        {
            let mut c = best.clone();
            c.drop_prob = 0.0;
            c.dup_prob = 0.0;
            c.reorder = None;
            c.partitions.clear();
            c.spikes.clear();
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        for i in (0..best.partitions.len()).rev() {
            let mut c = best.clone();
            c.partitions.remove(i);
            if still_fails(&c, &mut runs) {
                best = c;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for i in (0..best.spikes.len()).rev() {
            let mut c = best.clone();
            c.spikes.remove(i);
            if still_fails(&c, &mut runs) {
                best = c;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for (zero_drop, zero_dup, no_reorder) in
            [(true, false, false), (false, true, false), (false, false, true)]
        {
            let mut c = best.clone();
            if zero_drop {
                c.drop_prob = 0.0;
            }
            if zero_dup {
                c.dup_prob = 0.0;
            }
            if no_reorder {
                c.reorder = None;
            }
            if c != best && still_fails(&c, &mut runs) {
                best = c;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Shorten the run to just past the last verb.
        let last_step = best.events.iter().map(|e| e.at_step).max().unwrap_or(0);
        if last_step + 2 < best.steps {
            let mut c = best.clone();
            c.steps = last_step + 2;
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        // Thin the fleet.
        for n in [2, best.num_objects / 2] {
            if n >= 2 && n < best.num_objects {
                let mut c = best.clone();
                c.num_objects = n;
                if still_fails(&c, &mut runs) {
                    best = c;
                    improved = true;
                    break;
                }
            }
        }
        if improved {
            continue;
        }
        // Fall back from the macro query mix to the simple root round.
        if best.macro_mix {
            let mut c = best.clone();
            c.macro_mix = false;
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        // Drop the mid-chaos query load.
        if best.mid_chaos_queries {
            let mut c = best.clone();
            c.mid_chaos_queries = false;
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        // Strip the replication subsystem: a failure that survives
        // this is an ordinary protocol bug, not a replication one.
        // (Standby-slot ids shift, so re-validation may veto it.)
        if best.replication {
            let mut c = best.clone();
            c.replication = false;
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        // Flatten the tree.
        if best.levels > 1 {
            let mut c = best.clone();
            c.levels = 1;
            if still_fails(&c, &mut runs) {
                best = c;
                continue;
            }
        }
        break;
    }
    best
}

// ------------------------------------------------------------- the DSL

fn fmt_action(a: &FaultAction) -> String {
    match a {
        FaultAction::Crash(id) => format!("crash:{}", id.0),
        FaultAction::PowerLoss(id) => format!("powerloss:{}", id.0),
        FaultAction::Restart(id) => format!("restart:{}", id.0),
        FaultAction::Spawn { split } => format!("spawn:{}", split.0),
        FaultAction::Retire(id) => format!("retire:{}", id.0),
        FaultAction::Checkpoint(id) => format!("checkpoint:{}", id.0),
        FaultAction::PromoteStandby => "promote".to_string(),
        FaultAction::HealNetwork => "heal".to_string(),
    }
}

fn parse_action(s: &str) -> Result<FaultAction, String> {
    let (verb, arg) = match s.split_once(':') {
        Some((v, a)) => (v, Some(a)),
        None => (s, None),
    };
    let id = |a: Option<&str>| -> Result<ServerId, String> {
        let a = a.ok_or_else(|| format!("verb '{verb}' needs a server id"))?;
        Ok(ServerId(a.parse::<u32>().map_err(|e| format!("bad server id '{a}': {e}"))?))
    };
    match verb {
        "crash" => Ok(FaultAction::Crash(id(arg)?)),
        "powerloss" => Ok(FaultAction::PowerLoss(id(arg)?)),
        "restart" => Ok(FaultAction::Restart(id(arg)?)),
        "spawn" => Ok(FaultAction::Spawn { split: id(arg)? }),
        "retire" => Ok(FaultAction::Retire(id(arg)?)),
        "checkpoint" => Ok(FaultAction::Checkpoint(id(arg)?)),
        "promote" => Ok(FaultAction::PromoteStandby),
        "heal" => Ok(FaultAction::HealNetwork),
        _ => Err(format!("unknown timeline verb '{verb}'")),
    }
}

impl FuzzSpec {
    /// The one-line replay DSL for this spec. Round-trips exactly
    /// through [`parse_dsl`]: every float is printed in its shortest
    /// exact form.
    pub fn to_dsl(&self) -> String {
        let mut out = vec![
            format!("seed={}", self.seed),
            format!("levels={}", self.levels),
            format!("fanout={}", self.fanout),
            format!("objects={}", self.num_objects),
            format!("speed={}", self.speed_mps),
            format!("steps={}", self.steps),
            format!("dt={}", self.step_dt_s),
            match self.mobility {
                MobilityKind::RandomWaypoint => "mobility=waypoint".to_string(),
                MobilityKind::Manhattan { spacing_m } => format!("mobility=manhattan:{spacing_m}"),
                MobilityKind::GaussMarkov { alpha } => format!("mobility=gauss:{alpha}"),
                MobilityKind::Stationary => "mobility=stationary".to_string(),
            },
            match self.policy {
                UpdatePolicy::Distance { threshold_m } => format!("policy=dist:{threshold_m}"),
                UpdatePolicy::Periodic { period_us } => format!("policy=period:{period_us}"),
                UpdatePolicy::DeadReckoning { threshold_m } => format!("policy=dead:{threshold_m}"),
            },
            format!("queries={}", u8::from(self.mid_chaos_queries)),
            format!("mix={}", u8::from(self.macro_mix)),
            match self.caches {
                CacheMode::Off => "caches=off".to_string(),
                CacheMode::On { max_aged_acc_m } => format!("caches=on:{max_aged_acc_m}"),
            },
        ];
        if self.replication {
            out.push("repl=1".to_string());
        }
        if self.drop_prob > 0.0 {
            out.push(format!("drop={}", self.drop_prob));
        }
        if self.dup_prob > 0.0 {
            out.push(format!("dup={}", self.dup_prob));
        }
        if let Some((p, spread)) = self.reorder {
            out.push(format!("reorder={p}:{spread}"));
        }
        for (start, end, ids) in &self.partitions {
            let ids: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
            out.push(format!("part={start}-{end}:{}", ids.join("+")));
        }
        for (start, end, extra) in &self.spikes {
            out.push(format!("spike={start}-{end}:{extra}"));
        }
        for ev in &self.events {
            out.push(format!("ev={}:{}", ev.at_step, fmt_action(&ev.action)));
        }
        out.join(" ")
    }
}

/// Parses a replay line produced by [`FuzzSpec::to_dsl`] (as printed
/// by a failing fuzz batch) back into the exact spec.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_dsl(dsl: &str) -> Result<FuzzSpec, String> {
    fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse::<T>().map_err(|e| format!("bad {key}='{v}': {e}"))
    }
    let mut spec = FuzzSpec {
        seed: 0,
        levels: 1,
        fanout: 2,
        num_objects: 8,
        speed_mps: 10.0,
        steps: 10,
        step_dt_s: 2.0,
        mobility: MobilityKind::RandomWaypoint,
        policy: UpdatePolicy::Distance { threshold_m: 10.0 },
        mid_chaos_queries: false,
        macro_mix: false,
        caches: CacheMode::Off,
        replication: false,
        drop_prob: 0.0,
        dup_prob: 0.0,
        reorder: None,
        partitions: Vec::new(),
        spikes: Vec::new(),
        events: Vec::new(),
    };
    for token in dsl.split_whitespace() {
        let (key, value) =
            token.split_once('=').ok_or_else(|| format!("token '{token}' is not key=value"))?;
        match key {
            "seed" => spec.seed = num("seed", value)?,
            "levels" => spec.levels = num("levels", value)?,
            "fanout" => spec.fanout = num("fanout", value)?,
            "objects" => spec.num_objects = num("objects", value)?,
            "speed" => spec.speed_mps = num("speed", value)?,
            "steps" => spec.steps = num("steps", value)?,
            "dt" => spec.step_dt_s = num("dt", value)?,
            "mobility" => {
                spec.mobility = match value.split_once(':') {
                    None if value == "waypoint" => MobilityKind::RandomWaypoint,
                    None if value == "stationary" => MobilityKind::Stationary,
                    Some(("manhattan", a)) => {
                        MobilityKind::Manhattan { spacing_m: num("mobility", a)? }
                    }
                    Some(("gauss", a)) => MobilityKind::GaussMarkov { alpha: num("mobility", a)? },
                    _ => return Err(format!("unknown mobility '{value}'")),
                }
            }
            "policy" => {
                spec.policy = match value.split_once(':') {
                    Some(("dist", a)) => UpdatePolicy::Distance { threshold_m: num("policy", a)? },
                    Some(("period", a)) => UpdatePolicy::Periodic { period_us: num("policy", a)? },
                    Some(("dead", a)) => {
                        UpdatePolicy::DeadReckoning { threshold_m: num("policy", a)? }
                    }
                    _ => return Err(format!("unknown policy '{value}'")),
                }
            }
            "queries" => spec.mid_chaos_queries = value == "1",
            "mix" => spec.macro_mix = value == "1",
            "caches" => {
                spec.caches = match value.split_once(':') {
                    None if value == "off" => CacheMode::Off,
                    Some(("on", a)) => CacheMode::On { max_aged_acc_m: num("caches", a)? },
                    _ => return Err(format!("unknown cache mode '{value}'")),
                }
            }
            "repl" => spec.replication = value == "1",
            "drop" => spec.drop_prob = num("drop", value)?,
            "dup" => spec.dup_prob = num("dup", value)?,
            "reorder" => {
                let (p, spread) =
                    value.split_once(':').ok_or_else(|| format!("bad reorder '{value}'"))?;
                spec.reorder = Some((num("reorder", p)?, num("reorder", spread)?));
            }
            "part" => {
                let (window, ids) =
                    value.split_once(':').ok_or_else(|| format!("bad part '{value}'"))?;
                let (start, end) =
                    window.split_once('-').ok_or_else(|| format!("bad part window '{window}'"))?;
                let ids = ids
                    .split('+')
                    .map(|i| num::<u32>("part id", i))
                    .collect::<Result<Vec<u32>, String>>()?;
                spec.partitions.push((num("part", start)?, num("part", end)?, ids));
            }
            "spike" => {
                let (window, extra) =
                    value.split_once(':').ok_or_else(|| format!("bad spike '{value}'"))?;
                let (start, end) =
                    window.split_once('-').ok_or_else(|| format!("bad spike window '{window}'"))?;
                spec.spikes.push((
                    num("spike", start)?,
                    num("spike", end)?,
                    num("spike", extra)?,
                ));
            }
            "ev" => {
                let (step, verb) =
                    value.split_once(':').ok_or_else(|| format!("bad ev '{value}'"))?;
                spec.events.push(ScenarioEvent {
                    at_step: num("ev step", step)?,
                    action: parse_action(verb)?,
                });
            }
            _ => return Err(format!("unknown key '{key}'")),
        }
    }
    Ok(spec)
}

/// Parses and runs a committed reproducer, panicking with the full
/// oracle report on failure — the regression-corpus entry point.
///
/// # Panics
///
/// Panics when the DSL is malformed, the timeline is invalid, or the
/// oracle rejects the run.
pub fn replay_dsl(dsl: &str) -> ScenarioRun {
    let spec = parse_dsl(dsl).expect("malformed reproducer DSL");
    assert!(spec.valid(), "reproducer timeline is not constructible: {dsl}");
    spec.to_scenario().run()
}

// --------------------------------------------------------------- batch

/// Aggregates of one green fuzz batch, for gate assertions: the batch
/// must actually have exercised the machinery, not just idled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Scenarios run (all oracle-green).
    pub cases: u32,
    /// Timeline verbs applied across the batch.
    pub events: u64,
    /// Scenarios that reshaped the tree (spawn/retire/promote).
    pub reshapes: u32,
    /// Scenarios that promoted over a crashed root.
    pub promotions: u32,
    /// Scenarios that crashed at least one server.
    pub crashes: u32,
    /// Scenarios that checkpointed a durable server mid-run.
    pub checkpoints: u32,
    /// Scenarios where a checkpoint was immediately followed by a
    /// same-step power loss on the same server — the loss lands right
    /// across the checkpoint commit boundary, exercising recovery
    /// generation arbitration.
    pub checkpoint_cuts: u32,
    /// §6.5 cache answers served across the batch.
    pub cache_answers: u64,
    /// Bulk state transfers completed across the batch.
    pub transfers_completed: u64,
    /// Objects alive at the verdicts (sum).
    pub alive: u64,
}

/// The case count for a batch: `default`, overridden by the
/// `HILOC_FUZZ_CASES` environment knob for longer local runs.
pub fn cases_from_env(default: u32) -> u32 {
    std::env::var("HILOC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Runs `cases` generated scenarios derived from `base_seed`. Each is
/// oracle-checked; the first failure is shrunk to a minimal reproducer
/// and reported as a panic carrying one replayable DSL line.
///
/// # Panics
///
/// Panics with the shrunk reproducer when any generated scenario
/// violates an oracle invariant.
pub fn fuzz_batch(base_seed: u64, cases: u32, caches: CacheMode) -> BatchStats {
    fuzz_batch_with(base_seed, cases, caches, false)
}

/// [`fuzz_batch`] over [`generate_with`]: with `replication` set,
/// every generated scenario deploys warm standbys and the leaf replica
/// rings, and the generator's bias steers the timelines at the new
/// verbs (root/standby crashes, `PromoteStandby`).
///
/// # Panics
///
/// Panics with the shrunk reproducer when any generated scenario
/// violates an oracle invariant.
pub fn fuzz_batch_with(
    base_seed: u64,
    cases: u32,
    caches: CacheMode,
    replication: bool,
) -> BatchStats {
    let mut stats = BatchStats::default();
    for case in 0..cases {
        let seed = base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let spec = generate_with(seed, caches, replication);
        debug_assert!(spec.valid(), "generator produced an invalid timeline");
        match run_captured(&spec) {
            Ok(run) => {
                stats.cases += 1;
                stats.events += spec.events.len() as u64;
                if spec.events.iter().any(|e| {
                    matches!(
                        e.action,
                        FaultAction::Spawn { .. }
                            | FaultAction::Retire(_)
                            | FaultAction::PromoteStandby
                    )
                }) {
                    stats.reshapes += 1;
                }
                if spec.events.iter().any(|e| matches!(e.action, FaultAction::PromoteStandby)) {
                    stats.promotions += 1;
                }
                if spec
                    .events
                    .iter()
                    .any(|e| matches!(e.action, FaultAction::Crash(_) | FaultAction::PowerLoss(_)))
                {
                    stats.crashes += 1;
                }
                if spec.events.iter().any(|e| matches!(e.action, FaultAction::Checkpoint(_))) {
                    stats.checkpoints += 1;
                }
                if spec.events.windows(2).any(|w| {
                    matches!(
                        (&w[0].action, &w[1].action),
                        (FaultAction::Checkpoint(a), FaultAction::PowerLoss(b))
                            if a == b && w[0].at_step == w[1].at_step
                    )
                }) {
                    stats.checkpoint_cuts += 1;
                }
                stats.cache_answers += run.stats.cache_answers;
                stats.transfers_completed += run.stats.transfers_completed;
                stats.alive += run.alive as u64;
            }
            Err(first_failure) => {
                let minimal = shrink(&spec);
                let failure =
                    run_captured(&minimal).err().unwrap_or_else(|| first_failure.clone());
                let headline = |s: &str| s.lines().next().unwrap_or("").to_string();
                panic!(
                    "fuzzer found a failing scenario (case {case}, seed {seed}, {} verbs; \
                     shrunk to {} verbs)\n\
                     --- replay with: hiloc_sim::fuzz::replay_dsl(\"{}\")\n\
                     --- original failure: {}\n\
                     --- shrunk failure: {}\n\
                     --- full shrunk report below --\n{failure}",
                    spec.events.len(),
                    minimal.events.len(),
                    minimal.to_dsl(),
                    headline(&first_failure),
                    headline(&failure),
                );
            }
        }
    }
    stats
}
