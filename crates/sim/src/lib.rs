//! Mobility models, workload generators and measurement utilities for
//! hiloc experiments.
//!
//! The paper's evaluation (§7) used uniformly random object positions
//! and closed-loop load generators; its future-work section (§8) calls
//! for studying "the influence of movement and querying characteristics
//! on the performance of different configurations of the LS … for
//! example, the density of the tracked objects or their moving patterns
//! as well as the concrete mix of different types of queries and their
//! degree of locality". This crate provides exactly those knobs:
//!
//! * [`mobility`] — random waypoint, Manhattan grid, Gauss–Markov and
//!   Zipf-hot-spot models, all seeded and deterministic;
//! * [`WorkloadGen`] — query mixes with a locality model and Poisson
//!   arrivals;
//! * [`Fleet`] — registers a population of tracked objects against a
//!   [`SimDeployment`](hiloc_core::runtime::SimDeployment) and moves
//!   them with a configurable update policy;
//! * [`Samples`] — latency/throughput summaries (mean, percentiles);
//! * [`scenario`] — scripted chaos scenarios (partitions, crashes,
//!   restarts) with an oracle that checks no registered object is ever
//!   lost and query answers stay within the accuracy contract;
//! * [`fuzz`] — a generative scenario fuzzer: seeded random (but
//!   valid) fault/reshape timelines run against the same oracle, with
//!   shrinking to a one-line replayable reproducer, including runs
//!   with the §6.5 caches enabled under bounded-staleness semantics;
//! * [`real`] — the same generative idea pointed at the *deployment*
//!   runtimes: seeded chaos plans (crash / restart / partition-by-drop
//!   / overload bursts) executed over the sharded threaded and UDP
//!   engines with an exactness oracle, plus a simulator parity
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod mobility;
pub mod real;
pub mod scenario;
mod stats;
mod workload;
mod zipf;

mod fleet;

pub use fleet::{Fleet, FleetConfig, InboxStats, StepStats};
pub use stats::{Samples, Summary};
pub use workload::{OpKind, QueryMix, WorkloadGen, WorkloadParams};
pub use zipf::Zipf;
