//! Gauss–Markov mobility: temporally correlated velocity.

use super::{normal_sample, object_rng, MobilityModel};
use hiloc_geo::{Point, Rect};
use hiloc_util::rng::StdRng;

/// Gauss–Markov mobility: each step the velocity is a convex blend of
/// its previous value, a long-run mean and Gaussian noise:
///
/// `v' = α·v + (1−α)·v̄ + σ·√(1−α²)·w`
///
/// `α → 1` produces near-straight trajectories; `α = 0` is a random
/// walk. Objects reflect off the area boundary.
#[derive(Debug)]
pub struct GaussMarkov {
    area: Rect,
    pos: Point,
    velocity: Point,
    mean_speed: f64,
    alpha: f64,
    rng: StdRng,
}

impl GaussMarkov {
    /// Creates the model with memory `alpha ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ [0, 1)` or `speed_mps` is not finite/≥ 0.
    pub fn new(area: Rect, start: Point, speed_mps: f64, alpha: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        assert!(speed_mps >= 0.0 && speed_mps.is_finite());
        let mut rng = object_rng(seed, 2);
        let theta = normal_sample(&mut rng) * std::f64::consts::PI;
        let velocity = Point::new(theta.cos(), theta.sin()) * speed_mps;
        GaussMarkov {
            area,
            pos: super::clamp_into(area, start),
            velocity,
            mean_speed: speed_mps,
            alpha,
            rng,
        }
    }
}

impl MobilityModel for GaussMarkov {
    fn position(&self) -> Point {
        self.pos
    }

    fn step(&mut self, dt_s: f64) -> Point {
        let a = self.alpha;
        let noise_scale = self.mean_speed * (1.0 - a * a).sqrt();
        // Mean velocity points toward the area center, gently pulling
        // wanderers back inside.
        let center_pull = (self.area.center() - self.pos).normalized().unwrap_or(Point::ORIGIN)
            * self.mean_speed
            * 0.2;
        self.velocity = self.velocity * a
            + center_pull * (1.0 - a)
            + Point::new(normal_sample(&mut self.rng), normal_sample(&mut self.rng))
                * noise_scale
                * (1.0 - a);
        // Cap at 2x nominal speed to keep accuracy ageing meaningful.
        let cap = 2.0 * self.mean_speed.max(1e-9);
        if self.velocity.norm() > cap {
            self.velocity = self.velocity.normalized().expect("nonzero") * cap;
        }
        let mut next = self.pos + self.velocity * dt_s;
        // Reflect at boundaries.
        let eps = super::EDGE_MARGIN_M;
        if next.x < self.area.min().x || next.x >= self.area.max().x - eps {
            self.velocity = Point::new(-self.velocity.x, self.velocity.y);
            next.x = next.x.clamp(self.area.min().x, self.area.max().x - eps);
        }
        if next.y < self.area.min().y || next.y >= self.area.max().y - eps {
            self.velocity = Point::new(self.velocity.x, -self.velocity.y);
            next.y = next.y.clamp(self.area.min().y, self.area.max().y - eps);
        }
        self.pos = next;
        self.pos
    }

    fn speed_mps(&self) -> f64 {
        self.mean_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::test_area;

    #[test]
    fn high_alpha_is_smoother_than_low_alpha() {
        // Measure total turning angle: high alpha must turn less.
        let turning = |alpha: f64| {
            let mut m = GaussMarkov::new(test_area(), Point::new(500.0, 500.0), 10.0, alpha, 11);
            let mut prev_dir: Option<Point> = None;
            let mut total = 0.0;
            let mut prev = m.position();
            for _ in 0..500 {
                let p = m.step(1.0);
                if let Some(d) = (p - prev).normalized() {
                    if let Some(pd) = prev_dir {
                        total += pd.cross(d).asin().abs();
                    }
                    prev_dir = Some(d);
                }
                prev = p;
            }
            total
        };
        assert!(turning(0.95) < turning(0.1), "alpha should smooth trajectories");
    }

    #[test]
    fn speed_capped() {
        let mut m = GaussMarkov::new(test_area(), Point::new(500.0, 500.0), 10.0, 0.3, 12);
        let mut prev = m.position();
        for _ in 0..500 {
            let p = m.step(1.0);
            assert!(prev.distance(p) <= 20.0 + 1e-6, "exceeded 2x speed cap");
            prev = p;
        }
    }
}
