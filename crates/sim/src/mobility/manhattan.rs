//! Manhattan-grid mobility: movement constrained to a street grid.

use super::{object_rng, MobilityModel};
use hiloc_geo::{Point, Rect};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::RngExt;

/// Movement along an axis-aligned street grid: objects travel along
/// streets (grid lines) and may turn at intersections — the canonical
/// urban-vehicle model, matching the paper's city-guide motivation.
#[derive(Debug)]
pub struct ManhattanGrid {
    area: Rect,
    spacing_m: f64,
    pos: Point,
    /// Unit direction, axis-aligned.
    dir: Point,
    speed_mps: f64,
    rng: StdRng,
}

impl ManhattanGrid {
    /// Creates the model; `start` is snapped to the nearest horizontal
    /// street.
    ///
    /// # Panics
    ///
    /// Panics if `spacing_m` or `speed_mps` is not positive/finite.
    pub fn new(area: Rect, start: Point, speed_mps: f64, spacing_m: f64, seed: u64) -> Self {
        assert!(spacing_m > 0.0 && spacing_m.is_finite());
        assert!(speed_mps >= 0.0 && speed_mps.is_finite());
        let mut rng = object_rng(seed, 1);
        // Snap to the nearest horizontal street inside the area.
        let y = snap(start.y - area.min().y, spacing_m) + area.min().y;
        let pos = Point::new(
            start.x.clamp(area.min().x, area.max().x - super::EDGE_MARGIN_M),
            y.clamp(area.min().y, area.max().y - super::EDGE_MARGIN_M),
        );
        let dir = if rng.random_bool(0.5) { Point::new(1.0, 0.0) } else { Point::new(-1.0, 0.0) };
        ManhattanGrid { area, spacing_m, pos, dir, speed_mps, rng }
    }

    /// Distance to the next intersection along the current direction.
    fn to_next_intersection(&self) -> f64 {
        let along = if self.dir.x != 0.0 {
            self.pos.x - self.area.min().x
        } else {
            self.pos.y - self.area.min().y
        };
        let sign = self.dir.x + self.dir.y; // ±1
        let cell = along / self.spacing_m;
        let next = if sign > 0.0 {
            (cell.floor() + 1.0) * self.spacing_m - along
        } else {
            along - (cell.ceil() - 1.0) * self.spacing_m
        };
        if next <= 1e-9 {
            self.spacing_m
        } else {
            next
        }
    }

    fn maybe_turn(&mut self) {
        let r: f64 = self.rng.random();
        // 50% straight, 25% left, 25% right.
        if r < 0.5 {
            return;
        }
        let left = self.dir.perp();
        self.dir = if r < 0.75 { left } else { -left };
    }

    fn bounce_if_needed(&mut self) {
        let eps = super::EDGE_MARGIN_M;
        if self.pos.x <= self.area.min().x + eps && self.dir.x < 0.0 {
            self.dir = Point::new(1.0, 0.0);
        } else if self.pos.x >= self.area.max().x - 2.0 * eps && self.dir.x > 0.0 {
            self.dir = Point::new(-1.0, 0.0);
        }
        if self.pos.y <= self.area.min().y + eps && self.dir.y < 0.0 {
            self.dir = Point::new(0.0, 1.0);
        } else if self.pos.y >= self.area.max().y - 2.0 * eps && self.dir.y > 0.0 {
            self.dir = Point::new(0.0, -1.0);
        }
    }
}

fn snap(v: f64, spacing: f64) -> f64 {
    (v / spacing).round() * spacing
}

impl MobilityModel for ManhattanGrid {
    fn position(&self) -> Point {
        self.pos
    }

    fn step(&mut self, dt_s: f64) -> Point {
        let mut budget = self.speed_mps * dt_s;
        let mut hops = 0;
        while budget > 0.0 && hops < 10_000 {
            hops += 1;
            self.bounce_if_needed();
            let next = self.to_next_intersection().min(budget);
            self.pos = super::clamp_into(self.area, self.pos + self.dir * next);
            budget -= next;
            if budget > 0.0 {
                self.maybe_turn();
            }
        }
        self.pos
    }

    fn speed_mps(&self) -> f64 {
        self.speed_mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::test_area;

    #[test]
    fn stays_on_grid_lines() {
        let spacing = 100.0;
        let mut m = ManhattanGrid::new(test_area(), Point::new(500.0, 487.0), 20.0, spacing, 5);
        for _ in 0..500 {
            let p = m.step(1.0);
            let on_v = ((p.x / spacing).round() * spacing - p.x).abs() < 1e-6;
            let on_h = ((p.y / spacing).round() * spacing - p.y).abs() < 1e-6;
            // Near the clamped boundary the street may be the border
            // itself, which is within one margin of a grid line.
            let near_border = p.x < 1.0
                || p.y < 1.0
                || p.x > 999.0 - 1.0
                || p.y > 999.0 - 1.0;
            assert!(on_v || on_h || near_border, "off-grid at {p}");
        }
    }

    #[test]
    fn turns_happen() {
        let mut m = ManhattanGrid::new(test_area(), Point::new(500.0, 500.0), 50.0, 100.0, 6);
        let mut seen_horizontal = false;
        let mut seen_vertical = false;
        let mut prev = m.position();
        for _ in 0..500 {
            let p = m.step(1.0);
            if (p.x - prev.x).abs() > 1e-9 {
                seen_horizontal = true;
            }
            if (p.y - prev.y).abs() > 1e-9 {
                seen_vertical = true;
            }
            prev = p;
        }
        assert!(seen_horizontal && seen_vertical);
    }
}
