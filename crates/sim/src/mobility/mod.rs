//! Mobility models for tracked objects.
//!
//! All models are deterministic given their seed, keep the object
//! strictly inside their configured area (the service's root area,
//! shrunk by a hair so half-open boundary rules never bite), and expose
//! the same [`MobilityModel`] interface.

mod gauss_markov;
mod manhattan;
mod random_waypoint;

pub use gauss_markov::GaussMarkov;
pub use manhattan::ManhattanGrid;
pub use random_waypoint::RandomWaypoint;

use hiloc_geo::{Point, Rect};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

/// A mobility model: advances an object's position through time.
pub trait MobilityModel: Send {
    /// Current position.
    fn position(&self) -> Point;

    /// Advances the model by `dt_s` seconds, returning the new
    /// position.
    fn step(&mut self, dt_s: f64) -> Point;

    /// The model's nominal speed in m/s (for accuracy ageing).
    fn speed_mps(&self) -> f64;
}

/// Which mobility model to instantiate (configuration-level enum).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityKind {
    /// Straight legs to uniformly random waypoints.
    RandomWaypoint,
    /// Axis-aligned movement on a street grid with the given spacing.
    Manhattan {
        /// Street spacing in meters.
        spacing_m: f64,
    },
    /// Temporally correlated velocity (Gauss–Markov) with the given
    /// memory parameter `alpha ∈ [0, 1)`.
    GaussMarkov {
        /// Velocity memory (0 = memoryless, →1 = straight lines).
        alpha: f64,
    },
    /// No movement at all.
    Stationary,
}

impl MobilityKind {
    /// Instantiates the model inside `area` at `start`, moving at
    /// `speed_mps`, seeded deterministically.
    pub fn build(self, area: Rect, start: Point, speed_mps: f64, seed: u64) -> Box<dyn MobilityModel> {
        match self {
            MobilityKind::RandomWaypoint => {
                Box::new(RandomWaypoint::new(area, start, speed_mps, seed))
            }
            MobilityKind::Manhattan { spacing_m } => {
                Box::new(ManhattanGrid::new(area, start, speed_mps, spacing_m, seed))
            }
            MobilityKind::GaussMarkov { alpha } => {
                Box::new(GaussMarkov::new(area, start, speed_mps, alpha, seed))
            }
            MobilityKind::Stationary => Box::new(Stationary { pos: clamp_into(area, start) }),
        }
    }
}

/// A motionless object (e.g. parked vehicles, installed sensors).
#[derive(Debug, Clone, Copy)]
pub struct Stationary {
    pos: Point,
}

impl MobilityModel for Stationary {
    fn position(&self) -> Point {
        self.pos
    }
    fn step(&mut self, _dt_s: f64) -> Point {
        self.pos
    }
    fn speed_mps(&self) -> f64 {
        0.0
    }
}

/// Margin kept from the area boundary so positions stay strictly inside
/// the (half-open) service area.
pub(crate) const EDGE_MARGIN_M: f64 = 1e-3;

/// Clamps `p` strictly inside `area`.
pub(crate) fn clamp_into(area: Rect, p: Point) -> Point {
    Point::new(
        p.x.clamp(area.min().x, area.max().x - EDGE_MARGIN_M),
        p.y.clamp(area.min().y, area.max().y - EDGE_MARGIN_M),
    )
}

/// Uniformly random point strictly inside `area`.
pub(crate) fn random_point(area: Rect, rng: &mut StdRng) -> Point {
    Point::new(
        rng.random_range(area.min().x..area.max().x - EDGE_MARGIN_M),
        rng.random_range(area.min().y..area.max().y - EDGE_MARGIN_M),
    )
}

/// Seeds a per-object RNG from a base seed and object index.
pub(crate) fn object_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Standard normal sample via Box–Muller (avoids a distribution-crate
/// dependency).
pub(crate) fn normal_sample<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
pub(crate) fn test_area() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let mut m = MobilityKind::Stationary.build(
            test_area(),
            Point::new(10.0, 10.0),
            5.0,
            1,
        );
        let p0 = m.position();
        for _ in 0..100 {
            assert_eq!(m.step(1.0), p0);
        }
        assert_eq!(m.speed_mps(), 0.0);
    }

    #[test]
    fn all_models_stay_inside_area() {
        let area = test_area();
        for kind in [
            MobilityKind::RandomWaypoint,
            MobilityKind::Manhattan { spacing_m: 100.0 },
            MobilityKind::GaussMarkov { alpha: 0.8 },
            MobilityKind::Stationary,
        ] {
            let mut m = kind.build(area, Point::new(500.0, 500.0), 30.0, 42);
            for step in 0..2_000 {
                let p = m.step(1.0);
                assert!(
                    area.contains_half_open(p),
                    "{kind:?} escaped at step {step}: {p}"
                );
            }
        }
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        for kind in [
            MobilityKind::RandomWaypoint,
            MobilityKind::Manhattan { spacing_m: 50.0 },
            MobilityKind::GaussMarkov { alpha: 0.5 },
        ] {
            let run = |seed| {
                let mut m = kind.build(test_area(), Point::new(100.0, 100.0), 10.0, seed);
                (0..50).map(|_| m.step(1.0)).collect::<Vec<_>>()
            };
            assert_eq!(run(7), run(7), "{kind:?} not deterministic");
            assert_ne!(run(7), run(8), "{kind:?} ignores its seed");
        }
    }

    #[test]
    fn moving_models_actually_move() {
        for kind in [
            MobilityKind::RandomWaypoint,
            MobilityKind::Manhattan { spacing_m: 100.0 },
            MobilityKind::GaussMarkov { alpha: 0.5 },
        ] {
            let mut m = kind.build(test_area(), Point::new(500.0, 500.0), 10.0, 3);
            let p0 = m.position();
            let mut total = 0.0;
            for _ in 0..60 {
                let before = m.position();
                let after = m.step(1.0);
                total += before.distance(after);
            }
            assert!(total > 50.0, "{kind:?} moved only {total} m");
            let _ = p0;
        }
    }

    #[test]
    fn clamp_keeps_strictly_inside() {
        let area = test_area();
        let p = clamp_into(area, Point::new(5_000.0, -10.0));
        assert!(area.contains_half_open(p));
    }
}
