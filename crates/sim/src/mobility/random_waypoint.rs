//! The random-waypoint model.

use super::{clamp_into, object_rng, random_point, MobilityModel};
use hiloc_geo::{Point, Rect};
use hiloc_util::rng::StdRng;

/// Random waypoint: pick a uniformly random destination inside the
/// area, travel toward it in a straight line at constant speed, repeat.
///
/// The classic mobility model of the ad-hoc networking literature; its
/// legs cross service-area boundaries regularly, which makes it the
/// default driver for handover-rate experiments.
#[derive(Debug)]
pub struct RandomWaypoint {
    area: Rect,
    pos: Point,
    waypoint: Point,
    speed_mps: f64,
    rng: StdRng,
}

impl RandomWaypoint {
    /// Creates the model inside `area` starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is negative or non-finite.
    pub fn new(area: Rect, start: Point, speed_mps: f64, seed: u64) -> Self {
        assert!(speed_mps >= 0.0 && speed_mps.is_finite());
        let mut rng = object_rng(seed, 0);
        let pos = clamp_into(area, start);
        let waypoint = random_point(area, &mut rng);
        RandomWaypoint { area, pos, waypoint, speed_mps, rng }
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self) -> Point {
        self.pos
    }

    fn step(&mut self, dt_s: f64) -> Point {
        let mut budget = self.speed_mps * dt_s;
        while budget > 0.0 {
            let to_go = self.pos.distance(self.waypoint);
            if to_go <= budget {
                self.pos = self.waypoint;
                budget -= to_go;
                self.waypoint = random_point(self.area, &mut self.rng);
            } else {
                let dir = (self.waypoint - self.pos)
                    .normalized()
                    .unwrap_or(Point::new(1.0, 0.0));
                self.pos = clamp_into(self.area, self.pos + dir * budget);
                budget = 0.0;
            }
        }
        self.pos
    }

    fn speed_mps(&self) -> f64 {
        self.speed_mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::test_area;

    #[test]
    fn travels_at_configured_speed() {
        let mut m = RandomWaypoint::new(test_area(), Point::new(500.0, 500.0), 10.0, 1);
        let before = m.position();
        let after = m.step(1.0);
        // A single leg (no waypoint switch) covers exactly speed*dt.
        assert!(before.distance(after) <= 10.0 + 1e-9);
    }

    #[test]
    fn long_step_crosses_waypoints() {
        let mut m = RandomWaypoint::new(test_area(), Point::new(0.0, 0.0), 100.0, 2);
        // A huge step must not hang and must end inside the area.
        let p = m.step(1_000.0);
        assert!(test_area().contains_half_open(p));
    }

    #[test]
    fn covers_the_area_over_time() {
        let mut m = RandomWaypoint::new(test_area(), Point::new(0.0, 0.0), 50.0, 3);
        let mut quadrants = [false; 4];
        for _ in 0..2_000 {
            let p = m.step(1.0);
            let q = (p.x >= 500.0) as usize + 2 * ((p.y >= 500.0) as usize);
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&v| v), "visited {quadrants:?}");
    }
}
