//! Scenario fuzzing for the **real** runtimes.
//!
//! [`fuzz`](crate::fuzz) explores the protocol space under the
//! deterministic simulator. This module points the same idea at the
//! deployment runtimes the simulator stands in for: seeded plans of
//! load interleaved with the sharded engine's chaos verbs — `crash`
//! (leaf), `restart`, `partition`-by-drop / `heal`, and fire-and-forget
//! overload `burst`s against a deliberately tiny inbox — executed over
//! [`ThreadedDeployment`] (in-process channels) or [`UdpDeployment`]
//! (real sockets), wall clock and all.
//!
//! The oracle is end-of-run exactness: after the plan heals every
//! partition and restarts every crashed server, a repair round
//! re-establishes each object (re-registering where a volatile crash
//! lost it), and then every object's last **acked** position must be
//! queryable bit-for-bit via its agent. Operations the runtime shed or
//! timed out never enter the ground truth — load-shedding is the
//! contract, losing acknowledged state is the bug.
//!
//! Plan generation draws are independent of runtime behaviour, so the
//! same plan replays the same movement everywhere. That is what makes
//! [`run_plan`] double as a parity harness: a fault-free plan executed
//! over [`ThreadedHarness`] and over [`SimHarness`] (the simulator
//! oracle) must produce identical records — see
//! `crates/sim/tests/real_runtime_fuzz.rs`.
//!
//! Failures print a one-line DSL replayable via [`replay_real_dsl`],
//! mirroring the simulator fuzzer's reproducer workflow.

use hiloc_core::area::{Hierarchy, HierarchyBuilder};
use hiloc_core::model::{LsError, Micros, ObjectId, Sighting};
use hiloc_core::runtime::{
    ShardSpec, SimDeployment, SyncClient, ThreadedDeployment, UdpClient, UdpDeployment,
    UpdateOutcome,
};
use hiloc_core::ServerOptions;
use hiloc_geo::{Point, Rect};
use hiloc_net::ServerId;
use hiloc_util::prop::Gen;
use hiloc_util::rng::RngExt;
use std::collections::BTreeSet;
use std::time::Duration;

/// Service-area side length used by every generated plan (m).
const AREA_M: f64 = 1_000.0;
/// Registration accuracy contract used throughout: desired / minimum
/// accuracy (m) and maximum object speed (m/s).
const DES_ACC_M: f64 = 10.0;
const MIN_ACC_M: f64 = 50.0;
const MAX_SPEED_MPS: f64 = 2.0;
/// Per-operation timeout while chaos verbs are in effect — short, so a
/// blackholed server costs milliseconds, not the default five seconds.
const CHAOS_TIMEOUT: Duration = Duration::from_millis(200);
/// Per-operation timeout for registration, repair and the verdict.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(2);
/// Repair attempts per object before the oracle gives up.
const REPAIR_ATTEMPTS: u32 = 5;

// ------------------------------------------------------------- the plan

/// One step of a [`RealPlan`] timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealVerb {
    /// `rounds` rounds of blocking movement updates across the fleet.
    Load {
        /// Update rounds (one update per object per round).
        rounds: u32,
    },
    /// Crash a leaf: its instance is dropped, traffic blackholes.
    Crash(u32),
    /// Restart a previously crashed leaf (fresh volatile state).
    Restart(u32),
    /// Partition-by-drop: the listed servers on one side, everyone
    /// else on the other; cross-group server traffic is dropped.
    Partition {
        /// Server ids isolated from the rest of the tree.
        isolated: Vec<u32>,
    },
    /// Clear the partition filter.
    Heal,
    /// Fire-and-forget update flood at one object's agent — the
    /// overload generator (only meaningful with a tiny inbox).
    Burst {
        /// Index of the target object in the fleet.
        obj: u32,
        /// Number of no-wait updates to blast.
        updates: u32,
    },
}

/// A seeded, self-contained chaos plan for a real runtime. Same seed,
/// same plan; the plan's own seed also drives all movement draws, so a
/// plan replays identically regardless of runtime timing.
#[derive(Debug, Clone, PartialEq)]
pub struct RealPlan {
    /// Master seed (timeline and movement).
    pub seed: u64,
    /// Tracked objects.
    pub num_objects: u32,
    /// Event-loop shards the deployment runs.
    pub shards: u32,
    /// Per-shard inbox bound (threaded runtime).
    pub inbox_cap: u32,
    /// The timeline.
    pub verbs: Vec<RealVerb>,
}

impl RealPlan {
    /// The hierarchy every plan deploys: a one-level grid, root `0`
    /// over leaves `1..=4` — small enough that wall-clock chaos stays
    /// fast, deep enough that registration needs cross-server paths.
    pub fn hierarchy(&self) -> Hierarchy {
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(AREA_M, AREA_M));
        HierarchyBuilder::grid(rect, 1, 2).build().expect("plan grid")
    }

    /// Whether the timeline is well-formed: crash/restart alternate per
    /// server, partitions nest correctly, and the plan ends healed with
    /// every server back up (the oracle needs a reachable settle).
    pub fn valid(&self) -> bool {
        if self.num_objects == 0 || self.shards == 0 || self.inbox_cap == 0 {
            return false;
        }
        let mut down: BTreeSet<u32> = BTreeSet::new();
        let mut partitioned = false;
        for verb in &self.verbs {
            match verb {
                RealVerb::Load { .. } => {}
                RealVerb::Crash(id) => {
                    if !(1..=4).contains(id) || !down.insert(*id) {
                        return false;
                    }
                }
                RealVerb::Restart(id) => {
                    if !down.remove(id) {
                        return false;
                    }
                }
                RealVerb::Partition { isolated } => {
                    if partitioned || isolated.is_empty() || isolated.iter().any(|i| *i > 4) {
                        return false;
                    }
                    partitioned = true;
                }
                RealVerb::Heal => {
                    if !partitioned {
                        return false;
                    }
                    partitioned = false;
                }
                RealVerb::Burst { obj, .. } => {
                    if *obj >= self.num_objects {
                        return false;
                    }
                }
            }
        }
        down.is_empty() && !partitioned
    }
}

/// Generates a random, valid plan for `seed`. With `overload` set the
/// deployment gets a deliberately tiny inbox and the timeline includes
/// fire-and-forget bursts, so shedding is reachable (and asserted by
/// the gate); otherwise the inbox is the production default and the
/// timeline sticks to crash / restart / partition verbs.
pub fn generate_real(seed: u64, overload: bool) -> RealPlan {
    let mut g = Gen::for_seed(seed);
    let num_objects = g.random_range(3..=6u32);
    let shards = g.random_range(1..=4u32);
    let inbox_cap = if overload { g.random_range(2..=8u32) } else { 4096 };

    let mut verbs = vec![RealVerb::Load { rounds: 2 }];
    let mut down: BTreeSet<u32> = BTreeSet::new();
    let mut partitioned = false;
    for _ in 0..g.random_range(3..=6u32) {
        // (crash, restart, partition, heal, burst, load)
        let weights = [
            if down.len() < 2 { 3 } else { 0 },
            if down.is_empty() { 0 } else { 3 },
            if partitioned { 0 } else { 2 },
            if partitioned { 3 } else { 0 },
            if overload { 3 } else { 0 },
            2,
        ];
        match g.weighted(&weights) {
            0 => {
                let up: Vec<u32> = (1..=4).filter(|id| !down.contains(id)).collect();
                let id = *g.pick(&up);
                down.insert(id);
                verbs.push(RealVerb::Crash(id));
            }
            1 => {
                let ids: Vec<u32> = down.iter().copied().collect();
                let id = *g.pick(&ids);
                down.remove(&id);
                verbs.push(RealVerb::Restart(id));
            }
            2 => {
                // Isolate one leaf, or a leaf together with the root.
                let leaf = g.random_range(1..=4u32);
                let isolated = if g.chance(0.3) { vec![0, leaf] } else { vec![leaf] };
                partitioned = true;
                verbs.push(RealVerb::Partition { isolated });
            }
            3 => {
                partitioned = false;
                verbs.push(RealVerb::Heal);
            }
            4 => {
                verbs.push(RealVerb::Burst {
                    obj: g.random_range(0..num_objects),
                    updates: g.random_range(200..=600u32),
                });
            }
            _ => verbs.push(RealVerb::Load { rounds: 1 }),
        }
        // Mix load between most chaos verbs so faults land on a moving
        // fleet, not a parked one.
        if g.chance(0.6) {
            verbs.push(RealVerb::Load { rounds: 1 });
        }
    }
    // Close the timeline: heal, bring everything back, settle load.
    if partitioned {
        verbs.push(RealVerb::Heal);
    }
    for id in down {
        verbs.push(RealVerb::Restart(id));
    }
    verbs.push(RealVerb::Load { rounds: 1 });

    let plan = RealPlan { seed, num_objects, shards, inbox_cap, verbs };
    debug_assert!(plan.valid(), "generator produced an invalid plan");
    plan
}

// ------------------------------------------------------------ harnesses

/// What the plan executor needs from a deployment: the blocking client
/// operations plus the chaos verbs. Implemented by both real runtimes
/// and by the simulator (the parity oracle).
pub trait RealHarness {
    /// Runtime label for reports.
    fn name(&self) -> &'static str;
    /// Leaf responsible for `p`.
    fn leaf_for(&self, p: Point) -> ServerId;
    /// Microseconds since deployment start.
    fn now_us(&self) -> Micros;
    /// Per-operation timeout for the blocking calls.
    fn set_timeout(&mut self, t: Duration);
    /// Blocking registration; returns `(agent, offered_acc)`.
    fn register(&mut self, entry: ServerId, s: Sighting) -> Result<(ServerId, f64), LsError>;
    /// Blocking position update.
    fn update(&mut self, agent: ServerId, s: Sighting) -> Result<UpdateOutcome, LsError>;
    /// Blocking position query via `entry`.
    fn pos_query(&mut self, entry: ServerId, oid: ObjectId) -> Result<LocationDescriptor, LsError>;
    /// Crash verb; `false` when already down.
    fn crash(&mut self, id: ServerId) -> bool;
    /// Restart verb; `false` when not down.
    fn restart(&mut self, id: ServerId) -> bool;
    /// Install the partition-by-drop filter.
    fn set_partition(&mut self, groups: &[Vec<ServerId>]);
    /// Clear the partition filter.
    fn clear_partition(&mut self);
    /// Fire-and-forget burst of `n` updates of sighting `s` at
    /// `agent`; returns how many were actually enqueued. Harnesses
    /// without a no-wait path return 0.
    fn burst(&mut self, agent: ServerId, s: Sighting, n: u32) -> u64;
    /// Total envelopes shed at full inboxes so far.
    fn shed_total(&self) -> u64;
    /// Drops buffered stale replies before the repair phase.
    fn drain(&mut self);
}

use hiloc_core::LocationDescriptor;

/// [`ThreadedDeployment`] under the plan executor.
pub struct ThreadedHarness {
    dep: ThreadedDeployment,
    client: SyncClient,
}

impl ThreadedHarness {
    /// Deploys the plan's hierarchy with its shard/inbox layout.
    pub fn new(plan: &RealPlan) -> Self {
        let dep = ThreadedDeployment::new_sharded(
            plan.hierarchy(),
            ServerOptions::default(),
            ShardSpec {
                shards: plan.shards as usize,
                inbox_cap: plan.inbox_cap as usize,
                ..Default::default()
            },
        );
        let client = dep.client();
        ThreadedHarness { dep, client }
    }
}

impl RealHarness for ThreadedHarness {
    fn name(&self) -> &'static str {
        "threaded"
    }
    fn leaf_for(&self, p: Point) -> ServerId {
        self.dep.leaf_for(p)
    }
    fn now_us(&self) -> Micros {
        self.dep.now_us()
    }
    fn set_timeout(&mut self, t: Duration) {
        self.client.set_timeout(t);
    }
    fn register(&mut self, entry: ServerId, s: Sighting) -> Result<(ServerId, f64), LsError> {
        self.client.register(entry, s, DES_ACC_M, MIN_ACC_M, MAX_SPEED_MPS)
    }
    fn update(&mut self, agent: ServerId, s: Sighting) -> Result<UpdateOutcome, LsError> {
        self.client.update(agent, s)
    }
    fn pos_query(&mut self, entry: ServerId, oid: ObjectId) -> Result<LocationDescriptor, LsError> {
        self.client.pos_query(entry, oid)
    }
    fn crash(&mut self, id: ServerId) -> bool {
        self.dep.crash_server(id)
    }
    fn restart(&mut self, id: ServerId) -> bool {
        self.dep.restart_server(id)
    }
    fn set_partition(&mut self, groups: &[Vec<ServerId>]) {
        self.dep.set_partition(groups);
    }
    fn clear_partition(&mut self) {
        self.dep.clear_partition();
    }
    fn burst(&mut self, agent: ServerId, s: Sighting, n: u32) -> u64 {
        let mut delivered = 0;
        for _ in 0..n {
            if self.client.update_nowait(agent, s) {
                delivered += 1;
            }
        }
        delivered
    }
    fn shed_total(&self) -> u64 {
        self.dep.shed_total()
    }
    fn drain(&mut self) {
        self.client.drain_mailbox();
    }
}

/// [`UdpDeployment`] under the plan executor. Shedding over UDP is the
/// kernel's socket buffer, not an accounted counter, so `burst` and
/// `shed_total` report zero; generate UDP plans with `overload =
/// false`.
pub struct UdpHarness {
    dep: UdpDeployment,
    client: UdpClient,
}

impl UdpHarness {
    /// Binds the plan's hierarchy on loopback sockets.
    ///
    /// # Panics
    ///
    /// Panics when the loopback sockets cannot be bound.
    pub fn bind(plan: &RealPlan) -> Self {
        let dep = UdpDeployment::bind_sharded(
            plan.hierarchy(),
            ServerOptions::default(),
            ShardSpec { shards: plan.shards as usize, ..Default::default() },
        )
        .expect("bind plan deployment");
        let client = dep.client().expect("bind plan client");
        UdpHarness { dep, client }
    }
}

impl RealHarness for UdpHarness {
    fn name(&self) -> &'static str {
        "udp"
    }
    fn leaf_for(&self, p: Point) -> ServerId {
        self.dep.leaf_for(p)
    }
    fn now_us(&self) -> Micros {
        self.dep.now_us()
    }
    fn set_timeout(&mut self, t: Duration) {
        self.client.set_timeout(t);
    }
    fn register(&mut self, entry: ServerId, s: Sighting) -> Result<(ServerId, f64), LsError> {
        self.client.register(entry, s, DES_ACC_M, MIN_ACC_M, MAX_SPEED_MPS)
    }
    fn update(&mut self, agent: ServerId, s: Sighting) -> Result<UpdateOutcome, LsError> {
        self.client.update(agent, s)
    }
    fn pos_query(&mut self, entry: ServerId, oid: ObjectId) -> Result<LocationDescriptor, LsError> {
        self.client.pos_query(entry, oid)
    }
    fn crash(&mut self, id: ServerId) -> bool {
        self.dep.crash_server(id)
    }
    fn restart(&mut self, id: ServerId) -> bool {
        self.dep.restart_server(id)
    }
    fn set_partition(&mut self, groups: &[Vec<ServerId>]) {
        self.dep.set_partition(groups);
    }
    fn clear_partition(&mut self) {
        self.dep.clear_partition();
    }
    fn burst(&mut self, _agent: ServerId, _s: Sighting, _n: u32) -> u64 {
        0
    }
    fn shed_total(&self) -> u64 {
        0
    }
    fn drain(&mut self) {
        self.client.drain_mailbox();
    }
}

/// The deterministic simulator under the same executor — the parity
/// oracle for fault-free plans (`run_plan` over [`ThreadedHarness`]
/// and over this must produce identical records). Chaos verbs map to
/// the simulator's own crash/restart; the partition filter has no
/// simulator equivalent and is a no-op, so only use fault-free plans
/// for parity.
pub struct SimHarness {
    dep: SimDeployment,
}

impl SimHarness {
    /// Deploys the plan's hierarchy in the simulator.
    pub fn new(plan: &RealPlan) -> Self {
        SimHarness { dep: SimDeployment::new(plan.hierarchy(), ServerOptions::default(), plan.seed) }
    }
}

impl RealHarness for SimHarness {
    fn name(&self) -> &'static str {
        "sim"
    }
    fn leaf_for(&self, p: Point) -> ServerId {
        self.dep.leaf_for(p)
    }
    fn now_us(&self) -> Micros {
        self.dep.now_us()
    }
    fn set_timeout(&mut self, _t: Duration) {}
    fn register(&mut self, entry: ServerId, s: Sighting) -> Result<(ServerId, f64), LsError> {
        self.dep.register_with_speed(entry, s, DES_ACC_M, MIN_ACC_M, MAX_SPEED_MPS)
    }
    fn update(&mut self, agent: ServerId, s: Sighting) -> Result<UpdateOutcome, LsError> {
        self.dep.update(agent, s)
    }
    fn pos_query(&mut self, entry: ServerId, oid: ObjectId) -> Result<LocationDescriptor, LsError> {
        self.dep.pos_query(entry, oid)
    }
    fn crash(&mut self, id: ServerId) -> bool {
        if self.dep.is_down(id) {
            return false;
        }
        self.dep.crash_server(id);
        true
    }
    fn restart(&mut self, id: ServerId) -> bool {
        if !self.dep.is_down(id) {
            return false;
        }
        self.dep.restart_server(id);
        true
    }
    fn set_partition(&mut self, _groups: &[Vec<ServerId>]) {}
    fn clear_partition(&mut self) {}
    fn burst(&mut self, _agent: ServerId, _s: Sighting, _n: u32) -> u64 {
        0
    }
    fn shed_total(&self) -> u64 {
        0
    }
    fn drain(&mut self) {
        self.dep.run_until_quiet();
    }
}

// -------------------------------------------------------- the executor

/// What one plan execution did and concluded. `final_positions` is the
/// verdict record — `(object id, ground-truth position)` pairs, every
/// one verified queryable bit-for-bit before this struct is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct RealRun {
    /// Timeline verbs applied.
    pub verbs: u32,
    /// Crash verbs applied.
    pub crashes: u32,
    /// Partition windows applied.
    pub partitions: u32,
    /// Fire-and-forget burst envelopes actually enqueued.
    pub burst_delivered: u64,
    /// Blocking updates acknowledged (incl. handovers).
    pub acked: u64,
    /// Blocking updates that timed out under chaos (excluded from
    /// ground truth by construction).
    pub unacked: u64,
    /// Objects re-registered after a volatile crash lost them.
    pub reregistered: u64,
    /// Acked updates that moved the object to a new agent.
    pub handovers: u64,
    /// Envelopes shed at full inboxes across the run.
    pub shed: u64,
    /// The verified end-state, sorted by object id.
    pub final_positions: Vec<(u64, Point)>,
}

struct ObjState {
    oid: ObjectId,
    agent: ServerId,
    /// Ground truth: the last position the runtime *acknowledged*.
    pos: Point,
}

/// Executes `plan` against `h` and runs the oracle.
///
/// # Panics
///
/// Panics with a replayable report when the oracle fails: an object
/// cannot be repaired after the timeline closes, or its verified query
/// answer differs from the last acked position.
pub fn run_plan<H: RealHarness>(h: &mut H, plan: &RealPlan) -> RealRun {
    assert!(plan.valid(), "plan is not well-formed: {}", plan.to_dsl());
    let mut g = Gen::for_seed(plan.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut run = RealRun {
        verbs: 0,
        crashes: 0,
        partitions: 0,
        burst_delivered: 0,
        acked: 0,
        unacked: 0,
        reregistered: 0,
        handovers: 0,
        shed: 0,
        final_positions: Vec::new(),
    };

    // ---- fleet registration (no chaos yet; retries don't draw).
    h.set_timeout(SETTLE_TIMEOUT);
    let mut objects: Vec<ObjState> = Vec::new();
    for i in 0..plan.num_objects {
        let pos = Point::new(g.random_range(0.0..AREA_M), g.random_range(0.0..AREA_M));
        let oid = ObjectId(u64::from(i) + 1);
        let entry = h.leaf_for(pos);
        let mut agent = None;
        for _ in 0..3 {
            let s = Sighting::new(oid, h.now_us(), pos, 5.0);
            if let Ok((a, _)) = h.register(entry, s) {
                agent = Some(a);
                break;
            }
        }
        let agent = agent
            .unwrap_or_else(|| panic!("[{}] initial registration of {oid:?} failed", h.name()));
        objects.push(ObjState { oid, agent, pos });
    }

    // ---- the timeline. Movement draws are per load round and per
    // object, unconditionally — outcomes never shift the sequence, so
    // a plan replays identical positions on every harness. The short
    // timeout only pays off when verbs can actually blackhole traffic;
    // fault-free (parity) plans keep the generous one so a slow host
    // cannot fork the record.
    let has_faults = plan
        .verbs
        .iter()
        .any(|v| !matches!(v, RealVerb::Load { .. }));
    h.set_timeout(if has_faults { CHAOS_TIMEOUT } else { SETTLE_TIMEOUT });
    for verb in &plan.verbs {
        run.verbs += 1;
        match verb {
            RealVerb::Load { rounds } => {
                for _ in 0..*rounds {
                    for obj in &mut objects {
                        let target =
                            Point::new(g.random_range(0.0..AREA_M), g.random_range(0.0..AREA_M));
                        let s = Sighting::new(obj.oid, h.now_us(), target, 5.0);
                        match h.update(obj.agent, s) {
                            Ok(UpdateOutcome::Ack { .. }) => {
                                obj.pos = target;
                                run.acked += 1;
                            }
                            Ok(UpdateOutcome::NewAgent { agent, .. }) => {
                                obj.agent = agent;
                                obj.pos = target;
                                run.acked += 1;
                                run.handovers += 1;
                            }
                            Ok(UpdateOutcome::OutOfServiceArea) | Err(_) => {
                                // Not acknowledged: ground truth keeps
                                // the previous acked position.
                                run.unacked += 1;
                            }
                        }
                    }
                }
            }
            RealVerb::Crash(id) => {
                run.crashes += 1;
                h.crash(ServerId(*id));
            }
            RealVerb::Restart(id) => {
                h.restart(ServerId(*id));
            }
            RealVerb::Partition { isolated } => {
                run.partitions += 1;
                let iso: Vec<ServerId> = isolated.iter().map(|&i| ServerId(i)).collect();
                let rest: Vec<ServerId> =
                    (0..=4).filter(|i| !isolated.contains(i)).map(ServerId).collect();
                h.set_partition(&[iso, rest]);
            }
            RealVerb::Heal => h.clear_partition(),
            RealVerb::Burst { obj, updates } => {
                let o = &objects[*obj as usize];
                let s = Sighting::new(o.oid, h.now_us(), o.pos, 5.0);
                run.burst_delivered += h.burst(o.agent, s, *updates);
            }
        }
    }

    // ---- repair: the timeline is closed (healed, everything up).
    // Re-establish every object — a volatile crash lost its agent's
    // state, so a timed-out update falls back to re-registration.
    h.drain();
    h.set_timeout(SETTLE_TIMEOUT);
    for obj in &mut objects {
        let mut repaired = false;
        for _ in 0..REPAIR_ATTEMPTS {
            let s = Sighting::new(obj.oid, h.now_us(), obj.pos, 5.0);
            match h.update(obj.agent, s) {
                Ok(UpdateOutcome::Ack { .. }) => {
                    repaired = true;
                }
                Ok(UpdateOutcome::NewAgent { agent, .. }) => {
                    obj.agent = agent;
                    repaired = true;
                }
                Ok(UpdateOutcome::OutOfServiceArea) | Err(_) => {
                    let entry = h.leaf_for(obj.pos);
                    let s = Sighting::new(obj.oid, h.now_us(), obj.pos, 5.0);
                    if let Ok((agent, _)) = h.register(entry, s) {
                        obj.agent = agent;
                        run.reregistered += 1;
                        repaired = true;
                    }
                }
            }
            if repaired {
                break;
            }
        }
        assert!(
            repaired,
            "[{}] oracle: {:?} not repairable after the timeline closed\n\
             --- replay with: hiloc_sim::real::replay_real_dsl(\"{} runtime={}\")",
            h.name(),
            obj.oid,
            plan.to_dsl(),
            h.name(),
        );
    }

    // ---- verdict: every object's last acked position, bit-for-bit.
    for obj in &objects {
        let mut last = None;
        for _ in 0..3 {
            match h.pos_query(obj.agent, obj.oid) {
                Ok(ld) => {
                    last = Some(ld);
                    break;
                }
                Err(_) => continue,
            }
        }
        let ld = last.unwrap_or_else(|| {
            panic!(
                "[{}] oracle: {:?} unqueryable after repair\n\
                 --- replay with: hiloc_sim::real::replay_real_dsl(\"{} runtime={}\")",
                h.name(),
                obj.oid,
                plan.to_dsl(),
                h.name(),
            )
        });
        assert!(
            ld.pos == obj.pos,
            "[{}] oracle: {:?} answered {:?}, last acked {:?}\n\
             --- replay with: hiloc_sim::real::replay_real_dsl(\"{} runtime={}\")",
            h.name(),
            obj.oid,
            ld.pos,
            obj.pos,
            plan.to_dsl(),
            h.name(),
        );
        run.final_positions.push((obj.oid.0, obj.pos));
    }
    run.shed = h.shed_total();
    run
}

// ------------------------------------------------------------- the DSL

impl RealPlan {
    /// One-line replay DSL; round-trips through [`parse_real_dsl`].
    pub fn to_dsl(&self) -> String {
        let mut out = vec![
            format!("seed={}", self.seed),
            format!("objects={}", self.num_objects),
            format!("shards={}", self.shards),
            format!("inbox={}", self.inbox_cap),
        ];
        for verb in &self.verbs {
            out.push(match verb {
                RealVerb::Load { rounds } => format!("ev=load:{rounds}"),
                RealVerb::Crash(id) => format!("ev=crash:{id}"),
                RealVerb::Restart(id) => format!("ev=restart:{id}"),
                RealVerb::Partition { isolated } => {
                    let ids: Vec<String> = isolated.iter().map(|i| i.to_string()).collect();
                    format!("ev=part:{}", ids.join("+"))
                }
                RealVerb::Heal => "ev=heal".to_string(),
                RealVerb::Burst { obj, updates } => format!("ev=burst:{obj}:{updates}"),
            });
        }
        out.join(" ")
    }
}

/// Parses a replay line produced by [`RealPlan::to_dsl`] — plus an
/// optional `runtime=threaded|udp` token consumed by
/// [`replay_real_dsl`] — back into `(plan, runtime)`.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_real_dsl(dsl: &str) -> Result<(RealPlan, String), String> {
    fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse::<T>().map_err(|e| format!("bad {key}='{v}': {e}"))
    }
    let mut plan =
        RealPlan { seed: 0, num_objects: 4, shards: 1, inbox_cap: 4096, verbs: Vec::new() };
    let mut runtime = "threaded".to_string();
    for token in dsl.split_whitespace() {
        let (key, value) =
            token.split_once('=').ok_or_else(|| format!("token '{token}' is not key=value"))?;
        match key {
            "seed" => plan.seed = num("seed", value)?,
            "objects" => plan.num_objects = num("objects", value)?,
            "shards" => plan.shards = num("shards", value)?,
            "inbox" => plan.inbox_cap = num("inbox", value)?,
            "runtime" => runtime = value.to_string(),
            "ev" => {
                let (verb, arg) = match value.split_once(':') {
                    Some((v, a)) => (v, Some(a)),
                    None => (value, None),
                };
                fn arg1<'a>(verb: &str, a: Option<&'a str>) -> Result<&'a str, String> {
                    a.ok_or_else(|| format!("verb '{verb}' needs an argument"))
                }
                plan.verbs.push(match verb {
                    "load" => RealVerb::Load { rounds: num("load", arg1(verb, arg)?)? },
                    "crash" => RealVerb::Crash(num("crash", arg1(verb, arg)?)?),
                    "restart" => RealVerb::Restart(num("restart", arg1(verb, arg)?)?),
                    "part" => RealVerb::Partition {
                        isolated: arg1(verb, arg)?
                            .split('+')
                            .map(|i| num::<u32>("part id", i))
                            .collect::<Result<Vec<u32>, String>>()?,
                    },
                    "heal" => RealVerb::Heal,
                    "burst" => {
                        let (obj, updates) = arg1(verb, arg)?
                            .split_once(':')
                            .ok_or_else(|| format!("bad burst '{value}'"))?;
                        RealVerb::Burst {
                            obj: num("burst obj", obj)?,
                            updates: num("burst updates", updates)?,
                        }
                    }
                    _ => return Err(format!("unknown plan verb '{verb}'")),
                });
            }
            _ => return Err(format!("unknown key '{key}'")),
        }
    }
    Ok((plan, runtime))
}

/// Parses and runs a committed reproducer against the runtime its
/// `runtime=` token names — the regression-corpus entry point.
///
/// # Panics
///
/// Panics when the DSL is malformed, the plan is invalid, or the
/// oracle rejects the run.
pub fn replay_real_dsl(dsl: &str) -> RealRun {
    let (plan, runtime) = parse_real_dsl(dsl).expect("malformed reproducer DSL");
    assert!(plan.valid(), "reproducer plan is not well-formed: {dsl}");
    match runtime.as_str() {
        "threaded" => run_plan(&mut ThreadedHarness::new(&plan), &plan),
        "udp" => run_plan(&mut UdpHarness::bind(&plan), &plan),
        "sim" => run_plan(&mut SimHarness::new(&plan), &plan),
        other => panic!("unknown runtime '{other}' in reproducer DSL"),
    }
}
