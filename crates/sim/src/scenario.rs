//! Scripted chaos scenarios with an oracle check.
//!
//! A [`ScenarioSpec`] drives a seeded [`Fleet`] through a fault
//! timeline — timed partitions, latency spikes, lossy links (all
//! scheduled in the [`FaultPlan`]) plus scripted server crashes and
//! restarts — and then verifies, against an in-memory naive
//! [`Oracle`], that the service healed:
//!
//! * **No registered object is lost** — every object that was never
//!   deregistered is answerable by a position query routed through the
//!   hierarchy root.
//! * **Point answers match the oracle** — the returned position equals
//!   the last position the service *acknowledged* to the object, and
//!   the accuracy is within the registration's contract.
//! * **Range answers match the oracle** — the returned object set
//!   equals the naive oracle's prediction under the paper's range
//!   qualification predicate.
//! * **Durably-acked registrations survive crashes** — on every
//!   scripted restart, the recovered visitor database is compared
//!   record-for-record against a snapshot taken at the crash instant.
//!
//! Every run is bit-for-bit deterministic given the spec (seed
//! included), and every failure panics with the seed and the fault
//! timeline needed to replay it.
//!
//! The settle phase leans on the protocol's soft state: ghost records
//! left behind by handovers interrupted mid-partition expire after the
//! sighting TTL, and leaf keep-alives re-assert forwarding paths every
//! refresh period. The harness therefore advances virtual time past
//! `TTL + 2 × refresh` before the verdict, refreshing live objects
//! along the way.

use crate::mobility::MobilityKind;
use crate::{Fleet, FleetConfig};
use hiloc_core::area::{Hierarchy, HierarchyBuilder};
use hiloc_core::cache::CacheConfig;
use hiloc_core::model::{
    semantics, Hlc, LocationDescriptor, Micros, ObjectId, RangeQuery, UpdatePolicy, SECOND,
};
use hiloc_core::node::{DurabilityOptions, ServerOptions, StorageSyncPolicy, VisitorRecord};
use hiloc_core::runtime::{CrashMode, SimDeployment};
use hiloc_geo::{Point, Rect, Region};
use hiloc_net::{Endpoint, FaultPlan, LatencyModel, ServerId};
use hiloc_util::tempdir::TempDir;
use std::collections::{BTreeMap, BTreeSet};

/// Soft-state sighting TTL used by scenario deployments.
pub const SIGHTING_TTL_US: Micros = 60 * SECOND;
/// Path keep-alive period used by scenario deployments.
pub const PATH_REFRESH_US: Micros = 15 * SECOND;
/// Path TTL (must exceed `2 × PATH_REFRESH_US`).
pub const PATH_TTL_US: Micros = 45 * SECOND;
/// Distributed-gather deadline used by scenario deployments.
pub const QUERY_TIMEOUT_US: Micros = SECOND / 2;

/// Every endpoint of the subtree rooted at `root` — the usual building
/// block for a subtree partition.
pub fn subtree_endpoints(h: &Hierarchy, root: ServerId) -> Vec<Endpoint> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        out.push(Endpoint::Server(id));
        for child in &h.server(id).children {
            stack.push(child.id);
        }
    }
    out
}

/// A scripted fault action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a server: volatile state and in-flight messages to it are
    /// lost; its durable store stays on disk.
    Crash(ServerId),
    /// Crash a server with power loss: like [`FaultAction::Crash`],
    /// but WAL bytes not yet fsynced are dropped too. (With the
    /// harness's `SyncPolicy::Always` stores nothing acknowledged is
    /// ever un-synced, so the record-for-record recovery check still
    /// applies.)
    PowerLoss(ServerId),
    /// Restart a crashed (or running) server, replaying durable state.
    /// The harness verifies the recovered visitor records against the
    /// crash-instant snapshot.
    Restart(ServerId),
    /// Checkpoint a running server's storage engine: flush hot entries
    /// to the page file, commit the manifest, truncate the WAL. A
    /// no-op for volatile deployments. Scheduling a
    /// [`FaultAction::PowerLoss`] for the same server in the same step
    /// lands the loss right at the checkpoint commit boundary — the
    /// recovery-arbitration case the generation-stamped WAL exists
    /// for.
    Checkpoint(ServerId),
    /// Replace the fault plan with [`FaultPlan::none`] ahead of
    /// schedule.
    HealNetwork,
    /// **Join**: a new server splits the area of the given leaf and
    /// receives the covered records via bulk state transfer. The new
    /// id is always the next dense slot (`hierarchy.len()` at apply
    /// time) — predictable, so fault plans can target it.
    Spawn {
        /// The leaf whose area the newcomer splits.
        split: ServerId,
    },
    /// **Leave**: the given leaf drains everything to the sibling
    /// absorbing its area and detaches.
    Retire(ServerId),
    /// **Root failover**: promote a successor over the crashed root
    /// (the root must have been crashed by an earlier event and stays
    /// retired forever — no `Restart` for it). With
    /// [`ScenarioSpec::replication`] on and the root's warm standby
    /// alive, this is an O(1) adoption of the streamed table and the
    /// harness checks the **promotion contract**: no durably-acked
    /// record of the stream may be missing from the promoted table.
    /// Without a (live) standby a fresh successor rebuilds via chunked
    /// `pathSync`.
    PromoteStandby,
}

/// A fault action bound to a step of the scenario clock (applied
/// before the fleet moves at that step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// The step before which the action fires.
    pub at_step: u32,
    /// What happens.
    pub action: FaultAction,
}

/// A complete scripted chaos scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Name, printed in failure reports.
    pub name: String,
    /// Master seed: placement, mobility, network jitter and fault draws
    /// all derive from it. Two runs with the same spec are identical.
    pub seed: u64,
    /// Side length of the square service area (meters).
    pub area_m: f64,
    /// Hierarchy depth below the root.
    pub levels: u32,
    /// Grid fan-out per level (`k × k` children).
    pub fanout: u32,
    /// Number of tracked objects.
    pub num_objects: u64,
    /// Object speed (m/s).
    pub speed_mps: f64,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Update-reporting policy.
    pub policy: UpdatePolicy,
    /// Virtual seconds per step.
    pub step_dt_s: f64,
    /// Number of chaos steps before the settle phase.
    pub steps: u32,
    /// Network latency model.
    pub latency: LatencyModel,
    /// The scheduled fault plan (partitions, spikes, loss, reordering).
    pub faults: FaultPlan,
    /// Whether visitor databases are durable (required for crash
    /// scenarios that must not lose registrations).
    pub durable: bool,
    /// Issue a position query and a range query through the current
    /// root every step, mid-chaos, recording the outcomes in the trace
    /// — "mixed update/query load" for crash and reconfiguration
    /// scenarios. Mid-chaos answers may time out or be stale (faults
    /// are active); the settle-phase oracle is what must be green.
    pub mid_chaos_queries: bool,
    /// With [`ScenarioSpec::mid_chaos_queries`] on, drive the **macro
    /// workload mix** each step instead of the simple root pos+range
    /// pair: Zipf-skewed position, range and nearest-neighbor queries
    /// entering at Zipf-hot *leaves* — the scaled-down shape of the
    /// macro benchmark's query load, so the bench harness's workload
    /// is itself chaos-proven. Ignored when `mid_chaos_queries` is
    /// off.
    pub macro_mix: bool,
    /// §6.5 cache configuration for every server. All off by default
    /// (the paper's measured prototype). With caches *on* the oracle
    /// switches to **bounded-staleness** point semantics: an answer
    /// must either equal the last acknowledged position exactly, or be
    /// a cache-aged descriptor whose accuracy stays within
    /// `position_max_aged_acc_m` *and* still covers the acknowledged
    /// position — and every stale agent/area cache hit must be healed
    /// by the hierarchy fallback, never turned into a wrong answer.
    pub caches: CacheConfig,
    /// Scripted crash/restart/heal/reshape events.
    pub events: Vec<ScenarioEvent>,
    /// Deploys the replication subsystem: a warm standby streaming
    /// each non-leaf's forwarding table, and the k=2 sibling replica
    /// ring among the leaves (see
    /// [`SimDeployment::enable_replication`]).
    pub replication: bool,
    /// Multiplies the soft-state windows (sighting TTL, path refresh
    /// and path TTL — *not* the query timeout). Every blocking client
    /// op advances virtual time by an RTT, so a step over a large
    /// population spans virtual *minutes*; at the default windows
    /// (tuned for tens of objects) a crashed leaf's sightings would
    /// expire before a scripted restart ever fires. Values ≤ 1 mean
    /// "unscaled".
    pub time_scale: u32,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            seed: 1,
            area_m: 1_000.0,
            levels: 1,
            fanout: 2,
            num_objects: 20,
            speed_mps: 10.0,
            mobility: MobilityKind::RandomWaypoint,
            policy: UpdatePolicy::Distance { threshold_m: 10.0 },
            step_dt_s: 2.0,
            steps: 20,
            latency: LatencyModel::default(),
            faults: FaultPlan::none(),
            durable: false,
            mid_chaos_queries: false,
            macro_mix: false,
            caches: CacheConfig::default(),
            replication: false,
            events: Vec::new(),
            time_scale: 1,
        }
    }
}

/// The outcome of a green scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRun {
    /// One line per step/event — two same-seed runs produce identical
    /// traces, which is how determinism is asserted.
    pub trace: Vec<String>,
    /// Objects still registered at the verdict.
    pub alive: usize,
    /// Virtual time at the verdict.
    pub virtual_end_us: Micros,
    /// Network counters `(sent, delivered, dropped)` at the verdict.
    pub net_counters: (u64, u64, u64),
    /// Messages blackholed at crashed servers.
    pub blackholed: u64,
    /// Aggregated server counters at the verdict (lets scenarios
    /// assert that the machinery under test — transfers, retries,
    /// path syncs — actually ran).
    pub stats: hiloc_core::node::ServerStats,
    /// Virtual-time latency of each mid-chaos query round (empty when
    /// `mid_chaos_queries` is off). Feed into
    /// [`crate::stats::Samples`] to assert percentile sanity under
    /// faults.
    pub query_latency_us: Vec<Micros>,
}

/// The naive in-memory oracle: for every live object, the position and
/// accuracy the service last *acknowledged*. Point and range answers
/// are checked against it with the same qualification predicate the
/// servers use.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    entries: BTreeMap<ObjectId, LocationDescriptor>,
}

impl Oracle {
    /// Builds the oracle from a fleet's acknowledged reports.
    pub fn from_fleet(fleet: &Fleet) -> Self {
        let mut entries = BTreeMap::new();
        for i in 0..fleet.len() {
            if fleet.alive(i) {
                entries.insert(
                    fleet.oid(i),
                    LocationDescriptor {
                        pos: fleet.last_report(i).pos,
                        acc_m: fleet.offered_acc(i),
                    },
                );
            }
        }
        Oracle { entries }
    }

    /// Live objects and their acknowledged descriptors.
    pub fn entries(&self) -> impl Iterator<Item = (ObjectId, &LocationDescriptor)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// The oracle's answer set for a range query, using the same
    /// predicate the leaves apply (paper Alg. 6-5).
    pub fn expect_range(&self, query: &RangeQuery) -> BTreeSet<ObjectId> {
        self.entries
            .iter()
            .filter(|(_, ld)| {
                semantics::qualifies_for_range(&query.area, ld, query.req_acc_m, query.req_overlap)
            })
            .map(|(&oid, _)| oid)
            .collect()
    }
}

/// Every server's visitor record for `oid` — the first thing to look
/// at when a settled query answers "unknown" for a live object.
fn record_dump(ls: &SimDeployment, oid: ObjectId) -> String {
    let mut lines = Vec::new();
    for cfg in ls.hierarchy().servers() {
        let id = cfg.id;
        let state = match (ls.is_down(id), ls.is_retired(id)) {
            (_, true) => " [retired]",
            (true, _) => " [down]",
            _ => "",
        };
        if let Some(rec) = ls.server(id).visitors().get(oid) {
            lines.push(format!("  server {}{state}: {rec:?}", id.0));
        }
    }
    if lines.is_empty() {
        lines.push("  (no server holds a record)".to_string());
    }
    lines.join("\n")
}

type VisitorSnapshot = Vec<(ObjectId, VisitorRecord)>;

fn snapshot_visitors(ls: &SimDeployment, id: ServerId) -> VisitorSnapshot {
    ls.server(id).visitors().iter().map(|(oid, rec)| (oid, *rec)).collect()
}

impl ScenarioSpec {
    /// The hierarchy this scenario deploys — also usable *before*
    /// [`ScenarioSpec::run`] to pick server ids for partitions and
    /// crash events (grid construction is deterministic).
    pub fn hierarchy(&self) -> Hierarchy {
        let rect =
            Rect::new(Point::new(0.0, 0.0), Point::new(self.area_m, self.area_m));
        HierarchyBuilder::grid(rect, self.levels, self.fanout)
            .build()
            .expect("scenario grid hierarchy")
    }

    /// Runs the scenario to its verdict.
    ///
    /// # Panics
    ///
    /// Panics — printing the seed and fault timeline needed to replay —
    /// when any oracle invariant is violated.
    pub fn run(&self) -> ScenarioRun {
        let mut trace = Vec::new();
        // A mis-scheduled event would otherwise silently never fire and
        // the scenario would go green without testing what it scripted.
        for ev in &self.events {
            assert!(
                ev.at_step < self.steps,
                "scenario '{}': event {ev:?} is scheduled at or after the last step ({})",
                self.name,
                self.steps
            );
        }
        let _dir_guard;
        let durability = if self.durable {
            let guard = TempDir::new(&format!("chaos-{}-{}", self.name, self.seed));
            let dir = guard.path().to_path_buf();
            _dir_guard = Some(guard);
            Some(DurabilityOptions { dir, policy: StorageSyncPolicy::Always })
        } else {
            _dir_guard = None;
            None
        };
        let scale = Micros::from(self.time_scale.max(1));
        let opts = ServerOptions {
            sighting_ttl_us: SIGHTING_TTL_US * scale,
            path_refresh_us: PATH_REFRESH_US * scale,
            path_ttl_us: PATH_TTL_US * scale,
            query_timeout_us: QUERY_TIMEOUT_US,
            durability,
            caches: self.caches,
            ..Default::default()
        };
        // The fault plan is installed *after* the registration wave:
        // `Fleet::register` is not retried, and chaos targets the
        // steady state. Timed windows are still anchored at virtual 0.
        let mut ls = SimDeployment::with_network(
            self.hierarchy(),
            opts,
            self.latency,
            FaultPlan::none(),
            self.seed,
        );
        let cfg = FleetConfig {
            num_objects: self.num_objects,
            speed_mps: self.speed_mps,
            mobility: self.mobility,
            policy: self.policy,
            seed: self.seed,
            ..Default::default()
        };
        if self.replication {
            // Before the registration wave: every change then streams
            // as a delta rather than riding the designation snapshot.
            ls.enable_replication();
            trace.push(format!(
                "replication enabled: root standby = server {}",
                ls.standby_of(ls.hierarchy().root()).map(|s| s.0).unwrap_or(u32::MAX)
            ));
        }
        let mut fleet = match Fleet::register(cfg, &mut ls) {
            Ok(f) => f,
            Err(e) => self.fail(&trace, &format!("fleet registration failed: {e:?}")),
        };
        trace.push(format!(
            "registered {} objects across {} servers at t={}us",
            self.num_objects,
            ls.hierarchy().len(),
            ls.now_us()
        ));
        ls.set_faults(self.faults.clone());

        let mut crash_snapshots: BTreeMap<u32, VisitorSnapshot> = BTreeMap::new();
        let mut root_watermark: Option<(ServerId, BTreeMap<ObjectId, Hlc>)> = None;
        let mut query_latency_us: Vec<Micros> = Vec::new();
        for step in 0..self.steps {
            let events: Vec<ScenarioEvent> =
                self.events.iter().filter(|e| e.at_step == step).cloned().collect();
            for ev in events {
                self.apply_event(&ev, &mut ls, &mut crash_snapshots, &mut root_watermark, &mut trace);
            }
            let inbox = fleet.process_inbox(&mut ls);
            let s = fleet.step(&mut ls, self.step_dt_s);
            trace.push(format!(
                "step {step:>3} t={:>10}us alive={} sent={} acks={} handovers={} lost={} dereg={} \
                 agent_changes={} probes={}",
                ls.now_us(),
                fleet.alive_count(),
                s.updates_sent,
                s.acks,
                s.handovers,
                s.lost,
                s.deregistered,
                inbox.agent_changes,
                inbox.probes_answered,
            ));
            if self.mid_chaos_queries {
                let t0 = ls.now_us();
                trace.push(if self.macro_mix {
                    self.macro_mix_query(step, &mut ls)
                } else {
                    self.mid_chaos_query(step, &mut ls)
                });
                query_latency_us.push(ls.now_us() - t0);
            }
        }

        // ---- settle: heal everything, then let the soft state quiesce.
        // Retired servers (left by `Retire`, or a root replaced by
        // failover) are down for good and exempt.
        for cfg in ls.hierarchy().servers().to_vec() {
            if ls.is_down(cfg.id) && !ls.is_retired(cfg.id) {
                self.fail(
                    &trace,
                    &format!("server {} still down at settle: every Crash needs a Restart", cfg.id.0),
                );
            }
        }
        ls.set_faults(FaultPlan::none());
        trace.push(format!("settle: network healed at t={}us", ls.now_us()));
        // Ghosts (handover leftovers) expire after the sighting TTL and
        // torn paths are re-asserted by keep-alives every refresh
        // period; span both while keeping live objects refreshed.
        let chunk = PATH_REFRESH_US * scale / 2;
        let chunks = ((SIGHTING_TTL_US * scale + 2 * PATH_REFRESH_US * scale) / chunk + 1) as usize;
        for _ in 0..chunks {
            fleet.process_inbox(&mut ls);
            fleet.report_all(&mut ls);
            ls.advance_time(ls.now_us() + chunk);
        }
        fleet.process_inbox(&mut ls);
        let last = fleet.report_all(&mut ls);
        ls.run_until_quiet();
        if last.updates_sent != last.acks + last.handovers {
            self.fail(
                &trace,
                &format!(
                    "settle reports must all be acknowledged on a healed network: {last:?}"
                ),
            );
        }
        trace.push(format!(
            "settled at t={}us: alive={} final_reports={:?}",
            ls.now_us(),
            fleet.alive_count(),
            last
        ));

        self.check_invariants(&mut ls, &fleet, &trace);

        ScenarioRun {
            alive: fleet.alive_count(),
            virtual_end_us: ls.now_us(),
            net_counters: ls.net_counters(),
            blackholed: ls.blackholed(),
            stats: ls.total_stats(),
            query_latency_us,
            trace,
        }
    }

    /// One round of mixed query load against the *current* root while
    /// faults are active. Outcomes go into the trace (deterministic
    /// per seed); correctness is only demanded of the settled verdict.
    fn mid_chaos_query(&self, step: u32, ls: &mut SimDeployment) -> String {
        let root = ls.hierarchy().root();
        let oid = ObjectId(u64::from(step) % self.num_objects);
        let pos = match ls.pos_query(root, oid) {
            Ok(ld) => format!("pos({oid})=({:.1},{:.1})", ld.pos.x, ld.pos.y),
            Err(e) => format!("pos({oid})=err:{e:?}"),
        };
        let a = self.area_m;
        let quadrant = match step % 4 {
            0 => Rect::new(Point::new(0.0, 0.0), Point::new(a / 2.0, a / 2.0)),
            1 => Rect::new(Point::new(a / 2.0, 0.0), Point::new(a, a / 2.0)),
            2 => Rect::new(Point::new(0.0, a / 2.0), Point::new(a / 2.0, a)),
            _ => Rect::new(Point::new(a / 2.0, a / 2.0), Point::new(a, a)),
        };
        let query = RangeQuery::new(Region::from(quadrant), FleetConfig::default().min_acc_m, 0.5);
        let range = match ls.range_query(root, query) {
            Ok(ans) => format!("range={}:{}", ans.objects.len(), ans.complete),
            Err(e) => format!("range=err:{e:?}"),
        };
        format!("query step {step:>3} via root {}: {pos} {range}", root.0)
    }

    /// One round of the **macro workload mix** while faults are active:
    /// a Zipf-skewed position query, a hot-cell range query and a
    /// hot-cell nearest-neighbor query, each entering at a Zipf-hot
    /// leaf (clients query their local leaf; popularity is skewed).
    /// Outcomes go into the trace — mid-chaos they may time out or be
    /// stale (the entry leaf may even be crashed); the settled oracle
    /// is the verdict. Deterministic per `(seed, step)`.
    fn macro_mix_query(&self, step: u32, ls: &mut SimDeployment) -> String {
        use hiloc_util::rng::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(self.seed ^ (u64::from(step) << 24) ^ 0x00AC_0517);
        let leaves: Vec<ServerId> = ls
            .hierarchy()
            .servers()
            .iter()
            .filter(|c| c.is_leaf() && !ls.hierarchy().is_retired(c.id))
            .map(|c| c.id)
            .collect();
        let zipf_leaf = crate::Zipf::new(leaves.len(), 0.9);
        let zipf_obj = crate::Zipf::new(self.num_objects as usize, 0.9);
        let min_acc_m = FleetConfig::default().min_acc_m;

        let entry = leaves[zipf_leaf.sample(&mut rng)];
        let oid = ObjectId(zipf_obj.sample(&mut rng) as u64);
        let pos = match ls.pos_query(entry, oid) {
            Ok(ld) => format!("pos({oid})=({:.1},{:.1})", ld.pos.x, ld.pos.y),
            Err(e) => format!("pos({oid})=err:{e:?}"),
        };

        let hot = ls.hierarchy().server(leaves[zipf_leaf.sample(&mut rng)]).area;
        let side = (hot.max().x - hot.min().x).max(hot.max().y - hot.min().y);
        let cell = Rect::from_center_size(hot.center(), side / 2.0, side / 2.0);
        let query = RangeQuery::new(Region::from(cell), min_acc_m, 0.5);
        let range = match ls.range_query(entry, query) {
            Ok(ans) => format!("range={}:{}", ans.objects.len(), ans.complete),
            Err(e) => format!("range=err:{e:?}"),
        };

        let p = ls.hierarchy().server(leaves[zipf_leaf.sample(&mut rng)]).area.center();
        let nn = match ls.neighbor_query(entry, p, min_acc_m, min_acc_m / 2.0) {
            Ok(ans) => format!("nn={:?}:{}", ans.nearest.map(|(o, _)| o), ans.complete),
            Err(e) => format!("nn=err:{e:?}"),
        };
        format!("macro step {step:>3} via leaf {}: {pos} {range} {nn}", entry.0)
    }

    fn apply_event(
        &self,
        ev: &ScenarioEvent,
        ls: &mut SimDeployment,
        crash_snapshots: &mut BTreeMap<u32, VisitorSnapshot>,
        root_watermark: &mut Option<(ServerId, BTreeMap<ObjectId, Hlc>)>,
        trace: &mut Vec<String>,
    ) {
        // Crashing the *root* freezes its stream's durably-acked
        // watermark: a later `PromoteStandby` that adopts this stream's
        // sink is checked against exactly this snapshot.
        let snapshot_watermark = |ls: &SimDeployment, id: ServerId| {
            if id != ls.hierarchy().root() {
                return None;
            }
            ls.server(id).replication_acked().map(|(t, acked)| (t, acked.clone()))
        };
        match ev.action {
            FaultAction::Crash(id) => {
                let snap = snapshot_visitors(ls, id);
                trace.push(format!(
                    "event@{}: crash server {} ({} visitor records, t={}us)",
                    ev.at_step,
                    id.0,
                    snap.len(),
                    ls.now_us()
                ));
                crash_snapshots.insert(id.0, snap);
                *root_watermark = snapshot_watermark(ls, id).or(root_watermark.take());
                ls.crash_server(id);
            }
            FaultAction::PowerLoss(id) => {
                let snap = snapshot_visitors(ls, id);
                trace.push(format!(
                    "event@{}: power loss at server {} ({} visitor records, t={}us)",
                    ev.at_step,
                    id.0,
                    snap.len(),
                    ls.now_us()
                ));
                crash_snapshots.insert(id.0, snap);
                *root_watermark = snapshot_watermark(ls, id).or(root_watermark.take());
                ls.crash_server_with(id, CrashMode::PowerLoss);
            }
            FaultAction::Spawn { split } => {
                let new_id = ls.spawn_server(split);
                trace.push(format!(
                    "event@{}: server {} joined, splitting leaf {} (t={}us)",
                    ev.at_step,
                    new_id.0,
                    split.0,
                    ls.now_us()
                ));
            }
            FaultAction::Retire(id) => {
                let absorber = ls.retire_server(id);
                trace.push(format!(
                    "event@{}: server {} left; sibling {} absorbs its area (t={}us)",
                    ev.at_step,
                    id.0,
                    absorber.0,
                    ls.now_us()
                ));
            }
            FaultAction::PromoteStandby => {
                let warm = ls.standby_of(ls.hierarchy().root()).map(|s| !ls.is_down(s));
                let new_root = ls.promote_root();
                trace.push(format!(
                    "event@{}: root failed over to successor {} ({}, t={}us)",
                    ev.at_step,
                    new_root.0,
                    match warm {
                        Some(true) => "warm standby adoption",
                        Some(false) => "standby dead, cold pathSync",
                        None => "no standby, cold pathSync",
                    },
                    ls.now_us()
                ));
                // Promotion contract: when the promoted server is the
                // crashed root's stream sink, every durably-acked
                // record must have survived adoption with at least its
                // acked stamp. Only meaningful with durable stores —
                // a volatile standby legitimately restarts empty.
                if let Some((target, watermark)) = root_watermark.take() {
                    if self.durable && new_root == target {
                        for (oid, stamp) in watermark {
                            let ok = ls
                                .server(new_root)
                                .visitors()
                                .get(oid)
                                .map(|rec| rec.epoch() >= stamp)
                                .unwrap_or(false);
                            if !ok {
                                self.fail(
                                    trace,
                                    &format!(
                                        "promotion lost durably-acked record {oid} \
                                         (acked stamp {stamp}): the standby acknowledged \
                                         it but the promoted table does not hold it\n\
                                         record dump:\n{}",
                                        record_dump(ls, oid)
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            FaultAction::Restart(id) => {
                ls.restart_server(id);
                let recovered = snapshot_visitors(ls, id);
                trace.push(format!(
                    "event@{}: restart server {} ({} visitor records recovered, t={}us)",
                    ev.at_step,
                    id.0,
                    recovered.len(),
                    ls.now_us()
                ));
                if let Some(expected) = crash_snapshots.remove(&id.0) {
                    if self.durable {
                        if recovered != expected {
                            self.fail(
                                trace,
                                &format!(
                                    "server {} lost durably-acked records across the crash: \
                                     expected {expected:?}, recovered {recovered:?}",
                                    id.0
                                ),
                            );
                        }
                    } else if !recovered.is_empty() {
                        self.fail(
                            trace,
                            &format!(
                                "volatile server {} must restart empty, got {recovered:?}",
                                id.0
                            ),
                        );
                    }
                }
            }
            FaultAction::Checkpoint(id) => {
                ls.checkpoint_server(id);
                trace.push(format!(
                    "event@{}: checkpoint at server {} (t={}us)",
                    ev.at_step,
                    id.0,
                    ls.now_us()
                ));
            }
            FaultAction::HealNetwork => {
                ls.set_faults(FaultPlan::none());
                trace.push(format!("event@{}: network healed (t={}us)", ev.at_step, ls.now_us()));
            }
        }
    }

    fn check_invariants(&self, ls: &mut SimDeployment, fleet: &Fleet, trace: &[String]) {
        // Every mobility model stays inside the service area, so a
        // deregistered object means the service *lost* a registration
        // (e.g. a crash without durability) and talked the object into
        // believing it left the area.
        for i in 0..fleet.len() {
            if !fleet.alive(i) {
                self.fail(
                    trace,
                    &format!(
                        "registered object {} was deregistered even though it never left \
                         the service area — a registration was lost",
                        fleet.oid(i)
                    ),
                );
            }
        }

        let oracle = Oracle::from_fleet(fleet);
        let root = ls.hierarchy().root();
        let min_acc_m = FleetConfig::default().min_acc_m;

        // Point queries, routed through the root so the whole
        // forwarding path is exercised. Each object is queried twice:
        // with caches enabled the second query can be served from the
        // entry's §6.5 caches, which the bounded-staleness rule below
        // must still accept — a wrong cached answer fails the run.
        for (oid, expect) in oracle.entries() {
            for attempt in 0..2 {
                let ld = match ls.pos_query(root, oid) {
                    Ok(ld) => ld,
                    Err(e) => self.fail(
                        trace,
                        &format!(
                            "registered object {oid} lost (attempt {attempt}): {e:?}\n\
                             record dump:\n{}",
                            record_dump(ls, oid)
                        ),
                    ),
                };
                self.check_point_answer(oid, &ld, expect, min_acc_m, attempt, trace);
            }
        }

        // Range queries: whole area plus the four quadrants.
        let a = self.area_m;
        let rects = [
            Rect::new(Point::new(0.0, 0.0), Point::new(a, a)),
            Rect::new(Point::new(0.0, 0.0), Point::new(a / 2.0, a / 2.0)),
            Rect::new(Point::new(a / 2.0, 0.0), Point::new(a, a / 2.0)),
            Rect::new(Point::new(0.0, a / 2.0), Point::new(a / 2.0, a)),
            Rect::new(Point::new(a / 2.0, a / 2.0), Point::new(a, a)),
        ];
        for rect in rects {
            let query = RangeQuery::new(Region::from(rect), min_acc_m, 0.5);
            let ans = match ls.range_query(root, query.clone()) {
                Ok(a) => a,
                Err(e) => self.fail(trace, &format!("range query {rect:?} failed: {e:?}")),
            };
            if !ans.complete {
                self.fail(trace, &format!("range query {rect:?} incomplete on a healed network"));
            }
            let got: BTreeSet<ObjectId> = ans.objects.iter().map(|(oid, _)| *oid).collect();
            let want = oracle.expect_range(&query);
            if got != want {
                let missing: Vec<_> = want.difference(&got).collect();
                let extra: Vec<_> = got.difference(&want).collect();
                self.fail(
                    trace,
                    &format!(
                        "range answer for {rect:?} diverges from the oracle: \
                         missing {missing:?}, unexpected {extra:?}"
                    ),
                );
            }
        }
    }

    /// Point-answer semantics, cache-aware. A **fresh** answer must hit
    /// the acknowledged position exactly and honor the accuracy
    /// contract. With the §6.5 position cache on, a **stale** answer is
    /// also legal — iff its *aged* accuracy stayed within
    /// `position_max_aged_acc_m` and that aged accuracy still covers
    /// the acknowledged position (the cached descriptor was an
    /// acknowledged position itself, and the object's speed is bounded
    /// by its registered maximum, so a correctly aged entry always
    /// covers the truth; one that does not was invalidated wrongly).
    fn check_point_answer(
        &self,
        oid: ObjectId,
        ld: &LocationDescriptor,
        expect: &LocationDescriptor,
        min_acc_m: f64,
        attempt: u32,
        trace: &[String],
    ) {
        let drift = ld.pos.distance(expect.pos);
        let fresh = drift <= 1e-6;
        if fresh {
            // A zero-drift answer may still be a *cached* one (the
            // object paused, so the aged descriptor matches the acked
            // position exactly): with the position cache on, its
            // accuracy is held to the staleness bound when that is
            // looser than the registration contract.
            let acc_bound = if self.caches.position_cache {
                (min_acc_m + 1.0).max(self.caches.position_max_aged_acc_m + 1e-9)
            } else {
                min_acc_m + 1.0
            };
            if !(ld.acc_m.is_finite() && ld.acc_m <= acc_bound) {
                self.fail(
                    trace,
                    &format!(
                        "accuracy contract violated for {oid}: answered {} m, contract {} m \
                         (staleness bound {} m)",
                        ld.acc_m, min_acc_m, self.caches.position_max_aged_acc_m
                    ),
                );
            }
            return;
        }
        if !self.caches.position_cache {
            self.fail(
                trace,
                &format!(
                    "point answer for {oid} off by {drift} m (attempt {attempt}): \
                     got {:?}, acked {:?}",
                    ld.pos, expect.pos
                ),
            );
        }
        let bound = self.caches.position_max_aged_acc_m;
        if !(ld.acc_m.is_finite() && ld.acc_m <= bound + 1e-9) {
            self.fail(
                trace,
                &format!(
                    "stale point answer for {oid} exceeds the staleness bound: \
                     aged accuracy {} m > {} m (attempt {attempt})",
                    ld.acc_m, bound
                ),
            );
        }
        if drift > ld.acc_m + 1e-6 {
            self.fail(
                trace,
                &format!(
                    "stale point answer for {oid} does not cover the acked position: \
                     drift {drift} m > aged accuracy {} m (attempt {attempt}) — \
                     a cache entry survived an invalidation it must not have",
                    ld.acc_m
                ),
            );
        }
    }

    fn fail(&self, trace: &[String], msg: &str) -> ! {
        panic!(
            "chaos scenario '{name}' failed: {msg}\n\
             --- replay: re-run this spec with seed={seed} (runs are bit-for-bit deterministic)\n\
             --- fault timeline:\n{timeline}\n\
             --- scripted events: {events:?}\n\
             --- caches: {caches:?}\n\
             --- trace ({n} lines):\n{trace}",
            name = self.name,
            seed = self.seed,
            timeline = self.faults.describe(),
            events = self.events,
            caches = self.caches,
            n = trace.len(),
            trace = trace.join("\n"),
        );
    }
}
