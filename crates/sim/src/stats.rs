//! Latency/throughput sample collection and summaries.

use std::fmt;

/// A collection of scalar samples (latencies in µs, message counts, …)
/// with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

/// Summary statistics of a [`Samples`] collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The q-th quantile (`0 ≤ q ≤ 1`) by nearest-rank; 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let idx = ((self.values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Computes the full summary.
    ///
    /// **Empty-collection semantics:** with zero samples every field is
    /// an explicit `0.0` (and `count == 0`), never `NaN` — the naive
    /// `sum / count` mean would be `0.0 / 0.0`. Consumers that must
    /// distinguish "no samples" from "all-zero samples" check `count`;
    /// machine-readable reports (the macro benchmark's
    /// `BENCH_macro.json`) rely on this to stay valid JSON, which has
    /// no NaN literal.
    pub fn summary(&mut self) -> Summary {
        if self.values.is_empty() {
            return Summary { count: 0, mean: 0.0, min: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 };
        }
        let count = self.values.len();
        let mean = self.values.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: self.quantile(0.0),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            max: self.quantile(1.0),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sequence() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 100);
        assert!((sum.mean - 50.5).abs() < 1e-9);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert!((sum.p50 - 50.0).abs() <= 1.0);
        assert!((sum.p90 - 90.0).abs() <= 1.0);
        assert!((sum.p99 - 99.0).abs() <= 1.0);
    }

    /// Regression: the mean of zero samples is `0/0`; without the
    /// explicit empty case every field of the summary would be NaN and
    /// poison any JSON report built from it. Every field must be
    /// exactly zero (`assert_eq` would reject NaN, which compares
    /// unequal to everything including itself).
    #[test]
    fn empty_summary_is_zeros_not_nan() {
        let mut s = Samples::new();
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(
            sum,
            Summary { count: 0, mean: 0.0, min: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 }
        );
        assert_eq!(s.quantile(0.5), 0.0);
    }

    /// Nearest-rank percentiles of a single sample: every percentile
    /// *is* that sample.
    #[test]
    fn single_sample_summary() {
        let mut s = Samples::new();
        s.record(42.0);
        let sum = s.summary();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.mean, 42.0);
        assert_eq!(sum.min, 42.0);
        assert_eq!(sum.p50, 42.0);
        assert_eq!(sum.p90, 42.0);
        assert_eq!(sum.p99, 42.0);
        assert_eq!(sum.max, 42.0);
    }

    /// Nearest-rank percentiles of two samples: index
    /// `round((n-1) · q)` puts p50/p90/p99 on the *upper* sample
    /// (round(0.5) = 1 under round-half-away-from-zero) and min on the
    /// lower.
    #[test]
    fn two_sample_percentile_ranks() {
        let mut s = Samples::new();
        s.record(10.0);
        s.record(20.0);
        let sum = s.summary();
        assert_eq!(sum.count, 2);
        assert_eq!(sum.mean, 15.0);
        assert_eq!(sum.min, 10.0);
        assert_eq!(sum.p50, 20.0);
        assert_eq!(sum.p90, 20.0);
        assert_eq!(sum.p99, 20.0);
        assert_eq!(sum.max, 20.0);
    }

    #[test]
    fn interleaved_record_and_quantile() {
        let mut s = Samples::new();
        s.record(10.0);
        assert_eq!(s.quantile(0.5), 10.0);
        s.record(20.0);
        s.record(0.0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 20.0);
    }
}
