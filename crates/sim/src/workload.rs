//! Query/update workload generation with locality.

use hiloc_core::model::ObjectId;
use hiloc_geo::{Point, Rect};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

/// Relative weights of the operation types in a workload (the paper's
/// "concrete mix of different types of queries").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMix {
    /// Position updates.
    pub update: f64,
    /// Position queries.
    pub pos: f64,
    /// Range queries.
    pub range: f64,
    /// Nearest-neighbor queries.
    pub nn: f64,
}

impl QueryMix {
    /// An update-heavy mix resembling a tracking-dominated service.
    pub fn update_heavy() -> Self {
        QueryMix { update: 0.8, pos: 0.1, range: 0.08, nn: 0.02 }
    }

    /// A query-heavy mix resembling an information-service deployment.
    pub fn query_heavy() -> Self {
        QueryMix { update: 0.3, pos: 0.4, range: 0.2, nn: 0.1 }
    }

    fn total(&self) -> f64 {
        self.update + self.pos + self.range + self.nn
    }
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A position update from a tracked object.
    Update,
    /// A position query.
    PosQuery,
    /// A range query.
    RangeQuery,
    /// A nearest-neighbor query.
    NeighborQuery,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Operation mix.
    pub mix: QueryMix,
    /// Probability that a query targets the issuing client's vicinity
    /// (the paper's "degree of locality"); the rest are uniform over
    /// the whole service area.
    pub locality: f64,
    /// Radius of "the vicinity" in meters.
    pub local_radius_m: f64,
    /// Edge length of generated range-query areas (meters); the paper's
    /// Table 2 uses 50 m × 50 m.
    pub range_extent_m: f64,
    /// Mean inter-arrival time of operations in seconds (exponential).
    pub mean_interarrival_s: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            mix: QueryMix::update_heavy(),
            locality: 0.8,
            local_radius_m: 250.0,
            range_extent_m: 50.0,
            mean_interarrival_s: 0.01,
        }
    }
}

/// A deterministic workload generator.
#[derive(Debug)]
pub struct WorkloadGen {
    params: WorkloadParams,
    area: Rect,
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator over the given service area.
    ///
    /// # Panics
    ///
    /// Panics if the mix has non-positive total weight or `locality`
    /// is outside `[0, 1]`.
    pub fn new(params: WorkloadParams, area: Rect, seed: u64) -> Self {
        assert!(params.mix.total() > 0.0, "query mix must have positive weight");
        assert!((0.0..=1.0).contains(&params.locality));
        WorkloadGen { params, area, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configured parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Draws the next operation kind from the mix.
    pub fn next_op(&mut self) -> OpKind {
        let total = self.params.mix.total();
        let r = self.rng.random_range(0.0..total);
        let m = self.params.mix;
        if r < m.update {
            OpKind::Update
        } else if r < m.update + m.pos {
            OpKind::PosQuery
        } else if r < m.update + m.pos + m.range {
            OpKind::RangeQuery
        } else {
            OpKind::NeighborQuery
        }
    }

    /// Draws an exponential inter-arrival gap in seconds.
    pub fn next_interarrival_s(&mut self) -> f64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        -u.ln() * self.params.mean_interarrival_s
    }

    /// A query target point: near `client_pos` with probability
    /// `locality`, else uniform over the service area.
    pub fn query_point(&mut self, client_pos: Point) -> Point {
        if self.rng.random_bool(self.params.locality) {
            let r = self.params.local_radius_m;
            let candidate = client_pos
                + Point::new(self.rng.random_range(-r..r), self.rng.random_range(-r..r));
            self.clamp(candidate)
        } else {
            self.uniform_point()
        }
    }

    /// A square query area centered on [`WorkloadGen::query_point`].
    pub fn query_area(&mut self, client_pos: Point) -> Rect {
        let c = self.query_point(client_pos);
        let e = self.params.range_extent_m;
        Rect::from_center_size(self.clamp(c), e, e)
    }

    /// A uniformly random point in the service area.
    pub fn uniform_point(&mut self) -> Point {
        Point::new(
            self.rng.random_range(self.area.min().x..self.area.max().x),
            self.rng.random_range(self.area.min().y..self.area.max().y),
        )
    }

    /// A uniformly random registered object (`0..n`).
    pub fn random_oid(&mut self, n: u64) -> ObjectId {
        ObjectId(self.rng.random_range(0..n))
    }

    fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.area.min().x, self.area.max().x - 1e-3),
            p.y.clamp(self.area.min().y, self.area.max().y - 1e-3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0))
    }

    #[test]
    fn mix_proportions_roughly_respected() {
        let params = WorkloadParams { mix: QueryMix { update: 0.5, pos: 0.5, range: 0.0, nn: 0.0 }, ..Default::default() };
        let mut gen = WorkloadGen::new(params, area(), 1);
        let mut updates = 0;
        for _ in 0..10_000 {
            if gen.next_op() == OpKind::Update {
                updates += 1;
            }
        }
        assert!((4_000..6_000).contains(&updates), "updates {updates}");
    }

    #[test]
    fn zero_weight_ops_never_drawn() {
        let params = WorkloadParams { mix: QueryMix { update: 1.0, pos: 0.0, range: 0.0, nn: 0.0 }, ..Default::default() };
        let mut gen = WorkloadGen::new(params, area(), 2);
        for _ in 0..1_000 {
            assert_eq!(gen.next_op(), OpKind::Update);
        }
    }

    #[test]
    fn interarrival_mean_close() {
        let params = WorkloadParams { mean_interarrival_s: 0.5, ..Default::default() };
        let mut gen = WorkloadGen::new(params, area(), 3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| gen.next_interarrival_s()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn locality_keeps_queries_close() {
        let params = WorkloadParams { locality: 1.0, local_radius_m: 50.0, ..Default::default() };
        let mut gen = WorkloadGen::new(params, area(), 4);
        let client = Point::new(500.0, 500.0);
        for _ in 0..1_000 {
            let p = gen.query_point(client);
            assert!(client.distance(p) <= 50.0 * 2.0_f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn query_areas_inside_service_area() {
        let params = WorkloadParams { locality: 0.0, range_extent_m: 50.0, ..Default::default() };
        let mut gen = WorkloadGen::new(params, area(), 5);
        for _ in 0..1_000 {
            let r = gen.query_area(Point::ORIGIN);
            assert!((r.width() - 50.0).abs() < 1e-9);
            // Center stays inside the area (the rect itself may poke out,
            // which the service handles via coverage targeting).
            assert!(area().contains(r.center()));
        }
    }

    #[test]
    fn random_oid_in_range() {
        let mut gen = WorkloadGen::new(WorkloadParams::default(), area(), 6);
        for _ in 0..1_000 {
            assert!(gen.random_oid(17).0 < 17);
        }
    }
}
