//! Zipf-distributed rank sampling (hot spots).

use hiloc_util::rng::RngExt;

/// A Zipf(α) sampler over ranks `0..n` via the inverse CDF.
///
/// Used to place objects and queries on *hot spots*: rank 0 is the
/// hottest location, with popularity `∝ 1/(rank+1)^α`.
///
/// # Example
///
/// ```
/// use hiloc_sim::Zipf;
/// use hiloc_util::rng::SeedableRng;
/// let mut rng = hiloc_util::rng::StdRng::seed_from_u64(1);
/// let zipf = Zipf::new(100, 1.0);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (`n > 0` by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        self.rank_for(rng.random())
    }

    /// The rank whose CDF interval contains `u` — the inverse-CDF
    /// lookup behind [`Zipf::sample`], exposed so edge draws can be
    /// tested directly.
    ///
    /// The `Err` branch of the binary search is clamped to `n - 1`:
    /// after normalization `cdf.last()` can round *below* 1.0 (large
    /// `n` sums millions of terms), so a draw in
    /// `(cdf.last(), 1.0]` would otherwise return the out-of-range
    /// rank `n`.
    pub fn rank_for(&self, u: f64) -> usize {
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiloc_util::prop::check;
    use hiloc_util::rng::StdRng;
    use hiloc_util::rng::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1_300).contains(&c), "count {c} not ~uniform");
        }
    }

    #[test]
    fn skewed_when_alpha_large() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipf::new(100, 1.2);
        let mut rank0 = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        // Rank 0 should carry well over 1/100 of the mass.
        assert!(rank0 > 1_000, "rank0 drew {rank0}");
    }

    #[test]
    fn all_ranks_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(5, 0.5);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    /// Regression (macro-bench scale): at `n = 1_000_000` the
    /// normalized CDF's last entry rounds below 1.0, so a draw in
    /// `(cdf.last(), 1.0]` hits the `Err(n)` branch of the binary
    /// search — without the clamp, `sample` would return the
    /// out-of-range rank `n` and index one past the object population.
    #[test]
    fn rank_stays_in_range_for_edge_draws_at_macro_scale() {
        let n = 1_000_000;
        let z = Zipf::new(n, 0.9);
        // The exact edge values, including u = 1.0 itself.
        for u in [1.0, 1.0 - f64::EPSILON, 0.999_999_999_999_999_9] {
            assert!(z.rank_for(u) < n, "u={u} produced rank {}", z.rank_for(u));
        }
        // Property: hammer draws approaching 1.0 from below at ever
        // finer spacing; every rank must stay in range, and draws at or
        // beyond the CDF tail must clamp to exactly n - 1.
        check(256, |g| {
            let exp = g.random_range(1.0..16.0);
            let u: f64 = 1.0 - 10f64.powf(-exp);
            let r = z.rank_for(u);
            assert!(r < n, "u={u} produced rank {r}");
        });
        assert_eq!(z.rank_for(1.0), n - 1);
        assert_eq!(z.rank_for(f64::INFINITY), n - 1);
    }
}
