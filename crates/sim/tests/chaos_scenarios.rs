//! The seeded chaos scenario suite: scripted partitions, crashes and
//! restarts driven through the deterministic virtual-time deployment,
//! with every invariant checked by the in-memory oracle
//! (`hiloc_sim::scenario`).
//!
//! All scenarios use fixed seeds and bounded virtual time, so this
//! suite is fast and bit-for-bit reproducible — a failing run prints
//! the seed and fault timeline needed to replay it.

use hiloc_core::area::HierarchyBuilder;
use hiloc_core::model::{ObjectId, Sighting, UpdatePolicy, SECOND};
use hiloc_core::node::{DurabilityOptions, ServerOptions, StorageSyncPolicy, VisitorRecord};
use hiloc_core::proto::Message;
use hiloc_core::runtime::SimDeployment;
use hiloc_geo::{Point, Rect};
use hiloc_net::{FaultPlan, LatencySpike, LinkFault, Partition};
use hiloc_sim::mobility::MobilityKind;
use hiloc_sim::scenario::{
    subtree_endpoints, FaultAction, ScenarioEvent, ScenarioSpec,
};
use hiloc_util::tempdir::TempDir;

/// The acceptance scenario: partition a subtree, crash a leaf agent
/// mid-partition (with handovers in flight across the cut), heal,
/// restart, and demand every oracle invariant green.
fn flagship(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "partition-crash-restart".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 32,
        speed_mps: 20.0, // fast: leaf crossings (and thus handovers) every few steps
        steps: 26,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    // The victim: a leaf agent in the lower-left corner, and the
    // mid-level subtree containing it, which gets cut off from the rest
    // of the world (including the root and the tracked objects) for
    // roughly steps 3–15 of the chaos phase.
    let victim_leaf = h.leaf_for(Point::new(125.0, 125.0)).expect("in area");
    let mid = h.server(victim_leaf).parent.expect("leaf has a parent");
    let cut = subtree_endpoints(&h, mid);
    spec.faults = FaultPlan::none()
        .with_partition(Partition::isolate(6 * SECOND, 30 * SECOND, cut));
    spec.events = vec![
        // Crash while the partition is active: pending handovers out of
        // the severed subtree are lost along with the leaf's volatile
        // state. The durable visitor WAL stays on disk. The partition
        // heals (t = 30 s) well before the restart at step 20, so the
        // down server blackholes live traffic in between.
        ScenarioEvent { at_step: 8, action: FaultAction::Crash(victim_leaf) },
        ScenarioEvent { at_step: 20, action: FaultAction::Restart(victim_leaf) },
    ];
    spec
}

#[test]
fn flagship_partition_crash_restart_is_green() {
    let run = flagship(0xC0FFEE).run();
    assert_eq!(run.alive, 32, "no object may be falsely deregistered");
    assert!(run.blackholed > 0, "the crash must actually blackhole traffic");
    assert!(run.net_counters.2 > 0, "the partition must actually drop messages");
}

#[test]
fn flagship_is_deterministic_per_seed() {
    let a = flagship(7).run();
    let b = flagship(7).run();
    assert_eq!(a.trace, b.trace, "same seed must replay the identical trace");
    assert_eq!(a.net_counters, b.net_counters);
    assert_eq!(a.virtual_end_us, b.virtual_end_us);
    let c = flagship(8).run();
    assert_ne!(a.trace, c.trace, "a different seed must explore a different run");
}

#[test]
fn crash_restart_recovers_every_durably_acked_registration() {
    // Stationary population, so the crashed leaf's registrations are
    // exactly what must come back from the WAL (the harness compares
    // the recovered visitor DB record-for-record against the
    // crash-instant snapshot and fails on any divergence).
    let mut spec = ScenarioSpec {
        name: "durable-crash-recovery".to_string(),
        seed: 42,
        levels: 1,
        fanout: 2,
        num_objects: 16,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 4 * SECOND },
        steps: 12,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let victim = h.leaf_for(Point::new(100.0, 100.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Crash(victim) },
        ScenarioEvent { at_step: 6, action: FaultAction::Restart(victim) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 16, "durable recovery must lose nobody");
}

#[test]
#[should_panic(expected = "chaos scenario")]
fn oracle_catches_lost_registrations_without_durability() {
    // Negative control: the same crash on a *volatile* deployment loses
    // the leaf's registrations for good, and the oracle must say so.
    let mut spec = ScenarioSpec {
        name: "volatile-crash-loses-state".to_string(),
        seed: 42,
        levels: 1,
        fanout: 2,
        num_objects: 16,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 4 * SECOND },
        steps: 12,
        durable: false,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let victim = h.leaf_for(Point::new(100.0, 100.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Crash(victim) },
        ScenarioEvent { at_step: 6, action: FaultAction::Restart(victim) },
    ];
    let _ = spec.run();
}

/// The mid-batch crash scenario: a leaf agent crashes with an
/// `UpdateBatch` on the wire. Batch atomicity at the durable layer
/// means recovery must expose the durably-acked registrations
/// record-for-record and *nothing* of the unacknowledged batch — never
/// a partial application. The gateway's re-send then restores every
/// sighting and the oracle (acked positions vs. root-routed queries)
/// goes green.
fn run_mid_batch_crash(seed: u64) -> Vec<String> {
    let mut trace = Vec::new();
    let dir = TempDir::new(&format!("chaos-midbatch-{seed}"));
    let opts = ServerOptions {
        sighting_ttl_us: 60 * SECOND,
        path_refresh_us: 15 * SECOND,
        path_ttl_us: 45 * SECOND,
        query_timeout_us: SECOND / 2,
        durability: Some(DurabilityOptions {
            dir: dir.path().to_path_buf(),
            policy: StorageSyncPolicy::Always,
        }),
        ..Default::default()
    };
    let h = HierarchyBuilder::grid(
        Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)),
        1,
        2,
    )
    .build()
    .expect("grid hierarchy");
    let mut ls = SimDeployment::new(h, opts, seed);
    let leaf = ls.leaf_for(Point::new(100.0, 100.0));

    // A stationary population tracked by one leaf (a gateway reports
    // them in batches, as a building's tracking system would).
    let n = 8u64;
    let pos_of = |k: u64, round: u64| {
        Point::new(40.0 + (k % 4) as f64 * 30.0 + round as f64, 40.0 + (k / 4) as f64 * 30.0)
    };
    for k in 0..n {
        let (agent, _) = ls
            .register(leaf, Sighting::new(ObjectId(k), 0, pos_of(k, 0), 5.0), 10.0, 50.0)
            .expect("registration");
        assert_eq!(agent, leaf);
    }

    // Batch 1: fully acknowledged — these positions are the oracle's
    // ground truth for "durably observed".
    let now = ls.now_us();
    let batch1: Vec<Sighting> =
        (0..n).map(|k| Sighting::new(ObjectId(k), now, pos_of(k, 1), 5.0)).collect();
    let acks = ls.update_batch(leaf, batch1).expect("batch 1 acked");
    assert_eq!(acks.len(), n as usize, "whole batch must ack in place");
    trace.push(format!("batch1 acked {} at t={}us", acks.len(), ls.now_us()));

    let snapshot: Vec<(ObjectId, VisitorRecord)> =
        ls.server(leaf).visitors().iter().map(|(oid, rec)| (oid, *rec)).collect();
    assert_eq!(snapshot.len(), n as usize);

    // Batch 2 goes on the wire… and the leaf dies before (or while)
    // processing it: the in-flight datagram is lost with the crash.
    let gateway = ls.new_client();
    let now = ls.now_us();
    let batch2: Vec<Sighting> =
        (0..n).map(|k| Sighting::new(ObjectId(k), now, pos_of(k, 2), 5.0)).collect();
    let corr = ls.next_corr();
    ls.send_from(gateway, leaf, Message::UpdateBatch { sightings: batch2.clone(), corr });
    ls.crash_server(leaf);
    ls.run_until_quiet();
    trace.push(format!("crashed mid-batch at t={}us", ls.now_us()));

    ls.restart_server(leaf);
    let recovered: Vec<(ObjectId, VisitorRecord)> =
        ls.server(leaf).visitors().iter().map(|(oid, rec)| (oid, *rec)).collect();
    assert_eq!(
        recovered, snapshot,
        "WAL replay must recover the durably-acked registrations record-for-record"
    );
    // No partial batch after replay: the restarted leaf holds *zero*
    // batch-2 sightings (its sighting store is volatile; the batch was
    // never acknowledged, so nothing of it may look applied).
    assert_eq!(
        ls.server(leaf).sighting_count(),
        0,
        "a never-acked batch must not be partially visible after recovery"
    );
    trace.push(format!("recovered {} records, 0 sightings", recovered.len()));

    // The gateway re-sends the unacknowledged batch (idempotent client
    // re-send, as over UDP); now everything acks and the oracle is
    // green: every root-routed query answers exactly the acked batch-2
    // position.
    let acks = ls.update_batch(leaf, batch2).expect("batch 2 re-send acked");
    assert_eq!(acks.len(), n as usize);
    let root = ls.hierarchy().root();
    for k in 0..n {
        let ld = ls.pos_query(root, ObjectId(k)).expect("object answerable after recovery");
        assert_eq!(ld.pos, pos_of(k, 2), "object {k} must answer its re-sent batch position");
    }
    trace.push(format!(
        "resent batch acked; oracle green at t={}us counters={:?} blackholed={}",
        ls.now_us(),
        ls.net_counters(),
        ls.blackholed()
    ));
    trace
}

#[test]
fn leaf_crash_mid_update_batch_is_atomic_and_recovers() {
    let trace = run_mid_batch_crash(0xBA7C4);
    assert_eq!(trace.len(), 4, "scenario phases: {trace:?}");
}

#[test]
fn mid_batch_crash_is_deterministic_per_seed() {
    assert_eq!(run_mid_batch_crash(5), run_mid_batch_crash(5));
    assert_ne!(run_mid_batch_crash(5), run_mid_batch_crash(6));
}

#[test]
fn reorder_duplicate_loss_storm_keeps_invariants() {
    let spec = ScenarioSpec {
        name: "udp-storm".to_string(),
        seed: 0xBAD5EED,
        levels: 1,
        fanout: 3,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 20,
        faults: FaultPlan::uniform(0.03, 0.05).with_reorder(0.2, 300_000),
        ..Default::default()
    };
    let run = spec.run();
    assert_eq!(run.alive, 24);
    assert!(run.net_counters.2 > 0, "the storm must actually drop messages");
    // Determinism holds under heavy fault-RNG usage too.
    let again = spec.clone().run();
    assert_eq!(run.trace, again.trace);
}

#[test]
fn dead_uplink_and_latency_spike_heal() {
    let mut spec = ScenarioSpec {
        name: "flaky-uplink-spike".to_string(),
        seed: 99,
        levels: 2,
        fanout: 2,
        num_objects: 20,
        speed_mps: 12.0,
        steps: 16,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let leaf = h.leaf_for(Point::new(900.0, 900.0)).expect("in area");
    let mid = h.server(leaf).parent.expect("leaf has a parent");
    let root = h.root();
    spec.faults = FaultPlan::none()
        // The mid→root uplink loses 80% of its traffic…
        .with_link(LinkFault::between(mid.into(), root.into()).with_drop(0.8))
        // …and everything crawls for a while.
        .with_spike(LatencySpike::new(4 * SECOND, 12 * SECOND, 200_000));
    let run = spec.run();
    assert_eq!(run.alive, 20);
}
