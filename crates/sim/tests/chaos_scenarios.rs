//! The seeded chaos scenario suite: scripted partitions, crashes and
//! restarts driven through the deterministic virtual-time deployment,
//! with every invariant checked by the in-memory oracle
//! (`hiloc_sim::scenario`).
//!
//! All scenarios use fixed seeds and bounded virtual time, so this
//! suite is fast and bit-for-bit reproducible — a failing run prints
//! the seed and fault timeline needed to replay it.

use hiloc_core::model::{UpdatePolicy, SECOND};
use hiloc_geo::Point;
use hiloc_net::{FaultPlan, LatencySpike, LinkFault, Partition};
use hiloc_sim::mobility::MobilityKind;
use hiloc_sim::scenario::{
    subtree_endpoints, FaultAction, ScenarioEvent, ScenarioSpec,
};

/// The acceptance scenario: partition a subtree, crash a leaf agent
/// mid-partition (with handovers in flight across the cut), heal,
/// restart, and demand every oracle invariant green.
fn flagship(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "partition-crash-restart".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 32,
        speed_mps: 20.0, // fast: leaf crossings (and thus handovers) every few steps
        steps: 26,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    // The victim: a leaf agent in the lower-left corner, and the
    // mid-level subtree containing it, which gets cut off from the rest
    // of the world (including the root and the tracked objects) for
    // roughly steps 3–15 of the chaos phase.
    let victim_leaf = h.leaf_for(Point::new(125.0, 125.0)).expect("in area");
    let mid = h.server(victim_leaf).parent.expect("leaf has a parent");
    let cut = subtree_endpoints(&h, mid);
    spec.faults = FaultPlan::none()
        .with_partition(Partition::isolate(6 * SECOND, 30 * SECOND, cut));
    spec.events = vec![
        // Crash while the partition is active: pending handovers out of
        // the severed subtree are lost along with the leaf's volatile
        // state. The durable visitor WAL stays on disk. The partition
        // heals (t = 30 s) well before the restart at step 20, so the
        // down server blackholes live traffic in between.
        ScenarioEvent { at_step: 8, action: FaultAction::Crash(victim_leaf) },
        ScenarioEvent { at_step: 20, action: FaultAction::Restart(victim_leaf) },
    ];
    spec
}

#[test]
fn flagship_partition_crash_restart_is_green() {
    let run = flagship(0xC0FFEE).run();
    assert_eq!(run.alive, 32, "no object may be falsely deregistered");
    assert!(run.blackholed > 0, "the crash must actually blackhole traffic");
    assert!(run.net_counters.2 > 0, "the partition must actually drop messages");
}

#[test]
fn flagship_is_deterministic_per_seed() {
    let a = flagship(7).run();
    let b = flagship(7).run();
    assert_eq!(a.trace, b.trace, "same seed must replay the identical trace");
    assert_eq!(a.net_counters, b.net_counters);
    assert_eq!(a.virtual_end_us, b.virtual_end_us);
    let c = flagship(8).run();
    assert_ne!(a.trace, c.trace, "a different seed must explore a different run");
}

#[test]
fn crash_restart_recovers_every_durably_acked_registration() {
    // Stationary population, so the crashed leaf's registrations are
    // exactly what must come back from the WAL (the harness compares
    // the recovered visitor DB record-for-record against the
    // crash-instant snapshot and fails on any divergence).
    let mut spec = ScenarioSpec {
        name: "durable-crash-recovery".to_string(),
        seed: 42,
        levels: 1,
        fanout: 2,
        num_objects: 16,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 4 * SECOND },
        steps: 12,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let victim = h.leaf_for(Point::new(100.0, 100.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Crash(victim) },
        ScenarioEvent { at_step: 6, action: FaultAction::Restart(victim) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 16, "durable recovery must lose nobody");
}

#[test]
#[should_panic(expected = "chaos scenario")]
fn oracle_catches_lost_registrations_without_durability() {
    // Negative control: the same crash on a *volatile* deployment loses
    // the leaf's registrations for good, and the oracle must say so.
    let mut spec = ScenarioSpec {
        name: "volatile-crash-loses-state".to_string(),
        seed: 42,
        levels: 1,
        fanout: 2,
        num_objects: 16,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 4 * SECOND },
        steps: 12,
        durable: false,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let victim = h.leaf_for(Point::new(100.0, 100.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Crash(victim) },
        ScenarioEvent { at_step: 6, action: FaultAction::Restart(victim) },
    ];
    let _ = spec.run();
}

#[test]
fn reorder_duplicate_loss_storm_keeps_invariants() {
    let spec = ScenarioSpec {
        name: "udp-storm".to_string(),
        seed: 0xBAD5EED,
        levels: 1,
        fanout: 3,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 20,
        faults: FaultPlan::uniform(0.03, 0.05).with_reorder(0.2, 300_000),
        ..Default::default()
    };
    let run = spec.run();
    assert_eq!(run.alive, 24);
    assert!(run.net_counters.2 > 0, "the storm must actually drop messages");
    // Determinism holds under heavy fault-RNG usage too.
    let again = spec.clone().run();
    assert_eq!(run.trace, again.trace);
}

#[test]
fn dead_uplink_and_latency_spike_heal() {
    let mut spec = ScenarioSpec {
        name: "flaky-uplink-spike".to_string(),
        seed: 99,
        levels: 2,
        fanout: 2,
        num_objects: 20,
        speed_mps: 12.0,
        steps: 16,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let leaf = h.leaf_for(Point::new(900.0, 900.0)).expect("in area");
    let mid = h.server(leaf).parent.expect("leaf has a parent");
    let root = h.root();
    spec.faults = FaultPlan::none()
        // The mid→root uplink loses 80% of its traffic…
        .with_link(LinkFault::between(mid.into(), root.into()).with_drop(0.8))
        // …and everything crawls for a while.
        .with_spike(LatencySpike::new(4 * SECOND, 12 * SECOND, 200_000));
    let run = spec.run();
    assert_eq!(run.alive, 20);
}
