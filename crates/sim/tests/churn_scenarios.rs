//! The churn scenario suite: hierarchy reconfiguration — servers
//! joining, leaving, and the root failing over — exercised **under
//! faults** (partitions, message loss, crashes mid-transfer, power
//! loss) with every invariant checked by the in-memory oracle.
//!
//! Complements `chaos_scenarios.rs` (static-tree chaos): here the tree
//! itself reshapes while updates, queries and handovers keep flowing.
//! All scenarios are seeded and run in bounded virtual time; a failing
//! run prints the seed, fault timeline and scripted events needed to
//! replay it bit-for-bit (`ci.sh` runs this suite as a named gate).

use hiloc_core::model::SECOND;
use hiloc_net::{FaultPlan, Partition, ServerId};
use hiloc_sim::mobility::MobilityKind;
use hiloc_sim::scenario::{
    subtree_endpoints, FaultAction, ScenarioEvent, ScenarioSpec,
};
use hiloc_core::model::UpdatePolicy;
use hiloc_geo::Point;
use hiloc_net::Endpoint;

/// **Join under a partition.** A new server splits a busy leaf while a
/// partition isolates the newcomer from the rest of the world: the
/// bulk state transfer is cut off mid-reconfiguration and must retry
/// until the network heals. The joining server's id is the next dense
/// slot, so the fault plan can target it before it exists.
fn join_under_partition(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "join-under-partition".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 24,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let newcomer = ServerId(h.len() as u32); // predictable: next dense id
    spec.faults = FaultPlan::none().with_partition(Partition::isolate(
        4 * SECOND,
        28 * SECOND,
        vec![Endpoint::Server(newcomer)],
    ));
    let split = h.leaf_for(Point::new(125.0, 125.0)).expect("in area");
    spec.events = vec![ScenarioEvent { at_step: 3, action: FaultAction::Spawn { split } }];
    spec
}

#[test]
fn join_under_partition_is_green() {
    // Seed picked so the split-off half holds records at the spawn
    // instant: the transfer is non-empty and must fight the partition.
    let run = join_under_partition(8).run();
    assert_eq!(run.alive, 24, "no registration may be lost across the join");
    assert!(run.net_counters.2 > 0, "the partition must actually drop messages");
    assert_eq!(run.stats.transfers_started, 1, "the join must start a bulk transfer");
    assert!(run.stats.transfer_retries > 0, "the partition must force re-sends");
    assert!(
        run.stats.transfer_records_in > 0 && run.stats.transfers_completed == 1,
        "the transfer must land once the partition heals: {:?}",
        run.stats
    );
}

#[test]
fn join_under_partition_is_deterministic_per_seed() {
    let a = join_under_partition(7).run();
    let b = join_under_partition(7).run();
    assert_eq!(a.trace, b.trace, "same seed must replay the identical trace");
    assert_eq!(a.net_counters, b.net_counters);
    let c = join_under_partition(8).run();
    assert_ne!(a.trace, c.trace, "a different seed must explore a different run");
}

/// **Join with the target crashing mid-transfer.** The newcomer dies
/// right after it is spawned — whatever part of the bulk transfer it
/// durably applied must come back record-for-record (the harness
/// compares on restart), the source keeps and retries the rest, and
/// nothing is lost or duplicated once the oracle speaks.
fn join_crash_mid_transfer(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "join-crash-mid-transfer".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 22,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let newcomer = ServerId(h.len() as u32);
    let split = h.leaf_for(Point::new(125.0, 125.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Spawn { split } },
        ScenarioEvent { at_step: 4, action: FaultAction::Crash(newcomer) },
        ScenarioEvent { at_step: 10, action: FaultAction::Restart(newcomer) },
    ];
    spec
}

#[test]
fn join_crash_mid_transfer_recovers_consistently() {
    let run = join_crash_mid_transfer(0xABCD).run();
    assert_eq!(run.alive, 24);
    assert!(run.blackholed > 0, "the crash must blackhole transfer retries");
}

#[test]
fn join_crash_mid_transfer_is_deterministic_per_seed() {
    assert_eq!(join_crash_mid_transfer(3).run().trace, join_crash_mid_transfer(3).run().trace);
}

/// **Leave under message loss.** A leaf drains everything to its
/// sibling and detaches while the network drops and duplicates
/// datagrams — the drain's ack can vanish, forcing idempotent
/// re-sends. The retired server must end empty, with every object
/// answerable through the absorber.
fn leave_under_loss(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "leave-under-loss".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 12.0,
        steps: 22,
        step_dt_s: 2.0,
        faults: FaultPlan::uniform(0.05, 0.05).with_reorder(0.1, 200_000),
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let leaver = h.leaf_for(Point::new(875.0, 875.0)).expect("in area");
    spec.events = vec![ScenarioEvent { at_step: 5, action: FaultAction::Retire(leaver) }];
    spec
}

#[test]
fn leave_under_loss_drains_and_stays_green() {
    let run = leave_under_loss(0x1EAF).run();
    assert_eq!(run.alive, 24, "the drain must not lose a registration");
    assert!(run.net_counters.2 > 0, "the loss plan must actually drop messages");
}

#[test]
fn leave_under_loss_is_deterministic_per_seed() {
    assert_eq!(leave_under_loss(9).run().trace, leave_under_loss(9).run().trace);
}

/// **Root failover under mixed update/query load.** The root crashes
/// for good; a designated successor takes over and rebuilds its
/// forwarding table from the children (path sync + ordinary
/// keep-alives) while updates and root-routed queries keep flowing.
/// The old root never returns — its id is retired.
fn root_failover(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "root-failover".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 24,
        step_dt_s: 2.0,
        durable: true,
        mid_chaos_queries: true,
        ..Default::default()
    };
    let root = spec.hierarchy().root();
    spec.events = vec![
        ScenarioEvent { at_step: 4, action: FaultAction::Crash(root) },
        ScenarioEvent { at_step: 8, action: FaultAction::PromoteStandby },
    ];
    spec
}

#[test]
fn root_failover_under_load_is_green() {
    let run = root_failover(0xF00D).run();
    assert_eq!(run.alive, 24, "failover must not lose a registration");
    assert!(run.blackholed > 0, "the dead root must blackhole traffic until failover");
    // The mid-chaos query probe must have seen the successor as root.
    assert!(
        run.trace.iter().any(|l| l.contains("via root 21")),
        "queries must route through the promoted root (id 21): {:?}",
        run.trace.iter().filter(|l| l.starts_with("query")).collect::<Vec<_>>()
    );
}

#[test]
fn root_failover_is_deterministic_per_seed() {
    let a = root_failover(4).run();
    let b = root_failover(4).run();
    assert_eq!(a.trace, b.trace);
    assert_ne!(a.trace, root_failover(5).run().trace);
}

/// **Non-leaf crash under mixed load** (ROADMAP's open extension): a
/// mid-level server — pure forwarding state — crashes and restarts
/// under update and query traffic; its durable forwarding records must
/// come back record-for-record.
#[test]
fn midlevel_crash_under_mixed_load_recovers() {
    let mut spec = ScenarioSpec {
        name: "midlevel-crash-mixed-load".to_string(),
        seed: 0x5110,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 20,
        step_dt_s: 2.0,
        durable: true,
        mid_chaos_queries: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let leaf = h.leaf_for(Point::new(125.0, 125.0)).expect("in area");
    let mid = h.server(leaf).parent.expect("leaf has a parent");
    spec.events = vec![
        ScenarioEvent { at_step: 5, action: FaultAction::Crash(mid) },
        ScenarioEvent { at_step: 11, action: FaultAction::Restart(mid) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 24);
    assert!(run.blackholed > 0);
}

/// **Root crash + restart under mixed load** (the non-failover twin):
/// the root's durable forwarding table replays from its WAL.
#[test]
fn root_crash_restart_under_mixed_load_recovers() {
    let mut spec = ScenarioSpec {
        name: "root-crash-mixed-load".to_string(),
        seed: 0x2007,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 15.0,
        steps: 20,
        step_dt_s: 2.0,
        durable: true,
        mid_chaos_queries: true,
        ..Default::default()
    };
    let root = spec.hierarchy().root();
    spec.events = vec![
        ScenarioEvent { at_step: 4, action: FaultAction::Crash(root) },
        ScenarioEvent { at_step: 10, action: FaultAction::Restart(root) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 24);
    assert!(run.blackholed > 0, "the dead root must blackhole traffic");
}

/// **Multi-server simultaneous failure**: a leaf and its parent crash
/// in the same instant — the whole subtree drops out — and both must
/// recover their durable records record-for-record (the harness
/// asserts the comparison on every restart).
#[test]
fn leaf_and_parent_simultaneous_crash_recovers_record_for_record() {
    let mut spec = ScenarioSpec {
        name: "leaf-and-parent-simultaneous-crash".to_string(),
        seed: 0xD0D0,
        levels: 2,
        fanout: 2,
        num_objects: 24,
        speed_mps: 12.0,
        steps: 22,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let leaf = h.leaf_for(Point::new(625.0, 625.0)).expect("in area");
    let mid = h.server(leaf).parent.expect("leaf has a parent");
    spec.events = vec![
        ScenarioEvent { at_step: 5, action: FaultAction::Crash(leaf) },
        ScenarioEvent { at_step: 5, action: FaultAction::Crash(mid) },
        ScenarioEvent { at_step: 12, action: FaultAction::Restart(mid) },
        ScenarioEvent { at_step: 13, action: FaultAction::Restart(leaf) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 24, "simultaneous failures must not lose a registration");
    assert!(run.blackholed > 0);
    // Determinism for the multi-failure case too.
    assert_eq!(run.trace, spec.run().trace);
}

/// **Power loss at a leaf agent**: the harness stores with
/// `SyncPolicy::Always`, so every acknowledged registration is fsynced
/// before the ack and even dropping the page cache loses nothing —
/// the record-for-record restart comparison must hold exactly as for
/// a process crash.
#[test]
fn power_loss_crash_keeps_every_acked_registration() {
    let mut spec = ScenarioSpec {
        name: "power-loss-leaf".to_string(),
        seed: 0x0FF,
        levels: 1,
        fanout: 2,
        num_objects: 16,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 4 * SECOND },
        steps: 12,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let victim = h.leaf_for(Point::new(100.0, 100.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::PowerLoss(victim) },
        ScenarioEvent { at_step: 7, action: FaultAction::Restart(victim) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 16, "Always-synced state must survive power loss");
}

/// **Grow then shrink**: a join followed by the newcomer leaving again
/// under a subtree partition — the tree returns to its original shape
/// and the oracle stays green through both reshapes.
#[test]
fn join_then_leave_roundtrip_under_partition() {
    let mut spec = ScenarioSpec {
        name: "join-then-leave-roundtrip".to_string(),
        seed: 0x717,
        levels: 2,
        fanout: 2,
        num_objects: 20,
        speed_mps: 12.0,
        steps: 26,
        step_dt_s: 2.0,
        durable: true,
        ..Default::default()
    };
    let h = spec.hierarchy();
    let newcomer = ServerId(h.len() as u32);
    let split = h.leaf_for(Point::new(375.0, 125.0)).expect("in area");
    let mid = h.server(split).parent.expect("leaf has a parent");
    // Cut the surrounding subtree off for a while between the two
    // reshapes, so both the join's transfer and the later drain run
    // against a recently-partitioned world.
    let mut cut = subtree_endpoints(&h, mid);
    cut.push(Endpoint::Server(newcomer));
    spec.faults =
        FaultPlan::none().with_partition(Partition::isolate(14 * SECOND, 26 * SECOND, cut));
    spec.events = vec![
        ScenarioEvent { at_step: 3, action: FaultAction::Spawn { split } },
        ScenarioEvent { at_step: 16, action: FaultAction::Retire(newcomer) },
    ];
    let run = spec.run();
    assert_eq!(run.alive, 20);
    assert!(run.net_counters.2 > 0, "the partition must actually drop messages");
}
