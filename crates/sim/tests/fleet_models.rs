//! Fleet integration: every mobility model drives a live deployment;
//! update policies change traffic as expected; the fleet stays
//! consistent with the service.

use hiloc_core::area::HierarchyBuilder;
use hiloc_core::model::{ObjectId, UpdatePolicy, SECOND};
use hiloc_core::runtime::SimDeployment;
use hiloc_geo::{Point, Rect};
use hiloc_sim::mobility::MobilityKind;
use hiloc_sim::{Fleet, FleetConfig};

fn deployment(seed: u64) -> SimDeployment {
    let h = HierarchyBuilder::grid(
        Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)),
        1,
        2,
    )
    .build()
    .unwrap();
    SimDeployment::new(h, Default::default(), seed)
}

#[test]
fn every_mobility_model_runs_against_the_service() {
    for (kind, expect_handovers) in [
        (MobilityKind::RandomWaypoint, true),
        (MobilityKind::Manhattan { spacing_m: 100.0 }, true),
        (MobilityKind::GaussMarkov { alpha: 0.7 }, true),
        (MobilityKind::Stationary, false),
    ] {
        let mut ls = deployment(1);
        let cfg = FleetConfig {
            num_objects: 30,
            speed_mps: 20.0, // fast, to force leaf crossings quickly
            mobility: kind,
            policy: UpdatePolicy::Distance { threshold_m: 10.0 },
            seed: 42,
            ..Default::default()
        };
        let mut fleet = Fleet::register(cfg, &mut ls).expect("fleet registers");
        let mut handovers = 0;
        for _ in 0..60 {
            let s = fleet.step(&mut ls, 2.0);
            handovers += s.handovers;
            assert_eq!(s.deregistered, 0, "{kind:?}: objects must stay inside");
        }
        assert_eq!(fleet.alive_count(), 30, "{kind:?}");
        if expect_handovers {
            assert!(handovers > 0, "{kind:?}: fast movement must cross leaves");
        } else {
            assert_eq!(handovers, 0, "{kind:?}");
        }
        // Every object queryable at its current agent, position matches
        // the fleet's ground truth within the update threshold.
        for i in 0..fleet.len() {
            let ld = ls.pos_query(fleet.agent(i), ObjectId(i as u64)).expect("tracked");
            let truth = fleet.position(i);
            assert!(
                ld.pos.distance(truth) <= 10.0 + 1e-6,
                "{kind:?}: object {i} drifted {} m",
                ld.pos.distance(truth)
            );
        }
    }
}

#[test]
fn update_policies_change_transmission_volume() {
    let run = |policy: UpdatePolicy| {
        let mut ls = deployment(2);
        let cfg = FleetConfig {
            num_objects: 20,
            speed_mps: 5.0,
            mobility: MobilityKind::RandomWaypoint,
            policy,
            seed: 7,
            ..Default::default()
        };
        let mut fleet = Fleet::register(cfg, &mut ls).unwrap();
        let mut updates = 0;
        for _ in 0..120 {
            updates += fleet.step(&mut ls, 1.0).updates_sent;
        }
        updates
    };
    let tight = run(UpdatePolicy::Distance { threshold_m: 5.0 });
    let loose = run(UpdatePolicy::Distance { threshold_m: 50.0 });
    assert!(
        tight > 2 * loose,
        "tight threshold {tight} must send far more than loose {loose}"
    );
    let periodic = run(UpdatePolicy::Periodic { period_us: 10 * SECOND });
    // 120 s at one report per 10 s per object ≈ 12 × 20 = 240.
    assert!((200..280).contains(&(periodic as i64)), "periodic sent {periodic}");
}

#[test]
fn stationary_fleet_sends_no_updates_and_survives_soft_state() {
    // Stationary objects never exceed the distance threshold, so the
    // soft-state TTL would expire them: this is exactly the scenario
    // where a periodic policy is required. Verify both halves.
    let h = HierarchyBuilder::grid(
        Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)),
        1,
        2,
    )
    .build()
    .unwrap();
    let opts = hiloc_core::node::ServerOptions {
        sighting_ttl_us: 30 * SECOND,
        ..Default::default()
    };
    let mut ls = SimDeployment::new(h, opts, 3);
    let cfg = FleetConfig {
        num_objects: 10,
        mobility: MobilityKind::Stationary,
        policy: UpdatePolicy::Periodic { period_us: 10 * SECOND },
        seed: 9,
        ..Default::default()
    };
    let mut fleet = Fleet::register(cfg, &mut ls).unwrap();
    let mut updates = 0;
    for _ in 0..60 {
        updates += fleet.step(&mut ls, 1.0).updates_sent;
    }
    assert!(updates >= 50, "periodic keep-alives must flow, got {updates}");
    // All objects still registered (keep-alives refreshed the TTL).
    for i in 0..fleet.len() {
        assert!(ls.pos_query(fleet.agent(i), ObjectId(i as u64)).is_ok());
    }
}
