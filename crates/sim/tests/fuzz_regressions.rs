//! The fuzzer's trophy cabinet: every bug the generative scenario
//! fuzzer found during its first deployment, committed as the shrunk
//! reproducer it printed. Each line replays the exact scenario
//! (`hiloc_sim::fuzz::replay_dsl` panics with the full oracle report
//! on regression), so a once-found bug stays found forever — and runs
//! deterministically in a few hundred milliseconds instead of a fuzz
//! campaign.
//!
//! When the fuzzer fails, it prints one `replay_dsl("…")` line; paste
//! it here (with a short note on the root cause) after fixing the bug.

use hiloc_sim::fuzz::replay_dsl;

/// A 1-verb timeline: `Retire` under message loss. The absorber's
/// `CreatePath` was dropped, leaving the parent's forwarding record
/// pointing at the drained leaf; the agent lookup bounced
/// parent → retired-leaf and the bounce guard answered
/// `OutOfServiceArea`, deregistering a live object. Fixed by staying
/// silent on the stale downward bounce (the keep-alive soft state
/// re-asserts the true path within one refresh period).
#[test]
fn retire_under_loss_must_not_deregister_via_stale_lookup_bounce() {
    replay_dsl(
        "seed=9194727748050019817 levels=1 fanout=2 objects=12 speed=7.846743528053721 \
         steps=7 dt=2 mobility=gauss:0.5548785757119858 policy=dist:14.966169950241854 \
         queries=0 caches=off drop=0.08837711879752685 ev=5:retire:4",
    );
}

/// Crash/restart/retire churn with the §6.5 caches on: a leaf that
/// crashed holding an object recovered the visitor record from its WAL
/// but not the (volatile) sighting, while the object handed over
/// elsewhere. The sighting-less zombie record never expired and its
/// keep-alive out-competed the true agent's path at the root, so
/// settled queries dead-ended in a probe answer. Fixed by not
/// refreshing a sighting-less record's epoch (the true agent's
/// keep-alive then always wins), probing its registrant each period,
/// and expiring it one sighting TTL after its last epoch.
#[test]
fn recovered_sighting_less_record_must_not_outcompete_the_true_agent() {
    replay_dsl(
        "seed=18332166918490512748 levels=2 fanout=2 objects=9 speed=9.64462775734929 \
         steps=15 dt=2 mobility=manhattan:86.3806180405785 policy=dist:15.4191740667678 \
         queries=1 caches=on:100 drop=0.04749016972082187 dup=0.03317267406271889 \
         part=9433284-21377213:12 ev=2:crash:7 ev=3:retire:17 ev=5:restart:7 ev=5:crash:14 \
         ev=6:crash:13 ev=8:restart:13 ev=9:restart:14",
    );
}

/// A leaf retired while the root was down, then the root failed over:
/// the retired straggler's parent pointer still named the dead old
/// root, so its agent-lookup healing path black-holed forever and one
/// object's updates could never be acknowledged again. Fixed by
/// repointing every server (retired ones included) at the successor in
/// `fail_over_root`.
#[test]
fn retired_straggler_must_be_reparented_by_root_failover() {
    replay_dsl(
        "seed=10708086180188519127 levels=1 fanout=2 objects=12 speed=19.37619858073283 \
         steps=10 dt=2 mobility=waypoint policy=dist:14.424641022252153 queries=1 caches=off \
         drop=0.022528638720660445 reorder=0.07372160851547203:107811 \
         spike=11272267-16267507:235328 ev=3:spawn:1 ev=4:crash:0 ev=7:retire:2 ev=8:promote",
    );
}

/// An agent lookup climbed to a freshly promoted root whose
/// forwarding table was still warming (its pathSync answers were
/// lost), and the empty root answered `OutOfServiceArea` for a live
/// object. Originally fixed by a wall-clock grace window; now the
/// cold path suspends the verdict exactly while its chunked
/// `pathSync` pulls are outstanding (retried until every child
/// answers), and the warm path makes the window disappear entirely:
/// with replication on, promotion is O(1) adoption of the standby's
/// streamed table — the same timeline then runs **zero** pathSyncs.
#[test]
fn promoted_root_must_not_deregister_while_its_table_warms() {
    const TIMELINE: &str =
        "seed=3062123152406860345 levels=1 fanout=2 objects=14 speed=9.156407435266871 \
         steps=8 dt=2 mobility=waypoint policy=dist:8.523508039963193 queries=1 caches=on:100 \
         drop=0.07567045287144544 ev=2:powerloss:3 ev=3:restart:3 ev=3:spawn:1 ev=4:crash:0 \
         ev=6:promote";
    // Cold path: the successor rebuilds via pathSync behind the
    // lookup barrier, and no object is lost meanwhile.
    let cold = replay_dsl(TIMELINE);
    assert!(cold.stats.path_syncs > 0, "cold promotion must rebuild via pathSync: {:?}", cold.stats);
    // Warm path — the O(1)-promotion invariant: same timeline with a
    // standby streaming the root's table; adoption needs no rebuild.
    let warm = replay_dsl(&format!("{TIMELINE} repl=1"));
    assert_eq!(
        warm.stats.path_syncs, 0,
        "a warm promotion must adopt the streamed table, not rebuild: {:?}",
        warm.stats
    );
    assert!(warm.stats.deltas_sent > 0, "the standby stream must have run: {:?}", warm.stats);
}

/// The dual of the zombie case: after a crash/restart/retire chain
/// under partitions, the *absorber's* sighting-less record was the
/// only copy — an earlier fix stopped such records from asserting
/// their path at all, so lookups could never reach it, it expired as a
/// "zombie", and the object was orphaned. Fixed by asserting
/// sighting-less paths with their *old* (un-refreshed) epoch: a
/// competing true agent always outbids them, but a sole copy stays
/// routable until restored or genuinely dead.
#[test]
fn sole_sighting_less_record_must_stay_routable_until_restored() {
    replay_dsl(
        "seed=11286137664104225144 levels=1 fanout=2 objects=14 speed=18.118898372173447 \
         steps=8 dt=2 mobility=waypoint policy=dist:11.155473902769042 queries=0 \
         caches=on:100 reorder=0.0630115597787939:105324 part=6571953-11860631:0+4 \
         part=10398011-18673247:2+1 ev=1:crash:2 ev=2:restart:2 ev=6:retire:2",
    );
}

/// A 46-second root outage: an object kept reporting every 5 s, but
/// every report needed a handover through the dead root, and in-area
/// sighting refreshes never happened — soft-state expiry deregistered
/// an actively-reporting object. Fixed by refreshing the stored
/// sighting's TTL on *out-of-area* updates too: the old agent stays
/// responsible (and its record alive) while handovers are failing.
#[test]
fn actively_reporting_object_must_survive_a_long_root_outage() {
    replay_dsl(
        "seed=12278733189936548146 levels=1 fanout=2 objects=14 speed=16.293990734322534 \
         steps=15 dt=2 mobility=waypoint policy=period:5000000 queries=1 caches=on:100 \
         drop=0.07834650278935469 part=12262584-23354924:0 ev=4:crash:0 ev=14:promote",
    );
}

/// The mutation-check reproducer (shrunk from a generated 6-verb
/// timeline when the area-cache fallback was artificially disabled
/// during development): mid-chaos range queries teach the root all
/// leaf areas, then a last-step `Spawn` makes the cache stale — the
/// settled whole-area range query scatters directly to the cached
/// leaves, misses the newcomer, and must flush + retry through the
/// hierarchy instead of answering incomplete.
#[test]
fn stale_area_cache_scatter_must_fall_back_to_the_hierarchy() {
    replay_dsl(
        "seed=1306086411180131317 levels=2 fanout=2 objects=2 speed=14.541653769546976 \
         steps=16 dt=2 mobility=waypoint policy=period:5000000 queries=1 caches=on:100 \
         ev=15:spawn:8",
    );
}

/// Same class, with churn on both sides: a `PowerLoss`/restart pair
/// plus a post-learning `Spawn` of the same leaf under message loss
/// (another shrunk mutation-check find, kept for its different
/// interleaving).
#[test]
fn stale_area_cache_after_powerloss_and_spawn_heals() {
    replay_dsl(
        "seed=8709371129873644185 levels=1 fanout=2 objects=3 speed=18.142247921692203 \
         steps=11 dt=2 mobility=waypoint policy=dist:8.279417934188306 queries=1 \
         caches=on:100 drop=0.09098861116735472 ev=5:powerloss:1 ev=8:spawn:1 ev=9:restart:1",
    );
}

/// A standby must never apply its own soft-state expiry: leaf 3
/// crashed at ~5s and its WAL-recovered records re-asserted their
/// paths at their *old* epoch (by design — a true agent's keep-alive
/// must outbid a zombie), so the root's record for o0 legitimately
/// kept its 0ms registration stamp. The standby mirrored it, then its
/// local stale-path sweep expired it at `stamp + path_ttl` — while
/// the source's acked watermark still durably claimed it — and the
/// promotion at 50s lost a durably-acked record. Fixed by suspending
/// the non-leaf stale-path sweep on servers in standby mode (only
/// streamed removals delete mirrored records); promotion re-arms the
/// sweep one refresh period later so keep-alives can re-stamp the
/// adopted table first.
#[test]
fn standby_must_not_locally_expire_mirrored_records_before_promotion() {
    replay_dsl(
        "seed=3904684955054830002 levels=1 fanout=2 objects=7 speed=16.85606318094014 \
         steps=13 dt=2 mobility=waypoint policy=dist:11.457241684437188 queries=1 mix=0 \
         caches=off repl=1 part=17689530-29876606:0+4 ev=1:crash:3 ev=2:retire:1 \
         ev=3:spawn:4 ev=5:restart:3 ev=7:crash:0 ev=11:promote",
    );
}

/// Same class at depth 2 with caches, drop, partition and a latency
/// spike (the campaign's other shrunk find, kept for its different
/// interleaving): the mirrored stamps went stale behind a partition
/// and the standby's sweep raced the promotion.
#[test]
fn standby_expiry_race_with_partition_and_spike_stays_green() {
    replay_dsl(
        "seed=14127374373618269239 levels=2 fanout=2 objects=14 speed=13.780347195425687 \
         steps=13 dt=2 mobility=gauss:0.39499571547369966 policy=dist:8.152332902497918 \
         queries=0 mix=0 caches=on:100 repl=1 drop=0.07649529401409451 \
         part=13578216-24493370:6+13 spike=14622751-22121400:76024 ev=8:crash:0 \
         ev=12:promote",
    );
}
