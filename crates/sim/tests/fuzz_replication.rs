//! The replication chaos gate: fixed-seed batches of generated
//! scenarios with the replication subsystem deployed — warm standbys
//! streaming forwarding-table deltas, the k=2 leaf replica rings, and
//! a generator biased at the new verbs (root/standby crashes,
//! `PromoteStandby`, partitions that let replicas diverge). Every run
//! is oracle-checked, including the promotion contract: a warm
//! promotion must not lose any record the stream durably acked.
//!
//! Like the base gate, the batches are bit-for-bit deterministic and
//! a failure shrinks to one `replay_dsl` line. The full acceptance
//! campaign (≥ 1000 scenarios, caches off and on) is the same code:
//! `HILOC_FUZZ_CASES=500 cargo test -p hiloc-sim --test
//! fuzz_replication --release`.

use hiloc_sim::fuzz::{cases_from_env, fuzz_batch_with, generate_with, parse_dsl, CacheMode};

/// Fixed CI base seeds for the replication gates.
const BASE_SEED_OFF: u64 = 0x52_45_50_4C_00_01;
const BASE_SEED_ON: u64 = 0x52_45_50_4C_CA_C4;

#[test]
fn replication_fuzz_caches_off_is_oracle_green() {
    let cases = cases_from_env(32);
    let stats = fuzz_batch_with(BASE_SEED_OFF, cases, CacheMode::Off, true);
    assert_eq!(stats.cases, cases);
    // The bias must actually land on the new machinery: crashes under
    // active delta streams, and warm/cold promotions over them.
    assert!(stats.crashes > 0, "no scenario crashed a server: {stats:?}");
    assert!(stats.promotions > 0, "no scenario promoted over the root: {stats:?}");
    assert!(stats.events > 0 && stats.reshapes > 0, "{stats:?}");
}

#[test]
fn replication_fuzz_caches_on_is_oracle_green_under_bounded_staleness() {
    let cases = cases_from_env(32);
    let stats = fuzz_batch_with(BASE_SEED_ON, cases, CacheMode::On { max_aged_acc_m: 100.0 }, true);
    assert_eq!(stats.cases, cases);
    assert!(stats.crashes > 0, "no scenario crashed a server: {stats:?}");
    assert!(stats.promotions > 0, "no scenario promoted over the root: {stats:?}");
    // With caches on, replica shadow copies may answer position
    // queries within the staleness bound — the oracle holds them to
    // the same bounded-staleness contract as the §6.5 caches.
    assert!(stats.cache_answers > 0, "no cache ever answered: {stats:?}");
}

#[test]
fn replicated_timelines_are_valid_and_round_trip_through_the_dsl() {
    for seed in 0..200u64 {
        let mode = if seed % 2 == 0 {
            CacheMode::Off
        } else {
            CacheMode::On { max_aged_acc_m: 50.0 + seed as f64 }
        };
        let spec = generate_with(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), mode, true);
        assert!(spec.replication);
        assert!(spec.valid(), "invalid replicated timeline for seed {seed}: {spec:?}");
        let parsed = parse_dsl(&spec.to_dsl())
            .unwrap_or_else(|e| panic!("DSL round-trip failed for seed {seed}: {e}"));
        assert_eq!(parsed, spec, "DSL round-trip must be exact (seed {seed})");
    }
}

#[test]
fn standby_slots_shift_spawned_ids_in_the_model() {
    // levels=1 fanout=2: servers 0..=4, root standby reserved at 5 —
    // so a spawn allocates 6, and a timeline crashing "the spawned
    // server" must mean id 6, not 5 (which is the standby, crashable
    // in its own right).
    let warm = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=10 repl=1 \
         ev=2:spawn:1 ev=3:crash:6 ev=5:restart:6",
    )
    .unwrap();
    assert!(warm.valid(), "spawned id 6 must exist with the standby slot at 5");
    // The standby itself is a legal crash target (mid-delta-stream
    // crash), even though the hierarchy marks its slot retired.
    let standby_crash = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=10 repl=1 ev=2:crash:5 ev=4:restart:5",
    )
    .unwrap();
    assert!(standby_crash.valid(), "a live standby must be crashable");
    // Without replication the same ids are out of range / not leaves.
    let cold = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=10 ev=2:crash:5 ev=4:restart:5",
    )
    .unwrap();
    assert!(!cold.valid(), "id 5 must not exist without the standby reservation");
    // Crashing the root and its standby forces the cold fallback —
    // still a closable, valid timeline (the old root stays retired).
    let both_dead = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=10 repl=1 \
         ev=2:crash:5 ev=3:crash:0 ev=5:promote",
    )
    .unwrap();
    assert!(both_dead.valid(), "dead standby + promote must fall back cold");
}
