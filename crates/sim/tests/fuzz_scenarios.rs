//! The CI fuzz gate: a fixed-seed batch of generated chaos scenarios,
//! run with the §6.5 caches off and on. Every run is oracle-checked;
//! a failure shrinks to a minimal reproducer and panics with a single
//! `replay_dsl` line (paste it into `fuzz_regressions.rs` once fixed).
//!
//! The batch is bit-for-bit deterministic — fixed base seeds, and the
//! generator draws everything from a seeded stream — so CI time is
//! bounded and a red gate replays locally without guesswork. Longer
//! exploratory runs: `HILOC_FUZZ_CASES=2000 cargo test -p hiloc-sim
//! --test fuzz_scenarios`.

use hiloc_sim::fuzz::{cases_from_env, fuzz_batch, generate, parse_dsl, CacheMode};

/// Fixed CI base seeds; together the two gates run ≥ 64 scenarios.
const BASE_SEED_OFF: u64 = 0x48_49_4C_4F_C0_01;
const BASE_SEED_ON: u64 = 0x48_49_4C_4F_CA_C4;

#[test]
fn fuzz_batch_caches_off_is_oracle_green() {
    let cases = cases_from_env(32);
    let stats = fuzz_batch(BASE_SEED_OFF, cases, CacheMode::Off);
    assert_eq!(stats.cases, cases);
    // The batch must exercise the machinery, not idle: a fixed seed
    // guarantees these hold deterministically.
    assert!(stats.events > 0, "no timeline verbs generated: {stats:?}");
    assert!(stats.reshapes > 0, "no scenario reshaped the tree: {stats:?}");
    assert!(stats.crashes > 0, "no scenario crashed a server: {stats:?}");
    assert!(stats.transfers_completed > 0, "no bulk transfer ran: {stats:?}");
    assert!(stats.checkpoints > 0, "no scenario checkpointed a server: {stats:?}");
    assert!(
        stats.checkpoint_cuts > 0,
        "no power loss landed across a checkpoint boundary: {stats:?}"
    );
    assert_eq!(stats.cache_answers, 0, "caches off must serve nothing");
}

#[test]
fn fuzz_batch_caches_on_is_oracle_green_under_bounded_staleness() {
    let cases = cases_from_env(32);
    let stats = fuzz_batch(BASE_SEED_ON, cases, CacheMode::On { max_aged_acc_m: 100.0 });
    assert_eq!(stats.cases, cases);
    assert!(stats.events > 0 && stats.reshapes > 0 && stats.crashes > 0, "{stats:?}");
    // With caches on, the settled double-queries must actually be
    // served from the §6.5 caches somewhere in the batch — otherwise
    // the bounded-staleness oracle verified nothing.
    assert!(stats.cache_answers > 0, "no cache ever answered: {stats:?}");
}

#[test]
fn generator_is_deterministic_per_seed() {
    let a = generate(0xDEAD_BEEF, CacheMode::Off);
    let b = generate(0xDEAD_BEEF, CacheMode::Off);
    assert_eq!(a, b, "same seed must generate the identical spec");
    assert_eq!(a.to_dsl(), b.to_dsl());
    let c = generate(0xDEAD_BEE0, CacheMode::Off);
    assert_ne!(a.to_dsl(), c.to_dsl(), "different seeds must explore different scenarios");
}

#[test]
fn generated_timelines_are_valid_and_round_trip_through_the_dsl() {
    for seed in 0..200u64 {
        let mode = if seed % 2 == 0 {
            CacheMode::Off
        } else {
            CacheMode::On { max_aged_acc_m: 50.0 + seed as f64 }
        };
        let spec = generate(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), mode);
        assert!(spec.valid(), "generator emitted an invalid timeline for seed {seed}: {spec:?}");
        let parsed = parse_dsl(&spec.to_dsl())
            .unwrap_or_else(|e| panic!("DSL round-trip failed for seed {seed}: {e}"));
        assert_eq!(parsed, spec, "DSL round-trip must be exact (seed {seed})");
    }
}

/// A hand-written checkpoint-boundary cut: the leaf checkpoints, then
/// loses power in the same step — the manifest may be committed while
/// the WAL truncation is lost, so recovery must arbitrate the storage
/// generations instead of replaying a stale log over the snapshot.
/// The fuzzer draws this pairing itself (see the gate assertions
/// above); this pins one exact instance deterministically.
#[test]
fn power_loss_across_a_checkpoint_boundary_recovers_cleanly() {
    let spec = parse_dsl(
        "seed=7 levels=1 fanout=2 objects=8 steps=10 queries=1 caches=off \
         ev=3:checkpoint:1 ev=3:powerloss:1 ev=6:restart:1 ev=7:checkpoint:2 \
         ev=7:powerloss:2 ev=9:restart:2",
    )
    .unwrap();
    assert!(spec.valid(), "checkpoint+powerloss timeline must be constructible");
    let run = hiloc_sim::fuzz::run_captured(&spec)
        .unwrap_or_else(|report| panic!("checkpoint-boundary cut went red:\n{report}"));
    assert!(run.alive > 0, "no object survived the run");
}

#[test]
fn dsl_rejects_malformed_input() {
    assert!(parse_dsl("seed=notanumber").is_err());
    assert!(parse_dsl("frobnicate=1").is_err());
    assert!(parse_dsl("ev=3:explode:7").is_err());
    assert!(parse_dsl("part=12-"). is_err());
    assert!(parse_dsl("mobility=teleport").is_err());
}

#[test]
fn invalid_timelines_are_rejected_by_the_model() {
    // Crash without restart: unclosable.
    let s = parse_dsl("seed=1 levels=1 fanout=2 objects=4 steps=6 ev=2:crash:1").unwrap();
    assert!(!s.valid());
    // Restart of a server that never crashed.
    let s = parse_dsl("seed=1 levels=1 fanout=2 objects=4 steps=6 ev=2:restart:1").unwrap();
    assert!(!s.valid());
    // Promote over a live root.
    let s = parse_dsl("seed=1 levels=1 fanout=2 objects=4 steps=6 ev=2:promote").unwrap();
    assert!(!s.valid());
    // Retire of a root-leaf's last mergeable sibling chain (root has
    // no parent — retiring the root itself is never legal).
    let s = parse_dsl("seed=1 levels=1 fanout=2 objects=4 steps=6 ev=2:retire:0").unwrap();
    assert!(!s.valid());
    // Retire of a crashed (draining-impossible) server.
    let s = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=8 ev=2:crash:1 ev=3:retire:1 ev=5:restart:1",
    )
    .unwrap();
    assert!(!s.valid());
    // Checkpoint of a crashed server: nothing to flush until restart.
    let s = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=8 ev=2:crash:1 ev=3:checkpoint:1 \
         ev=5:restart:1",
    )
    .unwrap();
    assert!(!s.valid());
    // Event scheduled at/after the last step.
    let s = parse_dsl("seed=1 levels=1 fanout=2 objects=4 steps=6 ev=6:spawn:1").unwrap();
    assert!(!s.valid());
    // The same timeline, properly closed, is fine.
    let s = parse_dsl(
        "seed=1 levels=1 fanout=2 objects=4 steps=8 ev=2:crash:1 ev=5:restart:1",
    )
    .unwrap();
    assert!(s.valid());
}
