//! Chaos-proving the macro-benchmark workload shape: the same
//! Zipf-skewed pos/range/NN mix the million-object bench drives
//! (`hiloc_bench::macro_bench`), scaled down to 10k objects on a
//! 2-level hierarchy, pushed through a leaf crash/restart and held to
//! the full scenario oracle. If the bench harness's query mix can
//! wedge a server or leak an object, this catches it in tier-1 — not
//! in a minutes-long release-mode bench run.

use hiloc_geo::Point;
use hiloc_sim::scenario::{FaultAction, ScenarioEvent, ScenarioSpec};
use hiloc_sim::Samples;

/// The scaled-down city: 10k objects over 16 leaves, macro query mix
/// every step, one leaf crashing mid-run and coming back.
fn city(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "macro-mix-leaf-crash".to_string(),
        seed,
        levels: 2,
        fanout: 2,
        num_objects: 10_000,
        steps: 8,
        step_dt_s: 2.0,
        durable: true,
        mid_chaos_queries: true,
        macro_mix: true,
        // At 10k objects a step spans virtual *minutes* (every blocking
        // op costs an RTT), so stretch the soft-state windows or the
        // crashed leaf's sightings expire before the scripted restart.
        time_scale: 4,
        ..Default::default()
    };
    let h = spec.hierarchy();
    // The Zipf leaf draw favors low server ids, so crash a hot corner
    // leaf: the mix keeps querying *into* the hole while it's down.
    let victim = h.leaf_for(Point::new(1.0, 1.0)).expect("in area");
    spec.events = vec![
        ScenarioEvent { at_step: 2, action: FaultAction::Crash(victim) },
        ScenarioEvent { at_step: 5, action: FaultAction::Restart(victim) },
    ];
    spec
}

#[test]
fn macro_mix_survives_leaf_crash_with_sane_stats() {
    let run = city(0xC17F).run();

    // The oracle inside `run()` is the correctness verdict; on top of
    // it, nobody may be lost and the crash must have bitten.
    assert_eq!(run.alive, 10_000, "no object may be falsely deregistered");
    assert!(run.blackholed > 0, "the crash must actually blackhole traffic");
    assert!(
        run.trace.iter().any(|l| l.contains("macro step")),
        "the macro mix must have driven the queries: {:?}",
        run.trace.last()
    );

    // One latency sample per query round, and a summary that is
    // finite, positive and monotone across the percentile ladder even
    // though some rounds hit a dead leaf and timed out.
    assert_eq!(run.query_latency_us.len(), 8, "one sample per step");
    let mut samples = Samples::new();
    for us in &run.query_latency_us {
        samples.record(*us as f64);
    }
    let s = samples.summary();
    assert_eq!(s.count, 8);
    for v in [s.min, s.mean, s.p50, s.p90, s.p99, s.max] {
        assert!(v.is_finite() && v > 0.0, "stat must be a positive finite number: {s:?}");
    }
    assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max, "{s:?}");
    assert!(s.min <= s.mean && s.mean <= s.max, "{s:?}");
}
