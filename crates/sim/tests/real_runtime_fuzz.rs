//! Fixed-seed chaos gate for the **real** runtimes, plus the
//! simulator-parity check.
//!
//! Unlike the virtual-time fuzz suites, these run the sharded threaded
//! and UDP engines on the wall clock, so the seed set is small and
//! fixed; `hiloc_sim::real::replay_real_dsl` replays any failure from
//! the one-line DSL in the panic message.

use hiloc_sim::real::{
    generate_real, parse_real_dsl, run_plan, RealPlan, RealVerb, SimHarness, ThreadedHarness,
    UdpHarness,
};

fn has_crash(p: &RealPlan) -> bool {
    p.verbs.iter().any(|v| matches!(v, RealVerb::Crash(_)))
}
fn has_partition(p: &RealPlan) -> bool {
    p.verbs.iter().any(|v| matches!(v, RealVerb::Partition { .. }))
}
fn has_burst(p: &RealPlan) -> bool {
    p.verbs.iter().any(|v| matches!(v, RealVerb::Burst { .. }))
}

/// Fixed seeds over the threaded runtime: between them the plans must
/// cover crash+restart and partition+heal, and every run must end
/// oracle-green.
#[test]
fn threaded_chaos_fixed_seeds() {
    let seeds: Vec<u64> = {
        let crash = (0..200).find(|&s| has_crash(&generate_real(s, false))).expect("crash seed");
        let part = (0..200)
            .find(|&s| has_partition(&generate_real(s, false)))
            .expect("partition seed");
        vec![crash, part]
    };
    let mut crashes = 0;
    let mut partitions = 0;
    for seed in seeds {
        let plan = generate_real(seed, false);
        let run = run_plan(&mut ThreadedHarness::new(&plan), &plan);
        crashes += run.crashes;
        partitions += run.partitions;
        assert_eq!(run.final_positions.len() as u32, plan.num_objects);
    }
    assert!(crashes > 0, "the seed set must exercise crash+restart");
    assert!(partitions > 0, "the seed set must exercise partition+heal");
}

/// An overload plan (tiny inbox + fire-and-forget bursts) must make
/// the runtime shed — reachably, and without failing the oracle:
/// shedding loses only unacknowledged work.
#[test]
fn threaded_overload_seed_sheds() {
    let seed = (0..200)
        .find(|&s| {
            let p = generate_real(s, true);
            has_burst(&p) && p.inbox_cap <= 4
        })
        .expect("overload seed");
    let plan = generate_real(seed, true);
    let run = run_plan(&mut ThreadedHarness::new(&plan), &plan);
    assert!(run.burst_delivered > 0, "bursts must land some envelopes");
    assert!(run.shed > 0, "a tiny inbox under burst load must shed");
}

/// One fixed seed over real UDP sockets: same verbs, same oracle.
#[test]
fn udp_chaos_fixed_seed() {
    let seed = (0..200)
        .find(|&s| {
            let p = generate_real(s, false);
            has_crash(&p) && has_partition(&p)
        })
        .expect("udp seed");
    let plan = generate_real(seed, false);
    let run = run_plan(&mut UdpHarness::bind(&plan), &plan);
    assert!(run.crashes > 0 && run.partitions > 0);
    assert_eq!(run.final_positions.len() as u32, plan.num_objects);
}

/// Satellite: same-seed parity. A fault-free plan executed over the
/// threaded runtime (ChannelNet) and over the deterministic simulator
/// must produce the same record, record for record — same acked
/// count, same final position per object, bit for bit.
#[test]
fn fault_free_plan_matches_sim_record_for_record() {
    let plan = RealPlan {
        seed: 0x1CDC_2002,
        num_objects: 6,
        shards: 2,
        inbox_cap: 4096,
        verbs: vec![RealVerb::Load { rounds: 4 }],
    };
    let real = run_plan(&mut ThreadedHarness::new(&plan), &plan);
    let sim = run_plan(&mut SimHarness::new(&plan), &plan);
    assert_eq!(real.acked, sim.acked, "every fault-free update is acked on both");
    assert_eq!(real.unacked, 0);
    assert_eq!(sim.unacked, 0);
    assert_eq!(
        real.final_positions, sim.final_positions,
        "threaded runtime and simulator disagree on the end state"
    );
}

/// The reproducer DSL round-trips exactly.
#[test]
fn real_dsl_round_trips() {
    for seed in [0u64, 1, 17, 42] {
        for overload in [false, true] {
            let plan = generate_real(seed, overload);
            let (parsed, runtime) =
                parse_real_dsl(&format!("{} runtime=udp", plan.to_dsl())).expect("round trip");
            assert_eq!(parsed, plan);
            assert_eq!(runtime, "udp");
        }
    }
}
