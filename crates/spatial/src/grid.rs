//! Uniform grid index — a simple baseline.

use crate::{candidate_cmp, Entry, ObjectKey, SpatialIndex};
use hiloc_geo::{Point, Rect};
// lint:allow(determinism) import for the lookup-only maps annotated below
use std::collections::HashMap;

/// A uniform grid over the plane with fixed-size square cells.
///
/// Cells are addressed by integer coordinates `floor(p / cell_size)`, so
/// the domain is unbounded. Serves as the simplest non-trivial baseline
/// in the spatial-index ablation: O(1) updates, but query cost grows
/// with the number of touched cells.
///
/// # Example
///
/// ```
/// use hiloc_geo::{Point, Rect};
/// use hiloc_spatial::{GridIndex, SpatialIndex};
///
/// let mut g = GridIndex::new(50.0); // 50 m cells
/// g.insert(1, Point::new(10.0, 10.0));
/// g.insert(2, Point::new(500.0, 500.0));
/// let mut hits = Vec::new();
/// g.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
///              &mut |e| hits.push(e.key));
/// assert_eq!(hits, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    // lint:allow(determinism) addressed by computed cell coords; ranged scans and max-reductions only, order never observable
    cells: HashMap<(i64, i64), Vec<Entry>>,
    // lint:allow(determinism) O(1) lookups on the hot update path; for_each snapshots and sorts before emitting
    by_key: HashMap<ObjectKey, Point>,
}

impl GridIndex {
    /// Creates a grid with the given cell size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        // lint:allow(determinism) constructors for the annotated lookup-only maps
        GridIndex { cell_size, cells: HashMap::new(), by_key: HashMap::new() }
    }

    /// The configured cell size in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    fn remove_from_cell(&mut self, key: ObjectKey, pos: Point) {
        let cell = self.cell_of(pos);
        if let Some(v) = self.cells.get_mut(&cell) {
            v.retain(|e| e.key != key);
            if v.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }
}

impl SpatialIndex for GridIndex {
    fn insert(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let old = self.by_key.insert(key, pos);
        if let Some(old_pos) = old {
            self.remove_from_cell(key, old_pos);
        }
        self.cells.entry(self.cell_of(pos)).or_default().push(Entry::new(key, pos));
        old
    }

    // lint:hot_path
    fn update(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let Some(old_pos) = self.by_key.insert(key, pos) else {
            // New key: one cell push, by_key already written.
            self.cells.entry(self.cell_of(pos)).or_default().push(Entry::new(key, pos));
            return None;
        };
        let old_cell = self.cell_of(old_pos);
        let new_cell = self.cell_of(pos);
        if old_cell == new_cell {
            // In-cell move: rewrite the entry where it sits.
            let entries = self.cells.get_mut(&old_cell).expect("occupied cell exists");
            let e = entries.iter_mut().find(|e| e.key == key).expect("entry in its cell");
            e.pos = pos;
        } else {
            self.remove_from_cell(key, old_pos);
            self.cells.entry(new_cell).or_default().push(Entry::new(key, pos));
        }
        Some(old_pos)
    }

    fn remove(&mut self, key: ObjectKey) -> Option<Point> {
        let pos = self.by_key.remove(&key)?;
        self.remove_from_cell(key, pos);
        Some(pos)
    }

    fn get(&self, key: ObjectKey) -> Option<Point> {
        self.by_key.get(&key).copied()
    }

    fn len(&self) -> usize {
        self.by_key.len()
    }

    fn clear(&mut self) {
        self.cells.clear();
        self.by_key.clear();
    }

    fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        let (cx0, cy0) = self.cell_of(rect.min());
        let (cx1, cy1) = self.cell_of(rect.max());
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(entries) = self.cells.get(&(cx, cy)) {
                    for e in entries {
                        if rect.contains(e.pos) {
                            sink(*e);
                        }
                    }
                }
            }
        }
    }

    fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Option<(Entry, f64)> {
        // Expanding ring search over cell shells around p's cell. A hit
        // in shell `r` is only final once the shell's minimum possible
        // distance exceeds the best found so far.
        if self.by_key.is_empty() {
            return None;
        }
        let (cx, cy) = self.cell_of(p);
        let mut best: Option<(Entry, f64)> = None;
        let mut radius: i64 = 0;
        loop {
            let ring_min_dist = if radius == 0 {
                0.0
            } else {
                (radius - 1) as f64 * self.cell_size
            };
            if let Some((_, d)) = &best {
                if ring_min_dist > *d {
                    break;
                }
            }
            let mut visited_any = false;
            for (dx, dy) in ring_cells(radius) {
                let cell = (cx + dx, cy + dy);
                if let Some(entries) = self.cells.get(&cell) {
                    visited_any = true;
                    for e in entries {
                        if !filter(e.key) {
                            continue;
                        }
                        let cand = (*e, p.distance(e.pos));
                        match &best {
                            Some(b) if candidate_cmp(&cand, b).is_ge() => {}
                            _ => best = Some(cand),
                        }
                    }
                }
            }
            let _ = visited_any;
            radius += 1;
            // Safety stop: beyond the whole population extent.
            if radius > 2 + (self.by_key.len() as i64) + worst_radius(&self.cells, (cx, cy)) {
                break;
            }
        }
        best
    }

    fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)> {
        let mut result: Vec<(Entry, f64)> = Vec::with_capacity(k);
        let mut taken: std::collections::BTreeSet<ObjectKey> = std::collections::BTreeSet::new();
        for _ in 0..k {
            match self.nearest_where(p, &mut |key| !taken.contains(&key) && filter(key)) {
                Some(c) => {
                    taken.insert(c.0.key);
                    result.push(c);
                }
                None => break,
            }
        }
        result
    }

    fn for_each(&self, sink: &mut dyn FnMut(Entry)) {
        // Snapshot and sort so emission order is independent of the
        // map's hash state (full scans are cold; determinism wins).
        let mut live: Vec<(ObjectKey, Point)> =
            self.by_key.iter().map(|(&k, &p)| (k, p)).collect();
        live.sort_unstable_by_key(|&(k, _)| k);
        for (key, pos) in live {
            sink(Entry::new(key, pos));
        }
    }
}

/// The cells at Chebyshev distance exactly `radius` from the origin cell.
fn ring_cells(radius: i64) -> Vec<(i64, i64)> {
    if radius == 0 {
        return vec![(0, 0)];
    }
    let mut out = Vec::with_capacity((8 * radius) as usize);
    for d in -radius..=radius {
        out.push((d, -radius));
        out.push((d, radius));
    }
    for d in (-radius + 1)..radius {
        out.push((-radius, d));
        out.push((radius, d));
    }
    out
}

/// Chebyshev distance from `origin` to the farthest occupied cell.
// lint:allow(determinism) max over keys is order-independent
fn worst_radius(cells: &HashMap<(i64, i64), Vec<Entry>>, origin: (i64, i64)) -> i64 {
    cells
        .keys()
        .map(|(cx, cy)| (cx - origin.0).abs().max((cy - origin.1).abs()))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_across_cells() {
        let mut g = GridIndex::new(10.0);
        g.insert(1, Point::new(5.0, 5.0));
        g.insert(2, Point::new(15.0, 5.0));
        g.insert(3, Point::new(-5.0, -5.0));
        let mut hits = Vec::new();
        g.query_rect(&Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0)), &mut |e| {
            hits.push(e.key)
        });
        hits.sort();
        assert_eq!(hits, vec![1, 3]);
    }

    #[test]
    fn move_between_cells() {
        let mut g = GridIndex::new(10.0);
        g.insert(1, Point::new(5.0, 5.0));
        g.insert(1, Point::new(95.0, 95.0));
        assert_eq!(g.len(), 1);
        let mut hits = 0;
        g.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), &mut |_| {
            hits += 1
        });
        assert_eq!(hits, 0);
        assert_eq!(g.get(1), Some(Point::new(95.0, 95.0)));
    }

    #[test]
    fn nearest_across_ring_boundary() {
        let mut g = GridIndex::new(10.0);
        // Closest by euclidean distance is in a farther ring than a
        // same-cell candidate would be.
        g.insert(1, Point::new(9.9, 0.0)); // same cell as query, dist 9.4
        g.insert(2, Point::new(-0.5, 0.0)); // neighboring cell, dist 1.0
        let (e, d) = g.nearest(Point::new(0.5, 0.0)).unwrap();
        assert_eq!(e.key, 2);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_far_away_object() {
        let mut g = GridIndex::new(1.0);
        g.insert(1, Point::new(1_000.0, 1_000.0));
        let (e, _) = g.nearest(Point::ORIGIN).unwrap();
        assert_eq!(e.key, 1);
    }

    #[test]
    fn empty_grid() {
        let g = GridIndex::new(10.0);
        assert!(g.nearest(Point::ORIGIN).is_none());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn ring_cells_counts() {
        assert_eq!(ring_cells(0).len(), 1);
        assert_eq!(ring_cells(1).len(), 8);
        assert_eq!(ring_cells(2).len(), 16);
        // No duplicates.
        let r3 = ring_cells(3);
        let set: std::collections::HashSet<_> = r3.iter().collect();
        assert_eq!(set.len(), r3.len());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::new(0.0);
    }

    #[test]
    fn update_moves_within_and_across_cells() {
        let mut g = GridIndex::new(10.0);
        assert_eq!(g.update(1, Point::new(2.0, 2.0)), None);
        // In-cell move: same cell, position rewritten in place.
        assert_eq!(g.update(1, Point::new(8.0, 3.0)), Some(Point::new(2.0, 2.0)));
        let mut hits = Vec::new();
        g.query_rect(&Rect::new(Point::new(7.0, 0.0), Point::new(10.0, 10.0)), &mut |e| {
            hits.push((e.key, e.pos))
        });
        assert_eq!(hits, vec![(1, Point::new(8.0, 3.0))]);
        // Cross-cell move behaves like insert.
        assert_eq!(g.update(1, Point::new(55.0, 55.0)), Some(Point::new(8.0, 3.0)));
        assert_eq!(g.get(1), Some(Point::new(55.0, 55.0)));
        let mut old = 0;
        g.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), &mut |_| old += 1);
        assert_eq!(old, 0, "old cell must be vacated");
        assert_eq!(g.len(), 1);
    }
}
