//! Main-memory spatial indexes for the hiloc location service.
//!
//! The paper's location servers keep all sighting records in a volatile
//! main-memory database with "a spatial index over the position
//! information in the sighting records (e.g., a Quadtree or an R-Tree)"
//! for range and nearest-neighbor queries. This crate provides:
//!
//! * [`PointQuadtree`] — the paper's choice (Samet's point quadtree),
//!   used by default.
//! * [`RTree`] — the alternative the paper cites (Guttman), used as an
//!   ablation baseline.
//! * [`GridIndex`] — a uniform-grid baseline.
//! * [`NaiveIndex`] — a linear scan, the correctness oracle for the
//!   conformance test-suite.
//!
//! All indexes implement the object-safe [`SpatialIndex`] trait so the
//! sighting database can be configured with any of them.
//!
//! # Example
//!
//! ```
//! use hiloc_geo::{Point, Rect};
//! use hiloc_spatial::{PointQuadtree, SpatialIndex};
//!
//! let mut index = PointQuadtree::new();
//! index.insert(1, Point::new(10.0, 10.0));
//! index.insert(2, Point::new(90.0, 90.0));
//!
//! let mut hits = Vec::new();
//! index.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)),
//!                  &mut |e| hits.push(e.key));
//! assert_eq!(hits, vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod naive;
mod point_quadtree;
mod rtree;

pub use grid::GridIndex;
pub use naive::NaiveIndex;
pub use point_quadtree::PointQuadtree;
pub use rtree::RTree;

use hiloc_geo::{Circle, Point, Rect};

/// Key identifying an indexed object (the location service maps its
/// object identifiers onto these).
pub type ObjectKey = u64;

/// An indexed `(key, position)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// The object key.
    pub key: ObjectKey,
    /// The indexed position in the local planar frame.
    pub pos: Point,
}

impl Entry {
    /// Creates an entry.
    pub fn new(key: ObjectKey, pos: Point) -> Self {
        Entry { key, pos }
    }
}

/// A mutable main-memory index over `(key, position)` pairs.
///
/// The trait is object-safe (query results are delivered through
/// `FnMut` sinks) so a sighting database can hold a `Box<dyn
/// SpatialIndex>` chosen at configuration time.
///
/// # Contract
///
/// * Keys are unique: [`insert`](SpatialIndex::insert) with an existing
///   key moves the object and returns its previous position.
/// * Query callbacks observe each matching entry exactly once, in
///   unspecified order.
/// * `nearest_where` breaks exact distance ties by the smaller key, so
///   results are deterministic across implementations.
pub trait SpatialIndex: Send {
    /// Inserts `key` at `pos`, returning the previous position when the
    /// key was already present (i.e. the object moved).
    fn insert(&mut self, key: ObjectKey, pos: Point) -> Option<Point>;

    /// Moves `key` to `pos` — the position-update hot path.
    ///
    /// Semantically identical to [`insert`](SpatialIndex::insert), but
    /// implementations are expected to recognize *local* movement (the
    /// common case under a sustained update storm) and avoid the full
    /// remove + re-insert: the grid moves within a cell in place, the
    /// quadtree mutates a childless node whose routing region still
    /// contains the point, and the R-tree rewrites the entry when the
    /// containing leaf MBR still covers it.
    fn update(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        self.insert(key, pos)
    }

    /// Removes `key`, returning its position when present.
    fn remove(&mut self, key: ObjectKey) -> Option<Point>;

    /// The current position of `key`, when present.
    fn get(&self, key: ObjectKey) -> Option<Point>;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// True when no objects are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all objects.
    fn clear(&mut self);

    /// Invokes `sink` for every entry inside or on `rect`.
    fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(Entry));

    /// Invokes `sink` for every entry inside or on `circle`.
    fn query_circle(&self, circle: &Circle, sink: &mut dyn FnMut(Entry)) {
        let bbox = circle.bounding_rect();
        self.query_rect(&bbox, &mut |e| {
            if circle.contains(e.pos) {
                sink(e);
            }
        });
    }

    /// The entry nearest to `p` among those accepted by `filter`,
    /// together with its distance. Ties are broken by the smaller key.
    fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Option<(Entry, f64)>;

    /// The entry nearest to `p`.
    fn nearest(&self, p: Point) -> Option<(Entry, f64)> {
        self.nearest_where(p, &mut |_| true)
    }

    /// The `k` entries nearest to `p` among those accepted by `filter`,
    /// ordered by ascending distance (ties by key).
    fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)>;

    /// Invokes `sink` for every entry in the index.
    fn for_each(&self, sink: &mut dyn FnMut(Entry));
}

/// Deterministic ordering for (distance, key) candidate pairs: ascending
/// distance, ties by ascending key.
pub(crate) fn candidate_cmp(a: &(Entry, f64), b: &(Entry, f64)) -> std::cmp::Ordering {
    a.1.partial_cmp(&b.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.key.cmp(&b.0.key))
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn entry_construction() {
        let e = Entry::new(7, Point::new(1.0, 2.0));
        assert_eq!(e.key, 7);
        assert_eq!(e.pos, Point::new(1.0, 2.0));
    }

    #[test]
    fn default_circle_query_filters_corners() {
        let mut idx = NaiveIndex::new();
        idx.insert(1, Point::new(0.9, 0.9)); // in bbox, outside circle
        idx.insert(2, Point::new(0.5, 0.0)); // inside circle
        let c = Circle::new(Point::ORIGIN, 1.0);
        let mut hits = Vec::new();
        idx.query_circle(&c, &mut |e| hits.push(e.key));
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn SpatialIndex> = Box::new(NaiveIndex::new());
        boxed.insert(1, Point::ORIGIN);
        assert_eq!(boxed.len(), 1);
    }
}
