//! Linear-scan index: the conformance oracle.

use crate::{candidate_cmp, Entry, ObjectKey, SpatialIndex};
use hiloc_geo::{Point, Rect};
use std::collections::BTreeMap;

/// A trivially correct index that scans every entry on every query.
///
/// Used as the oracle in the conformance tests and as the degenerate
/// baseline in the index ablation benchmark. Do not use it for large
/// object populations — every operation except point lookup is O(n).
#[derive(Debug, Clone, Default)]
pub struct NaiveIndex {
    entries: BTreeMap<ObjectKey, Point>,
}

impl NaiveIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpatialIndex for NaiveIndex {
    fn insert(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        self.entries.insert(key, pos)
    }

    fn remove(&mut self, key: ObjectKey) -> Option<Point> {
        self.entries.remove(&key)
    }

    fn get(&self, key: ObjectKey) -> Option<Point> {
        self.entries.get(&key).copied()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        for (&key, &pos) in &self.entries {
            if rect.contains(pos) {
                sink(Entry::new(key, pos));
            }
        }
    }

    fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Option<(Entry, f64)> {
        let mut best: Option<(Entry, f64)> = None;
        for (&key, &pos) in &self.entries {
            if !filter(key) {
                continue;
            }
            let cand = (Entry::new(key, pos), p.distance(pos));
            match &best {
                Some(b) if candidate_cmp(&cand, b).is_ge() => {}
                _ => best = Some(cand),
            }
        }
        best
    }

    fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)> {
        let mut all: Vec<(Entry, f64)> = self
            .entries
            .iter()
            .filter(|(k2, _)| filter(**k2))
            .map(|(&key, &pos)| (Entry::new(key, pos), p.distance(pos)))
            .collect();
        all.sort_by(candidate_cmp);
        all.truncate(k);
        all
    }

    fn for_each(&self, sink: &mut dyn FnMut(Entry)) {
        for (&key, &pos) in &self.entries {
            sink(Entry::new(key, pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_move_remove() {
        let mut idx = NaiveIndex::new();
        assert_eq!(idx.insert(1, Point::new(1.0, 1.0)), None);
        assert_eq!(idx.insert(1, Point::new(2.0, 2.0)), Some(Point::new(1.0, 1.0)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(1), Some(Point::new(2.0, 2.0)));
        assert_eq!(idx.remove(1), Some(Point::new(2.0, 2.0)));
        assert!(idx.is_empty());
        assert_eq!(idx.remove(1), None);
    }

    #[test]
    fn nearest_breaks_ties_by_key() {
        let mut idx = NaiveIndex::new();
        idx.insert(5, Point::new(1.0, 0.0));
        idx.insert(3, Point::new(-1.0, 0.0));
        let (e, d) = idx.nearest(Point::ORIGIN).unwrap();
        assert_eq!(e.key, 3);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn nearest_with_filter_skips() {
        let mut idx = NaiveIndex::new();
        idx.insert(1, Point::new(1.0, 0.0));
        idx.insert(2, Point::new(5.0, 0.0));
        let (e, _) = idx.nearest_where(Point::ORIGIN, &mut |k| k != 1).unwrap();
        assert_eq!(e.key, 2);
    }

    #[test]
    fn k_nearest_sorted_and_truncated() {
        let mut idx = NaiveIndex::new();
        for i in 0..10u64 {
            idx.insert(i, Point::new(i as f64, 0.0));
        }
        let got = idx.k_nearest_where(Point::ORIGIN, 3, &mut |_| true);
        let keys: Vec<_> = got.iter().map(|(e, _)| e.key).collect();
        assert_eq!(keys, vec![0, 1, 2]);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn clear_empties() {
        let mut idx = NaiveIndex::new();
        idx.insert(1, Point::ORIGIN);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(Point::ORIGIN), None);
    }
}
