//! Samet's point quadtree — the paper's spatial index.

use crate::{candidate_cmp, Entry, ObjectKey, SpatialIndex};
use hiloc_geo::{Point, Rect};
// lint:allow(determinism) import for the lookup-only key map annotated below
use std::collections::HashMap;

/// Child quadrant indexes: SW, SE, NW, NE relative to a node's point.
const SW: usize = 0;
const SE: usize = 1;
const NW: usize = 2;
const NE: usize = 3;

#[derive(Debug, Clone)]
struct Node {
    key: ObjectKey,
    /// The node's *split point*: fixed at insertion, it defines the
    /// quadrant decomposition below this node and never moves.
    split: Point,
    /// The object's *current position*: free to drift anywhere inside
    /// `bounds` without restructuring (the update hot path). Always
    /// inside `bounds`; starts equal to `split`.
    pos: Point,
    children: [Option<u32>; 4],
    parent: Option<u32>,
    /// Tombstone flag: the node stays in the tree as a split point but
    /// no longer represents a live object. Also marks freed slots
    /// (which are additionally unlinked and on the free list).
    deleted: bool,
    /// The node's routing region (quadrant constraints accumulated from
    /// the root at insertion). Cached so the update fast path is O(1).
    bounds: QuadBounds,
}

/// A point quadtree (Samet, *The Design and Analysis of Spatial Data
/// Structures*): every node stores one data point; its insertion
/// position splits the region into four quadrants.
///
/// This is the index the paper's prototype uses for the sighting
/// database ("For the spatial index we used a Point Quadtree
/// implementation, which we found to be very well suited for our
/// purpose").
///
/// # Update hot path
///
/// Position updates are the dominant load of a location server (the
/// paper measures 41 494 updates/s), so the structure is tuned for
/// them: each node's **split point** (the routing structure) is
/// decoupled from the object's **current position**, and the node's
/// routing region is cached. A move that stays inside the region — the
/// common case for the local motion of tracked objects — is a single
/// in-place write, no matter whether the node has children.
///
/// # Deletion strategy
///
/// True point-quadtree deletion requires re-inserting entire subtrees.
/// A childless node is unlinked outright (its arena slot is reused;
/// emptied tombstone ancestors are pruned on the way up). A node with
/// children is tombstoned: it stays as a split point and the tree is
/// rebuilt from the live nodes once tombstones outnumber them —
/// amortized O(log n) per operation and a bounded 2× space overhead.
///
/// # Example
///
/// ```
/// use hiloc_geo::Point;
/// use hiloc_spatial::{PointQuadtree, SpatialIndex};
///
/// let mut t = PointQuadtree::new();
/// for i in 0..100u64 {
///     t.insert(i, Point::new(i as f64, (i * 7 % 100) as f64));
/// }
/// let (nearest, d) = t.nearest(Point::new(50.0, 50.0)).unwrap();
/// assert!(d >= 0.0);
/// assert!(t.get(nearest.key).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PointQuadtree {
    nodes: Vec<Node>,
    /// Freed arena slots available for reuse.
    free: Vec<u32>,
    root: Option<u32>,
    /// Key → node index, for O(1) lookup/removal.
    // lint:allow(determinism) lookups only; maybe_rebuild sorts by mixed key before reinserting
    by_key: HashMap<ObjectKey, u32>,
    tombstones: usize,
}

impl PointQuadtree {
    /// Creates an empty quadtree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tombstoned nodes currently retained (exposed for tests
    /// and diagnostics).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Height of the tree (0 for empty); diagnostic only.
    pub fn height(&self) -> usize {
        fn rec(nodes: &[Node], id: Option<u32>) -> usize {
            match id {
                None => 0,
                Some(i) => {
                    1 + nodes[i as usize]
                        .children
                        .iter()
                        .map(|c| rec(nodes, *c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        rec(&self.nodes, self.root)
    }

    fn quadrant(split: Point, p: Point) -> usize {
        match (p.x >= split.x, p.y >= split.y) {
            (false, false) => SW,
            (true, false) => SE,
            (false, true) => NW,
            (true, true) => NE,
        }
    }

    fn alloc(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = node;
                id
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn insert_node(&mut self, key: ObjectKey, pos: Point) {
        match self.root {
            None => {
                let id = self.alloc(Node {
                    key,
                    split: pos,
                    pos,
                    children: [None; 4],
                    parent: None,
                    deleted: false,
                    bounds: QuadBounds::unbounded(),
                });
                self.root = Some(id);
                self.by_key.insert(key, id);
            }
            Some(root) => self.insert_from(root, key, pos),
        }
    }

    /// Inserts below `start`, whose region must contain `pos`. The
    /// first tombstone on the descent path is revived instead of
    /// allocating: the object lands on a shallow node with a large
    /// region — future in-place moves hit more often — and the
    /// tombstone pool is recycled instead of forcing rebuilds.
    fn insert_from(&mut self, start: u32, key: ObjectKey, pos: Point) {
        let mut bounds = self.nodes[start as usize].bounds;
        let mut cur = start;
        loop {
            let n = &mut self.nodes[cur as usize];
            if n.deleted {
                n.key = key;
                n.pos = pos;
                n.deleted = false;
                self.tombstones -= 1;
                self.by_key.insert(key, cur);
                return;
            }
            let q = Self::quadrant(n.split, pos);
            bounds = bounds.child(n.split, q);
            match n.children[q] {
                Some(child) => cur = child,
                None => {
                    let id = self.alloc(Node {
                        key,
                        split: pos,
                        pos,
                        children: [None; 4],
                        parent: Some(cur),
                        deleted: false,
                        bounds,
                    });
                    self.nodes[cur as usize].children[q] = Some(id);
                    self.by_key.insert(key, id);
                    return;
                }
            }
        }
    }

    /// Moves the childless node `id` below `start` (whose region must
    /// contain `pos`): unlink, then re-link as a fresh leaf with
    /// `split = pos`. The arena slot, key and `by_key` entry are all
    /// kept — a miss on the in-place fast path costs an ascent plus a
    /// short local descent instead of a removal and a root descent.
    fn relocate(&mut self, id: u32, start: u32, pos: Point) {
        debug_assert!(self.nodes[id as usize].children.iter().all(Option::is_none));
        let parent = self.nodes[id as usize]
            .parent
            .expect("the root's region is unbounded and never relocates");
        for slot in &mut self.nodes[parent as usize].children {
            if *slot == Some(id) {
                *slot = None;
            }
        }
        let mut bounds = self.nodes[start as usize].bounds;
        let mut cur = start;
        loop {
            let n = &self.nodes[cur as usize];
            let q = Self::quadrant(n.split, pos);
            bounds = bounds.child(n.split, q);
            match n.children[q] {
                Some(child) => cur = child,
                None => {
                    let node = &mut self.nodes[id as usize];
                    node.split = pos;
                    node.pos = pos;
                    node.parent = Some(cur);
                    node.bounds = bounds;
                    self.nodes[cur as usize].children[q] = Some(id);
                    return;
                }
            }
        }
    }

    /// Unlinks a childless node from its parent, frees its slot, and
    /// prunes tombstone ancestors that became childless in the process.
    fn detach(&mut self, mut id: u32) {
        loop {
            debug_assert!(self.nodes[id as usize].children.iter().all(Option::is_none));
            let parent = self.nodes[id as usize].parent;
            self.nodes[id as usize].deleted = true;
            self.free.push(id);
            match parent {
                None => {
                    self.root = None;
                    return;
                }
                Some(p) => {
                    let pn = &mut self.nodes[p as usize];
                    for slot in &mut pn.children {
                        if *slot == Some(id) {
                            *slot = None;
                        }
                    }
                    if pn.deleted && pn.children.iter().all(Option::is_none) {
                        // The tombstone no longer splits anything.
                        self.tombstones -= 1;
                        id = p;
                        continue;
                    }
                    return;
                }
            }
        }
    }

    /// Rebuilds the tree from live entries when tombstones dominate.
    ///
    /// Entries are re-inserted in a deterministic pseudo-shuffled order
    /// (by a mixed hash of the key) which yields expected O(log n)
    /// depth, like a randomized BST.
    fn maybe_rebuild(&mut self) {
        if self.tombstones <= self.by_key.len() || self.tombstones < 64 {
            return;
        }
        let mut live: Vec<(ObjectKey, Point)> = self
            .by_key
            .values()
            .map(|&id| {
                let n = &self.nodes[id as usize];
                (n.key, n.pos)
            })
            .collect();
        live.sort_by_key(|(k, _)| mix64(*k));
        self.nodes.clear();
        self.free.clear();
        self.by_key.clear();
        self.root = None;
        self.tombstones = 0;
        for (k, p) in live {
            self.insert_node(k, p);
        }
    }

    fn query_rect_rec(&self, id: Option<u32>, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        let Some(id) = id else { return };
        let node = &self.nodes[id as usize];
        if !node.deleted && rect.contains(node.pos) {
            sink(Entry::new(node.key, node.pos));
        }
        // Quadrant pruning relative to the node's split point.
        let west = rect.min().x < node.split.x;
        let east = rect.max().x >= node.split.x;
        let south = rect.min().y < node.split.y;
        let north = rect.max().y >= node.split.y;
        if west && south {
            self.query_rect_rec(node.children[SW], rect, sink);
        }
        if east && south {
            self.query_rect_rec(node.children[SE], rect, sink);
        }
        if west && north {
            self.query_rect_rec(node.children[NW], rect, sink);
        }
        if east && north {
            self.query_rect_rec(node.children[NE], rect, sink);
        }
    }

    /// Branch-and-bound nearest search. `bounds` is the region of the
    /// current subtree; children refine it at the node's split point.
    /// Every node's data position lies inside its region (the in-place
    /// update invariant), so region pruning stays sound.
    #[allow(clippy::too_many_arguments)]
    fn nearest_rec(
        &self,
        id: Option<u32>,
        p: Point,
        bounds: QuadBounds,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
        best: &mut Option<(Entry, f64)>,
    ) {
        let Some(id) = id else { return };
        if let Some((_, d)) = best {
            if bounds.min_distance(p) > *d {
                return;
            }
        }
        let node = &self.nodes[id as usize];
        if !node.deleted && filter(node.key) {
            let cand = (Entry::new(node.key, node.pos), p.distance(node.pos));
            match best {
                Some(b) if candidate_cmp(&cand, b).is_ge() => {}
                _ => *best = Some(cand),
            }
        }
        // Visit the quadrant containing p first for early pruning.
        let first = Self::quadrant(node.split, p);
        let order = [first, first ^ 1, first ^ 2, first ^ 3];
        for q in order {
            let child_bounds = bounds.child(node.split, q);
            if let Some((_, d)) = best {
                if child_bounds.min_distance(p) > *d {
                    continue;
                }
            }
            self.nearest_rec(node.children[q], p, child_bounds, filter, best);
        }
    }
}

/// Open bounds of a quadtree subtree; starts unbounded at the root.
#[derive(Debug, Clone, Copy)]
struct QuadBounds {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl QuadBounds {
    fn unbounded() -> Self {
        QuadBounds {
            min_x: f64::NEG_INFINITY,
            min_y: f64::NEG_INFINITY,
            max_x: f64::INFINITY,
            max_y: f64::INFINITY,
        }
    }

    fn child(self, split: Point, quadrant: usize) -> Self {
        let mut b = self;
        match quadrant {
            SW => {
                b.max_x = b.max_x.min(split.x);
                b.max_y = b.max_y.min(split.y);
            }
            SE => {
                b.min_x = b.min_x.max(split.x);
                b.max_y = b.max_y.min(split.y);
            }
            NW => {
                b.max_x = b.max_x.min(split.x);
                b.min_y = b.min_y.max(split.y);
            }
            _ => {
                b.min_x = b.min_x.max(split.x);
                b.min_y = b.min_y.max(split.y);
            }
        }
        b
    }

    fn min_distance(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Whether routing `p` from the root reaches this region: quadrant
    /// choice treats the split value as belonging to the east/north
    /// side, so regions are half-open (min inclusive, max exclusive).
    fn routes_here(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x < self.max_x && p.y >= self.min_y && p.y < self.max_y
    }
}

/// SplitMix64 finalizer: decorrelates sequential keys for rebuild order.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SpatialIndex for PointQuadtree {
    fn insert(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let old = self.remove(key);
        self.insert_node(key, pos);
        old
    }

    // lint:hot_path
    fn update(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let Some(&id) = self.by_key.get(&key) else {
            self.insert_node(key, pos);
            return None;
        };
        // The split point is fixed structure; only the data position
        // moves. As long as the new position stays inside the node's
        // cached routing region, queries remain exact — O(1), no
        // unlink, no tombstone, no rebuild pressure.
        let node = &mut self.nodes[id as usize];
        if node.bounds.routes_here(pos) {
            let old_pos = node.pos;
            node.pos = pos;
            return Some(old_pos);
        }
        let old_pos = node.pos;
        // Non-finite coordinates defeat the region algebra (no region
        // admits NaN, and +∞ escapes even the root's half-open bounds):
        // take the plain re-insert path, which routes them the same way
        // the tree always has.
        if !(pos.x.is_finite() && pos.y.is_finite()) {
            return self.insert(key, pos);
        }
        // Local motion mostly crosses into a *sibling* region: ascend
        // to the nearest ancestor whose region admits the new point
        // (the root admits everything) and re-place the object from
        // there, instead of paying a full root descent.
        let mut start = self.nodes[id as usize]
            .parent
            .expect("the root's region is unbounded and always hits the fast path");
        while !self.nodes[start as usize].bounds.routes_here(pos) {
            start = self.nodes[start as usize]
                .parent
                .expect("the root's region admits every point");
        }
        if self.nodes[id as usize].children.iter().all(Option::is_none) {
            self.relocate(id, start, pos);
        } else {
            // The node splits its subtree and must stay as structure.
            self.nodes[id as usize].deleted = true;
            self.tombstones += 1;
            self.by_key.remove(&key);
            self.insert_from(start, key, pos);
            self.maybe_rebuild();
        }
        Some(old_pos)
    }

    fn remove(&mut self, key: ObjectKey) -> Option<Point> {
        let id = self.by_key.remove(&key)?;
        let node = &mut self.nodes[id as usize];
        debug_assert!(!node.deleted);
        let pos = node.pos;
        if node.children.iter().all(Option::is_none) {
            // Childless: unlink for real and reuse the slot.
            self.detach(id);
        } else {
            node.deleted = true;
            self.tombstones += 1;
            self.maybe_rebuild();
        }
        Some(pos)
    }

    fn get(&self, key: ObjectKey) -> Option<Point> {
        self.by_key.get(&key).map(|&id| self.nodes[id as usize].pos)
    }

    fn len(&self) -> usize {
        self.by_key.len()
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.by_key.clear();
        self.root = None;
        self.tombstones = 0;
    }

    fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        self.query_rect_rec(self.root, rect, sink);
    }

    fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Option<(Entry, f64)> {
        let mut best = None;
        self.nearest_rec(self.root, p, QuadBounds::unbounded(), filter, &mut best);
        best
    }

    fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)> {
        // Iterative deepening by exclusion: k rounds of nearest_where,
        // each excluding the keys already returned. k is small in
        // practice (near-neighbor sets), so this trades a log factor for
        // simplicity and exact tie-break parity with the oracle.
        let mut result: Vec<(Entry, f64)> = Vec::with_capacity(k);
        let mut taken: std::collections::BTreeSet<ObjectKey> = std::collections::BTreeSet::new();
        for _ in 0..k {
            let next = self.nearest_where(p, &mut |key| !taken.contains(&key) && filter(key));
            match next {
                Some(c) => {
                    taken.insert(c.0.key);
                    result.push(c);
                }
                None => break,
            }
        }
        result
    }

    fn for_each(&self, sink: &mut dyn FnMut(Entry)) {
        for node in &self.nodes {
            if !node.deleted {
                sink(Entry::new(node.key, node.pos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(points: &[(u64, f64, f64)]) -> PointQuadtree {
        let mut t = PointQuadtree::new();
        for &(k, x, y) in points {
            t.insert(k, Point::new(x, y));
        }
        t
    }

    #[test]
    fn insert_and_get() {
        let t = tree_with(&[(1, 0.0, 0.0), (2, 5.0, 5.0), (3, -5.0, 5.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2), Some(Point::new(5.0, 5.0)));
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn reinsert_moves_object() {
        let mut t = tree_with(&[(1, 0.0, 0.0)]);
        let old = t.insert(1, Point::new(9.0, 9.0));
        assert_eq!(old, Some(Point::ORIGIN));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(Point::new(9.0, 9.0)));
        // Old position no longer appears in queries.
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)), &mut |e| {
            hits.push(e.key)
        });
        assert!(hits.is_empty());
    }

    #[test]
    fn range_query_with_points_on_boundary() {
        let t = tree_with(&[(1, 0.0, 0.0), (2, 10.0, 10.0), (3, 5.0, 5.0), (4, 10.1, 0.0)]);
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), &mut |e| {
            hits.push(e.key)
        });
        hits.sort();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn nearest_simple() {
        let t = tree_with(&[(1, 0.0, 0.0), (2, 10.0, 0.0), (3, 4.0, 3.0)]);
        let (e, d) = t.nearest(Point::new(5.0, 3.0)).unwrap();
        assert_eq!(e.key, 3);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn nearest_respects_filter() {
        let t = tree_with(&[(1, 1.0, 0.0), (2, 2.0, 0.0), (3, 3.0, 0.0)]);
        let (e, _) = t.nearest_where(Point::ORIGIN, &mut |k| k > 2).unwrap();
        assert_eq!(e.key, 3);
    }

    #[test]
    fn k_nearest_in_order() {
        let t = tree_with(&[(1, 1.0, 0.0), (2, 2.0, 0.0), (3, 3.0, 0.0), (4, 4.0, 0.0)]);
        let got = t.k_nearest_where(Point::ORIGIN, 3, &mut |_| true);
        let keys: Vec<_> = got.iter().map(|(e, _)| e.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn k_nearest_more_than_len() {
        let t = tree_with(&[(1, 1.0, 0.0)]);
        assert_eq!(t.k_nearest_where(Point::ORIGIN, 5, &mut |_| true).len(), 1);
    }

    #[test]
    fn childless_removal_reuses_slots_without_tombstones() {
        let mut t = PointQuadtree::new();
        for i in 0..100u64 {
            t.insert(i, Point::new(i as f64, (i * 13 % 50) as f64));
        }
        // Removing in reverse insertion order hits childless nodes
        // almost exclusively: tombstones stay near zero and the arena
        // shrinks through the free list.
        for i in (50..100u64).rev() {
            t.remove(i);
        }
        assert_eq!(t.len(), 50);
        assert!(
            t.tombstone_count() <= 5,
            "reverse removals should mostly unlink, got {} tombstones",
            t.tombstone_count()
        );
        for i in 0..50u64 {
            assert!(t.get(i).is_some());
        }
        // Re-inserting reuses freed slots: the arena must not grow.
        let before = t.nodes.len();
        for i in 50..100u64 {
            t.insert(i, Point::new(i as f64, 1.0));
        }
        assert_eq!(t.nodes.len(), before, "freed slots must be reused");
    }

    #[test]
    fn tombstones_trigger_rebuild() {
        let mut t = PointQuadtree::new();
        for i in 0..500u64 {
            t.insert(i, Point::new(i as f64, (i % 17) as f64));
        }
        for i in 0..400u64 {
            t.remove(i);
        }
        assert_eq!(t.len(), 100);
        // Rebuild happened: tombstones were collapsed.
        assert!(t.tombstone_count() <= t.len(), "tombstones {}", t.tombstone_count());
        // Survivors still queryable.
        for i in 400..500u64 {
            assert!(t.get(i).is_some());
        }
    }

    #[test]
    fn update_in_place_within_routing_region() {
        // Root at (0,0); key 2 is the NE child: its routing region is
        // x >= 0, y >= 0, so NE-quadrant moves rewrite in place.
        let mut t = tree_with(&[(1, 0.0, 0.0), (2, 5.0, 5.0)]);
        assert_eq!(t.update(2, Point::new(7.0, 1.0)), Some(Point::new(5.0, 5.0)));
        assert_eq!(t.tombstone_count(), 0, "in-region move must not tombstone");
        assert_eq!(t.get(2), Some(Point::new(7.0, 1.0)));
        let (e, _) = t.nearest(Point::new(7.0, 1.1)).unwrap();
        assert_eq!(e.key, 2);

        // The root's region is unbounded, so the root moves in place
        // too — its *split* stays at the origin, keeping key 2's NE
        // placement valid.
        assert_eq!(t.update(1, Point::new(-3.0, -4.0)), Some(Point::ORIGIN));
        assert_eq!(t.get(1), Some(Point::new(-3.0, -4.0)));
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(-5.0, -5.0), Point::new(0.0, 0.0)), &mut |e| {
            hits.push(e.key)
        });
        assert_eq!(hits, vec![1]);

        // Key 2 crossing into the SW quadrant leaves its region: the
        // node is re-inserted (childless → unlinked, no tombstone).
        assert_eq!(t.update(2, Point::new(-1.0, -1.0)), Some(Point::new(7.0, 1.0)));
        assert_eq!(t.tombstone_count(), 0);
        assert_eq!(t.get(2), Some(Point::new(-1.0, -1.0)));
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0)), &mut |e| {
            hits.push(e.key)
        });
        hits.sort();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn update_absent_key_inserts() {
        let mut t = PointQuadtree::new();
        assert_eq!(t.update(9, Point::new(1.0, 2.0)), None);
        assert_eq!(t.get(9), Some(Point::new(1.0, 2.0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_positions_coexist() {
        // Multiple objects at the same point (e.g. people in a room).
        let t = tree_with(&[(1, 5.0, 5.0), (2, 5.0, 5.0), (3, 5.0, 5.0)]);
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0)), &mut |e| {
            hits.push(e.key)
        });
        hits.sort();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn empty_tree_queries() {
        let t = PointQuadtree::new();
        assert_eq!(t.nearest(Point::ORIGIN), None);
        let mut hits = 0;
        t.query_rect(&Rect::new(Point::new(-1e9, -1e9), Point::new(1e9, 1e9)), &mut |_| {
            hits += 1
        });
        assert_eq!(hits, 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn sequential_inserts_stay_shallow_after_rebuild() {
        // Sequential keys at sequential positions produce a degenerate
        // path; the rebuild shuffle must keep lookups correct.
        let mut t = PointQuadtree::new();
        for i in 0..2_000u64 {
            t.insert(i, Point::new(i as f64, i as f64));
        }
        // Force a rebuild cycle.
        for i in 0..1_500u64 {
            t.remove(i);
        }
        for i in 1_500..2_000u64 {
            assert_eq!(t.get(i), Some(Point::new(i as f64, i as f64)));
        }
    }
}
