//! R-tree with quadratic split (Guttman) — the paper's cited alternative.

use crate::{candidate_cmp, Entry, ObjectKey, SpatialIndex};
use hiloc_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
// lint:allow(determinism) import for the lookup-only key map annotated below
use std::collections::HashMap;

/// Maximum entries per node.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node (Guttman recommends M/2 or less).
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum Node {
    Leaf { entries: Vec<Entry> },
    Internal { children: Vec<(Rect, u32)> },
}

/// An R-tree over points with Guttman's quadratic split.
///
/// The paper names the R-tree (Guttman 1984) as the alternative spatial
/// index for the sighting database; hiloc ships it as an ablation
/// baseline against the default [`crate::PointQuadtree`].
///
/// # Example
///
/// ```
/// use hiloc_geo::{Point, Rect};
/// use hiloc_spatial::{RTree, SpatialIndex};
///
/// let mut t = RTree::new();
/// for i in 0..50u64 {
///     t.insert(i, Point::new((i % 10) as f64, (i / 10) as f64));
/// }
/// let mut count = 0;
/// t.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)), &mut |_| count += 1);
/// assert_eq!(count, 25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    // lint:allow(determinism) O(1) lookups; for_each snapshots and sorts before emitting
    by_key: HashMap<ObjectKey, Point>,
    free: Vec<u32>,
}

impl RTree {
    /// Creates an empty R-tree.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn node_rect(&self, id: u32) -> Rect {
        match &self.nodes[id as usize] {
            Node::Leaf { entries } => {
                Rect::bounding(entries.iter().map(|e| e.pos)).expect("leaf not empty")
            }
            Node::Internal { children } => {
                let mut it = children.iter();
                let first = it.next().expect("internal not empty").0;
                it.fold(first, |acc, (r, _)| acc.union(r))
            }
        }
    }

    /// Inserts recursively; on overflow returns the id of a new sibling
    /// produced by splitting, together with both updated rects.
    fn insert_rec(&mut self, id: u32, entry: Entry) -> Option<(Rect, u32, Rect)> {
        match &mut self.nodes[id as usize] {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() <= MAX_ENTRIES {
                    return None;
                }
                // Quadratic split of leaf entries.
                let all = std::mem::take(entries);
                let (a, b) = quadratic_split_entries(all);
                self.nodes[id as usize] = Node::Leaf { entries: a };
                let sib = self.alloc(Node::Leaf { entries: b });
                Some((self.node_rect(id), sib, self.node_rect(sib)))
            }
            Node::Internal { children } => {
                // Choose the child needing least enlargement.
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (r, _)) in children.iter().enumerate() {
                    let enlarged = r.union(&Rect::new(entry.pos, entry.pos));
                    let cost = enlarged.area() - r.area();
                    if cost < best_cost || (cost == best_cost && r.area() < best_area) {
                        best = i;
                        best_cost = cost;
                        best_area = r.area();
                    }
                }
                let child_id = children[best].1;
                let split = self.insert_rec(child_id, entry);
                let Node::Internal { children } = &mut self.nodes[id as usize] else {
                    unreachable!()
                };
                match split {
                    None => {
                        // Just grow the child's rect.
                        let r = children[best].0.union(&Rect::new(entry.pos, entry.pos));
                        children[best].0 = r;
                        None
                    }
                    Some((left_rect, sib, sib_rect)) => {
                        children[best].0 = left_rect;
                        children.push((sib_rect, sib));
                        if children.len() <= MAX_ENTRIES {
                            return None;
                        }
                        let all = std::mem::take(children);
                        let (a, b) = quadratic_split_children(all);
                        self.nodes[id as usize] = Node::Internal { children: a };
                        let new_sib = self.alloc(Node::Internal { children: b });
                        Some((self.node_rect(id), new_sib, self.node_rect(new_sib)))
                    }
                }
            }
        }
    }

    /// Removes `key` at `pos`; collects entries of underfull nodes into
    /// `orphans` for reinsertion. Returns `(removed, node_now_empty)`.
    fn remove_rec(
        &mut self,
        id: u32,
        key: ObjectKey,
        pos: Point,
        orphans: &mut Vec<Entry>,
    ) -> (bool, bool) {
        match &mut self.nodes[id as usize] {
            Node::Leaf { entries } => {
                let before = entries.len();
                entries.retain(|e| e.key != key);
                let removed = entries.len() != before;
                (removed, entries.is_empty())
            }
            Node::Internal { children } => {
                let candidates: Vec<(usize, u32)> = children
                    .iter()
                    .enumerate()
                    .filter(|(_, (r, _))| r.contains(pos))
                    .map(|(i, (_, c))| (i, *c))
                    .collect();
                for (i, child_id) in candidates {
                    let (removed, child_empty) = self.remove_rec(child_id, key, pos, orphans);
                    if !removed {
                        continue;
                    }
                    // Check underflow and recompute rects.
                    let underfull = !child_empty && self.child_len(child_id) < MIN_ENTRIES;
                    if child_empty || underfull {
                        if underfull {
                            self.collect_entries(child_id, orphans);
                        }
                        self.free_subtree(child_id);
                        let Node::Internal { children } = &mut self.nodes[id as usize] else {
                            unreachable!()
                        };
                        children.remove(i);
                        let empty = children.is_empty();
                        return (true, empty);
                    }
                    let new_rect = self.node_rect(child_id);
                    let Node::Internal { children } = &mut self.nodes[id as usize] else {
                        unreachable!()
                    };
                    children[i].0 = new_rect;
                    return (true, false);
                }
                (false, false)
            }
        }
    }

    fn child_len(&self, id: u32) -> usize {
        match &self.nodes[id as usize] {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { children } => children.len(),
        }
    }

    fn collect_entries(&self, id: u32, out: &mut Vec<Entry>) {
        match &self.nodes[id as usize] {
            Node::Leaf { entries } => out.extend_from_slice(entries),
            Node::Internal { children } => {
                for (_, c) in children {
                    self.collect_entries(*c, out);
                }
            }
        }
    }

    fn free_subtree(&mut self, id: u32) {
        if let Node::Internal { children } = self.nodes[id as usize].clone() {
            for (_, c) in children {
                self.free_subtree(c);
            }
        }
        self.nodes[id as usize] = Node::Leaf { entries: Vec::new() };
        self.free.push(id);
    }

    /// Tries to rewrite `key`'s entry in place for a move `old_pos →
    /// new_pos`. `enclosing` is the MBR stored for the current subtree
    /// at its parent (`None` at the root, which has no stored MBR).
    /// In-place rewriting is sound exactly when the new point stays
    /// inside that MBR: every ancestor rectangle still covers it, so no
    /// bounding box needs to grow or shrink.
    fn update_probe(
        &mut self,
        id: u32,
        key: ObjectKey,
        old_pos: Point,
        new_pos: Point,
        enclosing: Option<Rect>,
    ) -> UpdateProbe {
        // The leaf arm resolves in place; the internal arm falls
        // through to indexed iteration (the recursion needs `&mut
        // self`, and this probe runs once per position update — it
        // must not allocate).
        let child_count = match &mut self.nodes[id as usize] {
            Node::Leaf { entries } => {
                return match entries.iter_mut().find(|e| e.key == key) {
                    Some(e) if enclosing.map(|r| r.contains(new_pos)).unwrap_or(true) => {
                        e.pos = new_pos;
                        UpdateProbe::Done
                    }
                    Some(_) => UpdateProbe::NeedsReinsert,
                    None => UpdateProbe::NotHere,
                };
            }
            Node::Internal { children } => children.len(),
        };
        for i in 0..child_count {
            let (rect, child) = match &self.nodes[id as usize] {
                Node::Internal { children } => children[i],
                Node::Leaf { .. } => unreachable!("node kind is stable"),
            };
            if !rect.contains(old_pos) {
                continue;
            }
            match self.update_probe(child, key, old_pos, new_pos, Some(rect)) {
                UpdateProbe::NotHere => continue,
                done_or_reinsert => return done_or_reinsert,
            }
        }
        UpdateProbe::NotHere
    }

    fn query_rec(&self, id: u32, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        match &self.nodes[id as usize] {
            Node::Leaf { entries } => {
                for e in entries {
                    if rect.contains(e.pos) {
                        sink(*e);
                    }
                }
            }
            Node::Internal { children } => {
                for (r, c) in children {
                    if r.intersects(rect) {
                        self.query_rec(*c, rect, sink);
                    }
                }
            }
        }
    }
}

/// Outcome of an in-place update attempt.
enum UpdateProbe {
    /// The key is not in this subtree.
    NotHere,
    /// The entry was rewritten in place.
    Done,
    /// The entry was found, but the move escapes its leaf MBR.
    NeedsReinsert,
}

/// Max-heap item ordered by *descending* distance so the BinaryHeap pops
/// the closest candidate first.
struct HeapItem {
    dist: f64,
    tie_key: u64,
    kind: HeapKind,
}

enum HeapKind {
    Node(u32),
    Entry(Entry),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.tie_key == other.tie_key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller distance = greater priority. Ties: smaller key first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.tie_key.cmp(&self.tie_key))
    }
}

impl SpatialIndex for RTree {
    fn insert(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let old = self.remove(key);
        self.by_key.insert(key, pos);
        let entry = Entry::new(key, pos);
        match self.root {
            None => {
                let id = self.alloc(Node::Leaf { entries: vec![entry] });
                self.root = Some(id);
            }
            Some(root) => {
                if let Some((left_rect, sib, sib_rect)) = self.insert_rec(root, entry) {
                    let new_root = self.alloc(Node::Internal {
                        children: vec![(left_rect, root), (sib_rect, sib)],
                    });
                    self.root = Some(new_root);
                }
            }
        }
        old
    }

    // lint:hot_path
    fn update(&mut self, key: ObjectKey, pos: Point) -> Option<Point> {
        let Some(&old_pos) = self.by_key.get(&key) else {
            return self.insert(key, pos);
        };
        let root = self.root.expect("keyed entry implies a root");
        match self.update_probe(root, key, old_pos, pos, None) {
            UpdateProbe::Done => {
                self.by_key.insert(key, pos);
                Some(old_pos)
            }
            _ => self.insert(key, pos),
        }
    }

    fn remove(&mut self, key: ObjectKey) -> Option<Point> {
        let pos = self.by_key.remove(&key)?;
        let root = self.root.expect("non-empty tree has a root");
        let mut orphans = Vec::new();
        let (removed, root_empty) = self.remove_rec(root, key, pos, &mut orphans);
        debug_assert!(removed, "by_key and tree out of sync");
        if root_empty {
            self.free_subtree(root);
            self.root = None;
        } else if let Node::Internal { children } = &self.nodes[root as usize] {
            // Collapse a root with a single child.
            if children.len() == 1 {
                let child = children[0].1;
                self.nodes[root as usize] = Node::Leaf { entries: Vec::new() };
                self.free.push(root);
                self.root = Some(child);
            }
        }
        for e in orphans {
            // Reinsert via the public path (key is already out of by_key
            // maps only for `key`; orphans keep theirs).
            let root = match self.root {
                None => {
                    let id = self.alloc(Node::Leaf { entries: vec![e] });
                    self.root = Some(id);
                    continue;
                }
                Some(r) => r,
            };
            if let Some((left_rect, sib, sib_rect)) = self.insert_rec(root, e) {
                let new_root = self.alloc(Node::Internal {
                    children: vec![(left_rect, root), (sib_rect, sib)],
                });
                self.root = Some(new_root);
            }
        }
        Some(pos)
    }

    fn get(&self, key: ObjectKey) -> Option<Point> {
        self.by_key.get(&key).copied()
    }

    fn len(&self) -> usize {
        self.by_key.len()
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.by_key.clear();
        self.root = None;
        self.free.clear();
    }

    fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(Entry)) {
        if let Some(root) = self.root {
            self.query_rec(root, rect, sink);
        }
    }

    fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Option<(Entry, f64)> {
        let mut found = self.k_nearest_impl(p, 1, filter);
        found.pop()
    }

    fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)> {
        self.k_nearest_impl(p, k, filter)
    }

    fn for_each(&self, sink: &mut dyn FnMut(Entry)) {
        // Snapshot and sort so emission order is independent of the
        // map's hash state (full scans are cold; determinism wins).
        let mut live: Vec<(ObjectKey, Point)> =
            self.by_key.iter().map(|(&k, &p)| (k, p)).collect();
        live.sort_unstable_by_key(|&(k, _)| k);
        for (key, pos) in live {
            sink(Entry::new(key, pos));
        }
    }
}

impl RTree {
    /// Best-first k-nearest traversal.
    fn k_nearest_impl(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(ObjectKey) -> bool,
    ) -> Vec<(Entry, f64)> {
        let mut result = Vec::with_capacity(k);
        let Some(root) = self.root else { return result };
        if k == 0 {
            return result;
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node_rect(root).distance_to_point(p),
            tie_key: 0,
            kind: HeapKind::Node(root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                HeapKind::Entry(e) => {
                    result.push((e, item.dist));
                    if result.len() == k {
                        break;
                    }
                }
                HeapKind::Node(id) => match &self.nodes[id as usize] {
                    Node::Leaf { entries } => {
                        for e in entries {
                            if filter(e.key) {
                                heap.push(HeapItem {
                                    dist: p.distance(e.pos),
                                    tie_key: e.key,
                                    kind: HeapKind::Entry(*e),
                                });
                            }
                        }
                    }
                    Node::Internal { children } => {
                        for (r, c) in children {
                            heap.push(HeapItem {
                                dist: r.distance_to_point(p),
                                tie_key: 0,
                                kind: HeapKind::Node(*c),
                            });
                        }
                    }
                },
            }
        }
        result.sort_by(candidate_cmp);
        result
    }
}

/// Guttman's quadratic split for leaf entries.
fn quadratic_split_entries(all: Vec<Entry>) -> (Vec<Entry>, Vec<Entry>) {
    let rects: Vec<Rect> = all.iter().map(|e| Rect::new(e.pos, e.pos)).collect();
    let (ga, gb) = quadratic_split_indices(&rects);
    split_by_indices(&all, &ga, &gb)
}

/// An internal node's child entry: bounding rect + node id.
type ChildEntry = (Rect, u32);

/// Guttman's quadratic split for internal children.
fn quadratic_split_children(all: Vec<ChildEntry>) -> (Vec<ChildEntry>, Vec<ChildEntry>) {
    let rects: Vec<Rect> = all.iter().map(|(r, _)| *r).collect();
    let (ga, gb) = quadratic_split_indices(&rects);
    split_by_indices(&all, &ga, &gb)
}

/// Copies `items` into the two groups selected by the index sets.
fn split_by_indices<T: Clone>(items: &[T], ga: &[usize], gb: &[usize]) -> (Vec<T>, Vec<T>) {
    let a = ga.iter().map(|&i| items[i].clone()).collect();
    let b = gb.iter().map(|&i| items[i].clone()).collect();
    (a, b)
}

/// Chooses seed pair with maximal dead area, then assigns each remaining
/// rect to the group whose bounding rect grows least. Returns the index
/// sets of the two groups.
fn quadratic_split_indices(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Pick seeds: pair with the largest wasted area when combined.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut rect_a = rects[seed_a];
    let mut rect_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while let Some(pos) = pick_next(&remaining, &rect_a, &rect_b, rects) {
        let idx = remaining.swap_remove(pos);
        // Force balance so both groups reach MIN_ENTRIES.
        let need_a = MIN_ENTRIES.saturating_sub(group_a.len());
        let need_b = MIN_ENTRIES.saturating_sub(group_b.len());
        let left = remaining.len() + 1;
        let to_a = if left == need_a {
            true
        } else if left == need_b {
            false
        } else {
            let grow_a = rect_a.union(&rects[idx]).area() - rect_a.area();
            let grow_b = rect_b.union(&rects[idx]).area() - rect_b.area();
            grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len())
        };
        if to_a {
            group_a.push(idx);
            rect_a = rect_a.union(&rects[idx]);
        } else {
            group_b.push(idx);
            rect_b = rect_b.union(&rects[idx]);
        }
    }
    (group_a, group_b)
}

/// Guttman's PickNext: the rect with the greatest preference difference.
fn pick_next(remaining: &[usize], rect_a: &Rect, rect_b: &Rect, rects: &[Rect]) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, &idx) in remaining.iter().enumerate() {
        let grow_a = rect_a.union(&rects[idx]).area() - rect_a.area();
        let grow_b = rect_b.union(&rects[idx]).area() - rect_b.area();
        let diff = (grow_a - grow_b).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_within_leaf_mbr_is_in_place() {
        let mut t = RTree::new();
        for i in 0..20u64 {
            t.insert(i, Point::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0));
        }
        // Nudge every object slightly — stays inside leaf MBRs for most;
        // either path must keep queries exact.
        for i in 0..20u64 {
            let p = t.get(i).unwrap();
            let moved = Point::new(p.x + 0.5, p.y + 0.5);
            assert_eq!(t.update(i, moved), Some(p));
            assert_eq!(t.get(i), Some(moved));
        }
        let mut count = 0;
        t.query_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)), &mut |_| {
            count += 1
        });
        assert_eq!(count, 20);
        // A long-distance move must relocate, not stretch a stale MBR.
        let old = t.get(0).unwrap();
        assert_eq!(t.update(0, Point::new(500.0, 500.0)), Some(old));
        let mut hits = Vec::new();
        t.query_rect(&Rect::new(Point::new(499.0, 499.0), Point::new(501.0, 501.0)), &mut |e| {
            hits.push(e.key)
        });
        assert_eq!(hits, vec![0]);
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn update_absent_key_inserts() {
        let mut t = RTree::new();
        assert_eq!(t.update(3, Point::new(1.0, 1.0)), None);
        assert_eq!(t.get(3), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn split_indices_cover_all() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| {
                let p = Point::new(i as f64, (i * 3 % 7) as f64);
                Rect::new(p, p)
            })
            .collect();
        let (a, b) = quadratic_split_indices(&rects);
        assert!(a.len() >= MIN_ENTRIES);
        assert!(b.len() >= MIN_ENTRIES);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
