//! Conformance suite: every index must agree with the naive oracle under
//! randomized workloads of inserts, moves, removes and queries.

use hiloc_geo::{Circle, Point, Rect};
use hiloc_spatial::{Entry, GridIndex, NaiveIndex, PointQuadtree, RTree, SpatialIndex};
use hiloc_util::prop::{check, Gen};
use hiloc_util::rng::RngExt;

/// A step in a randomized index workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, f64, f64),
    /// The hot-path entry point: absolute-position move (teleport).
    Update(u64, f64, f64),
    /// A *local* move: the key's current position nudged by a small
    /// delta, which is what drives the in-place fast paths.
    Nudge(u64, f64, f64),
    Remove(u64),
    QueryRect(f64, f64, f64, f64),
    QueryCircle(f64, f64, f64),
    Nearest(f64, f64),
    NearestFiltered(f64, f64, u64),
    KNearest(f64, f64, usize),
}

/// Weighted as the original proptest strategy: 4 insert, 2 remove,
/// 2 rect query, 1 circle query, 2 nearest, 1 filtered nearest,
/// 1 k-nearest.
fn random_op(g: &mut Gen) -> Op {
    let coord = |g: &mut Gen| g.random_range(-100.0..100.0);
    match g.random_range(0..17u32) {
        0..=3 => {
            let k = g.random_range(0..40u64);
            let x = coord(g);
            let y = coord(g);
            Op::Insert(k, x, y)
        }
        13..=14 => {
            let k = g.random_range(0..40u64);
            let x = coord(g);
            let y = coord(g);
            Op::Update(k, x, y)
        }
        15..=16 => {
            let k = g.random_range(0..40u64);
            let dx = g.random_range(-3.0..3.0);
            let dy = g.random_range(-3.0..3.0);
            Op::Nudge(k, dx, dy)
        }
        4..=5 => Op::Remove(g.random_range(0..40u64)),
        6..=7 => {
            let a = coord(g);
            let b = coord(g);
            let c = coord(g);
            let d = coord(g);
            Op::QueryRect(a, b, c, d)
        }
        8 => {
            let x = coord(g);
            let y = coord(g);
            let r = g.random_range(0.5..80.0);
            Op::QueryCircle(x, y, r)
        }
        9..=10 => {
            let x = coord(g);
            let y = coord(g);
            Op::Nearest(x, y)
        }
        11 => {
            let x = coord(g);
            let y = coord(g);
            let k = g.random_range(0..40u64);
            Op::NearestFiltered(x, y, k)
        }
        _ => {
            let x = coord(g);
            let y = coord(g);
            let k = g.random_range(1..6usize);
            Op::KNearest(x, y, k)
        }
    }
}

fn random_ops(g: &mut Gen, max_len: usize) -> Vec<Op> {
    let n = g.random_range(1..max_len);
    (0..n).map(|_| random_op(g)).collect()
}

fn sorted_keys(mut v: Vec<u64>) -> Vec<u64> {
    v.sort();
    v
}

fn collect_rect(idx: &dyn SpatialIndex, rect: &Rect) -> Vec<u64> {
    let mut out = Vec::new();
    idx.query_rect(rect, &mut |e: Entry| out.push(e.key));
    sorted_keys(out)
}

fn collect_circle(idx: &dyn SpatialIndex, c: &Circle) -> Vec<u64> {
    let mut out = Vec::new();
    idx.query_circle(c, &mut |e: Entry| out.push(e.key));
    sorted_keys(out)
}

fn run_workload(ops: &[Op], mut subject: Box<dyn SpatialIndex>, name: &str) {
    let mut oracle = NaiveIndex::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, x, y) => {
                let p = Point::new(x, y);
                let a = subject.insert(k, p);
                let b = oracle.insert(k, p);
                assert_eq!(a, b, "[{name}] step {step}: insert return mismatch");
            }
            Op::Update(k, x, y) => {
                let p = Point::new(x, y);
                let a = subject.update(k, p);
                let b = oracle.insert(k, p);
                assert_eq!(a, b, "[{name}] step {step}: update return mismatch");
            }
            Op::Nudge(k, dx, dy) => {
                // Nudging the current position keeps most moves inside
                // their cell/region/MBR, exercising the in-place paths.
                let Some(cur) = oracle.get(k) else { continue };
                let p = Point::new(cur.x + dx, cur.y + dy);
                let a = subject.update(k, p);
                let b = oracle.insert(k, p);
                assert_eq!(a, b, "[{name}] step {step}: nudge return mismatch");
            }
            Op::Remove(k) => {
                let a = subject.remove(k);
                let b = oracle.remove(k);
                assert_eq!(a, b, "[{name}] step {step}: remove return mismatch");
            }
            Op::QueryRect(ax, ay, bx, by) => {
                let r = Rect::new(Point::new(ax, ay), Point::new(bx, by));
                assert_eq!(
                    collect_rect(subject.as_ref(), &r),
                    collect_rect(&oracle, &r),
                    "[{name}] step {step}: rect query mismatch on {r}"
                );
            }
            Op::QueryCircle(x, y, rad) => {
                let c = Circle::new(Point::new(x, y), rad);
                assert_eq!(
                    collect_circle(subject.as_ref(), &c),
                    collect_circle(&oracle, &c),
                    "[{name}] step {step}: circle query mismatch"
                );
            }
            Op::Nearest(x, y) => {
                let p = Point::new(x, y);
                let a = subject.nearest(p);
                let b = oracle.nearest(p);
                match (a, b) {
                    (None, None) => {}
                    (Some((ea, da)), Some((eb, db))) => {
                        assert_eq!(ea.key, eb.key, "[{name}] step {step}: nearest key mismatch");
                        assert!((da - db).abs() < 1e-9);
                    }
                    other => panic!("[{name}] step {step}: nearest presence mismatch {other:?}"),
                }
            }
            Op::NearestFiltered(x, y, excluded) => {
                let p = Point::new(x, y);
                let a = subject.nearest_where(p, &mut |k| k != excluded);
                let b = oracle.nearest_where(p, &mut |k| k != excluded);
                assert_eq!(
                    a.map(|(e, _)| e.key),
                    b.map(|(e, _)| e.key),
                    "[{name}] step {step}: filtered nearest mismatch"
                );
            }
            Op::KNearest(x, y, k) => {
                let p = Point::new(x, y);
                let a: Vec<u64> = subject
                    .k_nearest_where(p, k, &mut |_| true)
                    .iter()
                    .map(|(e, _)| e.key)
                    .collect();
                let b: Vec<u64> = oracle
                    .k_nearest_where(p, k, &mut |_| true)
                    .iter()
                    .map(|(e, _)| e.key)
                    .collect();
                assert_eq!(a, b, "[{name}] step {step}: k-nearest mismatch");
            }
        }
        assert_eq!(subject.len(), oracle.len(), "[{name}] step {step}: len mismatch");
    }
}

const CASES: u32 = 64;

#[test]
fn quadtree_matches_oracle() {
    check(CASES, |g| {
        let ops = random_ops(g, 120);
        run_workload(&ops, Box::new(PointQuadtree::new()), "quadtree");
    });
}

#[test]
fn rtree_matches_oracle() {
    check(CASES, |g| {
        let ops = random_ops(g, 120);
        run_workload(&ops, Box::new(RTree::new()), "rtree");
    });
}

#[test]
fn grid_matches_oracle() {
    check(CASES, |g| {
        let ops = random_ops(g, 120);
        run_workload(&ops, Box::new(GridIndex::new(25.0)), "grid");
    });
}

#[test]
fn grid_tiny_cells_matches_oracle() {
    check(CASES, |g| {
        let ops = random_ops(g, 80);
        run_workload(&ops, Box::new(GridIndex::new(3.0)), "grid-tiny");
    });
}

/// Deterministic bulk test at a scale proptest cases do not reach:
/// mirrors the paper's Table 1 population (uniform random objects), then
/// cross-checks a batch of queries on all three indexes.
#[test]
fn bulk_uniform_population_cross_check() {
    use hiloc_util::rng::StdRng;
    use hiloc_util::rng::{RngExt, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x1eca7);
    let mut quad = PointQuadtree::new();
    let mut rtree = RTree::new();
    let mut grid = GridIndex::new(500.0);
    let mut oracle = NaiveIndex::new();

    // 5 000 objects over a 10 km x 10 km area, with 20% later moved and
    // 10% removed — a miniature of the paper's data-storage workload.
    for k in 0..5_000u64 {
        let p = Point::new(rng.random_range(0.0..10_000.0), rng.random_range(0.0..10_000.0));
        for idx in [
            &mut quad as &mut dyn SpatialIndex,
            &mut rtree,
            &mut grid,
            &mut oracle,
        ] {
            idx.insert(k, p);
        }
    }
    for k in 0..1_000u64 {
        let p = Point::new(rng.random_range(0.0..10_000.0), rng.random_range(0.0..10_000.0));
        for idx in [
            &mut quad as &mut dyn SpatialIndex,
            &mut rtree,
            &mut grid,
            &mut oracle,
        ] {
            idx.insert(k * 5, p);
        }
    }
    for k in 0..500u64 {
        for idx in [
            &mut quad as &mut dyn SpatialIndex,
            &mut rtree,
            &mut grid,
            &mut oracle,
        ] {
            idx.remove(k * 10 + 1);
        }
    }

    for _ in 0..50 {
        let cx = rng.random_range(0.0..10_000.0);
        let cy = rng.random_range(0.0..10_000.0);
        let half = rng.random_range(5.0..800.0);
        let r = Rect::from_center_size(Point::new(cx, cy), half * 2.0, half * 2.0);
        let expect = collect_rect(&oracle, &r);
        assert_eq!(collect_rect(&quad, &r), expect, "quadtree rect");
        assert_eq!(collect_rect(&rtree, &r), expect, "rtree rect");
        assert_eq!(collect_rect(&grid, &r), expect, "grid rect");

        let p = Point::new(cx, cy);
        let expect_nn = oracle.nearest(p).map(|(e, _)| e.key);
        assert_eq!(quad.nearest(p).map(|(e, _)| e.key), expect_nn, "quadtree nn");
        assert_eq!(rtree.nearest(p).map(|(e, _)| e.key), expect_nn, "rtree nn");
        assert_eq!(grid.nearest(p).map(|(e, _)| e.key), expect_nn, "grid nn");
    }
}
