//! The checkpoint manifest: the durable root of the paged engine.
//!
//! A manifest is one self-contained, CRC-sealed file
//! (`checkpoint.bin`) recording, for checkpoint generation *g*:
//!
//! * every live key with the [`PageAddr`] and payload CRC of its
//!   record in `pages.bin`,
//! * the page allocator's state (page count, free list, pack tail),
//! * the tombstone tracker's per-page dead-byte counts.
//!
//! Commit protocol: page writes are fsynced first, then the manifest
//! is written to `checkpoint.tmp`, fsynced, renamed over
//! `checkpoint.bin`, and the directory is fsynced — the rename is the
//! atomic commit point. The WAL is only then reset and stamped with
//! generation *g*, so recovery can arbitrate (see
//! `DurableMap::open`): a WAL still carrying generation *g − 1* lost
//! power between the two steps, and every one of its records is
//! already covered by the manifest.
//!
//! A torn or bit-flipped manifest is **an error, not a repair**: the
//! WAL prefix it replaced is gone, so there is nothing to fall back
//! to. (A leftover `checkpoint.tmp` — a checkpoint that never reached
//! its commit point — is deleted silently; the previous manifest is
//! still the truth.)

use crate::page::PageAddr;
use crate::{crc32, StorageError};
use hiloc_util::buf::{Buf, BufMut};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic ("HCK1").
const MANIFEST_MAGIC: u32 = 0x4843_4B31;
/// Committed manifest file name.
pub const MANIFEST_FILE: &str = "checkpoint.bin";
/// Staging name; never read, deleted on open.
const MANIFEST_TMP: &str = "checkpoint.tmp";
/// Bytes per index entry: key + page + offset + len + crc.
const ENTRY_BYTES: usize = 8 + 4 + 2 + 4 + 4;

/// In-memory image of one checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint generation (monotonic, matches the WAL header).
    pub generation: u64,
    /// Live keys with their page addresses and payload CRCs, in
    /// ascending key order.
    pub entries: Vec<(u64, PageAddr, u32)>,
    /// Pages the page file holds.
    pub num_pages: u32,
    /// Wholly free pages.
    pub free: BTreeSet<u32>,
    /// The pack page and its fill offset, when one is open.
    pub tail: Option<(u32, u32)>,
    /// Tombstoned bytes per page.
    pub dead: BTreeMap<u32, u32>,
}

fn encode(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + m.entries.len() * ENTRY_BYTES);
    out.put_u32_le(MANIFEST_MAGIC);
    out.put_u64_le(m.generation);
    out.put_u32_le(m.num_pages);
    out.put_u64_le(m.entries.len() as u64);
    for (key, addr, crc) in &m.entries {
        out.put_u64_le(*key);
        out.put_u32_le(addr.page);
        out.put_u16_le(addr.offset);
        out.put_u32_le(addr.len);
        out.put_u32_le(*crc);
    }
    out.put_u32_le(m.free.len() as u32);
    for &page in &m.free {
        out.put_u32_le(page);
    }
    match m.tail {
        Some((page, fill)) => {
            out.put_u8(1);
            out.put_u32_le(page);
            out.put_u32_le(fill);
        }
        None => out.put_u8(0),
    }
    out.put_u32_le(m.dead.len() as u32);
    for (&page, &bytes) in &m.dead {
        out.put_u32_le(page);
        out.put_u32_le(bytes);
    }
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out
}

fn decode(raw: &[u8]) -> Result<Manifest, StorageError> {
    let corrupt = |reason| StorageError::Corrupt { offset: 0, reason };
    if raw.len() < 4 + 8 + 4 + 8 + 4 {
        return Err(corrupt("manifest too short"));
    }
    let (body, crc_bytes) = raw.split_at(raw.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(corrupt("manifest checksum mismatch"));
    }
    let mut buf = body;
    if buf.get_u32_le() != MANIFEST_MAGIC {
        return Err(corrupt("bad manifest magic"));
    }
    let generation = buf.get_u64_le();
    let num_pages = buf.get_u32_le();
    let entry_count = buf.get_u64_le();
    if (entry_count as usize).checked_mul(ENTRY_BYTES).is_none_or(|n| n > buf.remaining()) {
        return Err(corrupt("manifest entry count exceeds file size"));
    }
    let mut entries = Vec::with_capacity(entry_count as usize);
    for _ in 0..entry_count {
        let key = buf.get_u64_le();
        let page = buf.get_u32_le();
        let offset = buf.get_u16_le();
        let len = buf.get_u32_le();
        let crc = buf.get_u32_le();
        entries.push((key, PageAddr { page, offset, len }, crc));
    }
    if buf.remaining() < 4 {
        return Err(corrupt("manifest free list truncated"));
    }
    let free_count = buf.get_u32_le();
    if (free_count as usize).checked_mul(4).is_none_or(|n| n > buf.remaining()) {
        return Err(corrupt("manifest free list truncated"));
    }
    let mut free = BTreeSet::new();
    for _ in 0..free_count {
        free.insert(buf.get_u32_le());
    }
    if buf.remaining() < 1 {
        return Err(corrupt("manifest tail truncated"));
    }
    let tail = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 8 {
                return Err(corrupt("manifest tail truncated"));
            }
            Some((buf.get_u32_le(), buf.get_u32_le()))
        }
        _ => return Err(corrupt("bad manifest tail flag")),
    };
    if buf.remaining() < 4 {
        return Err(corrupt("manifest dead map truncated"));
    }
    let dead_count = buf.get_u32_le();
    if (dead_count as usize).checked_mul(8).is_none_or(|n| n > buf.remaining()) {
        return Err(corrupt("manifest dead map truncated"));
    }
    let mut dead = BTreeMap::new();
    for _ in 0..dead_count {
        let page = buf.get_u32_le();
        let bytes = buf.get_u32_le();
        dead.insert(page, bytes);
    }
    if buf.remaining() != 0 {
        return Err(corrupt("manifest trailing bytes"));
    }
    Ok(Manifest { generation, entries, num_pages, free, tail, dead })
}

/// Loads the committed manifest, or `None` when no checkpoint was
/// ever taken. A leftover staging file is removed.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] when the manifest fails its
/// checksum or structure checks — the pre-checkpoint WAL is gone, so
/// a damaged manifest is unrecoverable data loss, never silently an
/// empty database.
pub fn load(dir: &Path) -> Result<Option<Manifest>, StorageError> {
    let _ = fs::remove_file(dir.join(MANIFEST_TMP));
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let raw = fs::read(&path)?;
    decode(&raw).map(Some)
}

/// Writes and commits a manifest: staging file, fsync, rename,
/// directory fsync.
///
/// # Errors
///
/// Returns an error on I/O failure; the previous manifest stays
/// committed in that case.
pub fn write(dir: &Path, m: &Manifest) -> Result<(), StorageError> {
    let tmp = dir.join(MANIFEST_TMP);
    let dst = dir.join(MANIFEST_FILE);
    let encoded = encode(m);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&encoded)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &dst)?;
    // The rename itself must survive power loss: fsync the directory.
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::tests::TempDir;

    fn sample() -> Manifest {
        Manifest {
            generation: 9,
            entries: vec![
                (1, PageAddr { page: 0, offset: 0, len: 40 }, 0xDEAD),
                (7, PageAddr { page: 0, offset: 40, len: 3 }, 0xBEEF),
                (9, PageAddr { page: 2, offset: 0, len: 9000 }, 0xF00D),
            ],
            num_pages: 5,
            free: [1].into_iter().collect(),
            tail: Some((4, 43)),
            dead: [(0, 12)].into_iter().collect(),
        }
    }

    #[test]
    fn round_trips() {
        let dir = TempDir::new("ckpt-rt");
        assert!(load(dir.path()).unwrap().is_none(), "no checkpoint yet");
        write(dir.path(), &sample()).unwrap();
        assert_eq!(load(dir.path()).unwrap().unwrap(), sample());
    }

    #[test]
    fn empty_manifest_round_trips() {
        let dir = TempDir::new("ckpt-empty");
        let m = Manifest {
            generation: 1,
            entries: Vec::new(),
            num_pages: 0,
            free: BTreeSet::new(),
            tail: None,
            dead: BTreeMap::new(),
        };
        write(dir.path(), &m).unwrap();
        assert_eq!(load(dir.path()).unwrap().unwrap(), m);
    }

    #[test]
    fn stale_staging_file_is_removed_and_ignored() {
        let dir = TempDir::new("ckpt-tmp");
        write(dir.path(), &sample()).unwrap();
        fs::write(dir.path().join(MANIFEST_TMP), b"half a newer checkpoint").unwrap();
        assert_eq!(load(dir.path()).unwrap().unwrap(), sample());
        assert!(!dir.path().join(MANIFEST_TMP).exists());
    }

    #[test]
    fn truncation_at_every_offset_is_an_error_never_a_partial_load() {
        let dir = TempDir::new("ckpt-torn");
        write(dir.path(), &sample()).unwrap();
        let full = fs::read(dir.path().join(MANIFEST_FILE)).unwrap();
        for cut in 0..full.len() {
            fs::write(dir.path().join(MANIFEST_FILE), &full[..cut]).unwrap();
            match load(dir.path()) {
                Err(StorageError::Corrupt { .. }) => {}
                other => panic!("cut at byte {cut}: expected Corrupt, got {other:?}"),
            }
        }
        fs::write(dir.path().join(MANIFEST_FILE), &full).unwrap();
        assert_eq!(load(dir.path()).unwrap().unwrap(), sample(), "untruncated file loads");
    }

    #[test]
    fn bit_flips_are_detected() {
        let dir = TempDir::new("ckpt-flip");
        write(dir.path(), &sample()).unwrap();
        let full = fs::read(dir.path().join(MANIFEST_FILE)).unwrap();
        for pos in 0..full.len() {
            let mut bad = full.clone();
            bad[pos] ^= 0x40;
            fs::write(dir.path().join(MANIFEST_FILE), &bad).unwrap();
            assert!(
                matches!(load(dir.path()), Err(StorageError::Corrupt { .. })),
                "flip at byte {pos} went undetected"
            );
        }
    }
}
