//! CRC-32 (ISO-HDLC polynomial), table-driven.
//!
//! Implemented locally so the storage layer has no external checksum
//! dependency; matches the standard `crc32` used by zlib/PNG, which
//! makes log files externally inspectable.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Computes the CRC-32 (ISO-HDLC / zlib) checksum of `data`.
///
/// # Example
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(hiloc_storage::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let data = vec![0xA5u8; 4096];
        assert_eq!(crc32(&data), crc32(&data));
    }
}
