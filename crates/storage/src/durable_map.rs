//! Durable key→value map: write-ahead log + checkpointed page store.
//!
//! This is the embedded substitute for the paper's DB2-backed visitor
//! database: every mutation is logged before it is acknowledged, and a
//! checkpoint bounds both recovery time and disk usage.
//!
//! # Engine layout
//!
//! Three files per map directory:
//!
//! * `wal.log` — the write-ahead log (see `wal.rs`). Holds only the
//!   mutations since the last checkpoint; truncated at every
//!   checkpoint and stamped with the checkpoint's generation.
//! * `pages.bin` — fixed-size pages holding the checkpointed ("cold")
//!   records (see `page.rs`), with a free-list allocator and tombstoned
//!   dead space reclaimed by compaction (see `tombstone.rs`).
//! * `checkpoint.bin` — the CRC-sealed manifest: the key→page index,
//!   the allocator state and the dead-space counts (see
//!   `checkpoint.rs`).
//!
//! In memory the map keeps one [`Slot`] per key: **hot** entries
//! (mutated since the last checkpoint) hold their value; **cold**
//! entries hold only a page address, their bytes living on disk and
//! read back through a small page cache. Recovery is *load the
//! manifest index + replay the WAL suffix* — its cost follows the live
//! state and the suffix length, never the total history.

use crate::checkpoint::{self, Manifest};
use crate::page::{PageAddr, PageStore};
use crate::tombstone::DeadSpace;
use crate::{crc32, StorageError, Wal};
use hiloc_util::buf::{Buf, BufMut};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// How aggressively the map makes writes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every mutation — full durability, the paper's
    /// "persistent registration information" contract.
    #[default]
    Always,
    /// Flush to the OS after every mutation, fsync only on checkpoint
    /// and close. Survives process crashes but not power loss.
    OsFlush,
    /// Buffer writes; flush on checkpoint/close only. For benchmarks.
    Buffered,
}

/// A value that can live in a [`DurableMap`].
pub trait RecordValue: Sized + Clone {
    /// Appends the encoded value to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value from `buf`, or `None` when malformed.
    fn decode(buf: &[u8]) -> Option<Self>;
}

impl RecordValue for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(buf: &[u8]) -> Option<Self> {
        Some(buf.to_vec())
    }
}

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
/// A multi-mutation record: applied all-or-nothing on replay (a torn
/// tail drops the whole record, never a prefix of its mutations).
const OP_BATCH: u8 = 3;

/// WAL bytes that trigger an automatic checkpoint (unless overridden
/// via [`DurableMap::set_auto_checkpoint`]): the log stays bounded
/// over weeks of uptime without any caller-side compaction schedule.
pub const DEFAULT_AUTO_CHECKPOINT_BYTES: u64 = 8 * 1024 * 1024;

/// One mutation of an atomic batch (see [`DurableMap::apply_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp<V> {
    /// Insert or replace `key`.
    Put(u64, V),
    /// Remove `key`.
    Del(u64),
}

/// Runtime statistics of a [`DurableMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableMapStats {
    /// Mutations applied since open.
    pub mutations: u64,
    /// Records replayed from the WAL at open (the suffix since the
    /// last checkpoint — never the whole history).
    pub replayed: u64,
    /// Entries indexed from the checkpoint manifest at open.
    pub snapshot_loaded: u64,
    /// Checkpoints written since open (explicit and automatic).
    pub snapshots_written: u64,
    /// Cold records read back from the page file since open.
    pub cold_reads: u64,
}

/// One key's state: mutated since the last checkpoint (value in
/// memory) or checkpointed (value on a page, CRC-sealed).
#[derive(Debug, Clone)]
enum Slot<V> {
    Hot(V),
    Cold(PageAddr, u32),
}

/// A crash-safe `u64 → V` map backed by a WAL, a paged cold store and
/// checkpoint manifests.
///
/// * `insert`/`remove` append to the WAL (durability per
///   [`SyncPolicy`]) and update the in-memory index.
/// * [`DurableMap::compact`] takes a checkpoint: hot entries are
///   flushed to pages, condemned pages are rewritten, the manifest is
///   committed atomically (`tmp` + fsync + rename + dir fsync) and the
///   WAL truncates behind it. Runs automatically once the WAL passes
///   the auto-checkpoint threshold.
/// * [`DurableMap::open`] loads the manifest index, arbitrates the
///   WAL's generation against the manifest's and replays only the WAL
///   suffix, streaming record by record.
///
/// # Example
///
/// ```no_run
/// use hiloc_storage::{DurableMap, SyncPolicy};
///
/// # fn main() -> Result<(), hiloc_storage::StorageError> {
/// let mut db: DurableMap<Vec<u8>> = DurableMap::open("/tmp/hiloc-visitors", SyncPolicy::OsFlush)?;
/// db.insert(42, b"forward-ref:child-3".to_vec())?;
/// db.compact()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DurableMap<V: RecordValue> {
    dir: PathBuf,
    wal: Wal,
    index: BTreeMap<u64, Slot<V>>,
    pages: PageStore,
    dead: DeadSpace,
    /// Extent pages whose records died since the last checkpoint.
    /// They are still referenced by the *durable* manifest, so they
    /// must not be reused (or truncated) until the next checkpoint
    /// commits a manifest that records them as free.
    pending_free: BTreeSet<u32>,
    /// Current checkpoint generation (0 before the first checkpoint).
    generation: u64,
    policy: SyncPolicy,
    stats: DurableMapStats,
    /// Group-commit mode: while active, `SyncPolicy::Always` degrades
    /// each mutation's fsync to an OS flush; the deferred fsync happens
    /// once in [`DurableMap::end_group_commit`].
    group_commit: bool,
    /// Whether any mutation deferred a sync since the group began.
    sync_pending: bool,
    /// Automatic checkpoint threshold on WAL record bytes, or `None`
    /// to checkpoint only on explicit [`DurableMap::compact`] calls.
    auto_checkpoint_bytes: Option<u64>,
}

impl<V: RecordValue> DurableMap<V> {
    /// Opens (creating if needed) a durable map stored in directory
    /// `dir`, recovering state from `checkpoint.bin` + `pages.bin` +
    /// `wal.log`.
    ///
    /// Generation arbitration: a WAL stamped with the manifest's
    /// generation is the post-checkpoint suffix and is replayed; a WAL
    /// one generation *behind* lost power between the manifest commit
    /// and the WAL truncation — every record in it is already covered
    /// by the manifest, so it is discarded, not replayed; a WAL *ahead*
    /// of the manifest means the committed manifest was lost, which is
    /// unrecoverable.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a corrupt/lost checkpoint. A
    /// corrupt WAL *tail* is repaired silently (crash recovery);
    /// corrupt WAL entries before the tail are impossible by
    /// construction.
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut stats = DurableMapStats::default();

        let manifest = checkpoint::load(&dir)?;
        let mut pages = PageStore::open(dir.join("pages.bin"))?;
        let mut index: BTreeMap<u64, Slot<V>> = BTreeMap::new();
        let mut dead = DeadSpace::new();
        let generation = match manifest {
            Some(m) => {
                pages.restore(m.num_pages, m.free, m.tail)?;
                dead = DeadSpace::from_pairs(m.dead);
                stats.snapshot_loaded = m.entries.len() as u64;
                for (key, addr, crc) in m.entries {
                    index.insert(key, Slot::Cold(addr, crc));
                }
                m.generation
            }
            None => {
                pages.restore(0, BTreeSet::new(), None)?;
                0
            }
        };
        // Trailing free pages can be trimmed right away: the loaded
        // manifest is the only one that exists, and it does not
        // reference them.
        pages.shrink(&BTreeSet::new())?;

        let (mut wal, mut replay) = Wal::open(dir.join("wal.log"))?;
        let mut pending_free = BTreeSet::new();
        if wal.generation() == generation {
            while let Some(rec) = replay.next_record()? {
                apply_record::<V>(&mut index, &mut dead, &mut pending_free, rec).ok_or(
                    StorageError::Corrupt { offset: 0, reason: "undecodable WAL record" },
                )?;
                stats.replayed += 1;
            }
        } else if wal.generation() < generation {
            // Power loss between the manifest commit and the WAL
            // truncation: the stale log is fully covered by the
            // manifest. Finish the interrupted truncation now.
            drop(replay);
            wal.reset(generation)?;
        } else {
            return Err(StorageError::Corrupt {
                offset: 0,
                reason: "WAL generation ahead of the checkpoint manifest",
            });
        }

        Ok(DurableMap {
            dir,
            wal,
            index,
            pages,
            dead,
            pending_free,
            generation,
            policy,
            stats,
            group_commit: false,
            sync_pending: false,
            auto_checkpoint_bytes: Some(DEFAULT_AUTO_CHECKPOINT_BYTES),
        })
    }

    /// Inserts or replaces the value for `key`. The mutation is logged
    /// before the in-memory index changes.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails; the in-memory state
    /// is untouched in that case.
    pub fn insert(&mut self, key: u64, value: V) -> Result<(), StorageError> {
        let mut payload = Vec::with_capacity(16);
        payload.put_u8(OP_PUT);
        payload.put_u64_le(key);
        value.encode(&mut payload);
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += 1;
        let old = self.index.insert(key, Slot::Hot(value));
        self.note_dead(old);
        self.maybe_auto_checkpoint()
    }

    /// Removes `key`, returning whether it was present. The old bytes
    /// are tombstoned, to be reclaimed when their page is compacted.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails.
    pub fn remove(&mut self, key: u64) -> Result<bool, StorageError> {
        if !self.index.contains_key(&key) {
            return Ok(false);
        }
        let mut payload = Vec::with_capacity(9);
        payload.put_u8(OP_DEL);
        payload.put_u64_le(key);
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += 1;
        let old = self.index.remove(&key);
        self.note_dead(old);
        self.maybe_auto_checkpoint()?;
        Ok(true)
    }

    /// Applies several mutations **atomically**: the whole batch is one
    /// CRC-framed WAL record, so crash recovery replays either all of
    /// it or none of it — a torn tail can never expose a prefix of the
    /// batch. One durability round (a single fsync under
    /// [`SyncPolicy::Always`]) covers every mutation: group commit.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails; the in-memory state
    /// is untouched in that case.
    pub fn apply_batch(&mut self, ops: Vec<BatchOp<V>>) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(16 + ops.len() * 24);
        payload.put_u8(OP_BATCH);
        payload.put_u32_le(ops.len() as u32);
        for op in &ops {
            match op {
                BatchOp::Put(key, value) => {
                    payload.put_u8(OP_PUT);
                    payload.put_u64_le(*key);
                    // Reserve the length slot, encode in place, then
                    // backpatch — no temp allocation per value.
                    let len_at = payload.len();
                    payload.put_u32_le(0);
                    let val_at = payload.len();
                    value.encode(&mut payload);
                    let len = (payload.len() - val_at) as u32;
                    payload[len_at..val_at].copy_from_slice(&len.to_le_bytes());
                }
                BatchOp::Del(key) => {
                    payload.put_u8(OP_DEL);
                    payload.put_u64_le(*key);
                }
            }
        }
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += ops.len() as u64;
        for op in ops {
            match op {
                BatchOp::Put(key, value) => {
                    let old = self.index.insert(key, Slot::Hot(value));
                    self.note_dead(old);
                }
                BatchOp::Del(key) => {
                    let old = self.index.remove(&key);
                    self.note_dead(old);
                }
            }
        }
        self.maybe_auto_checkpoint()
    }

    /// Enters group-commit mode: until
    /// [`DurableMap::end_group_commit`], mutations under
    /// [`SyncPolicy::Always`] flush to the OS but defer the fsync.
    /// Used to amortize durability cost over a message batch — callers
    /// must not acknowledge anything before ending the group.
    pub fn begin_group_commit(&mut self) {
        self.group_commit = true;
    }

    /// Leaves group-commit mode, performing the single deferred fsync
    /// when any mutation was logged during the group.
    ///
    /// # Errors
    ///
    /// Returns an error when the sync fails.
    pub fn end_group_commit(&mut self) -> Result<(), StorageError> {
        self.group_commit = false;
        if std::mem::take(&mut self.sync_pending) {
            self.wal.sync()?;
        }
        self.maybe_auto_checkpoint()
    }

    /// The value for `key`, when present. Hot values are cloned from
    /// memory; cold values are read back from the page file (through
    /// the page cache) and checksum-verified.
    ///
    /// # Errors
    ///
    /// Returns an error when a cold read fails or the stored bytes are
    /// corrupt.
    pub fn get(&mut self, key: u64) -> Result<Option<V>, StorageError> {
        match self.index.get(&key) {
            None => Ok(None),
            Some(Slot::Hot(v)) => Ok(Some(v.clone())),
            Some(&Slot::Cold(addr, crc)) => self.read_cold(addr, crc).map(Some),
        }
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All keys in ascending order (index-only — no page reads).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Entries checkpointed to the page file (as opposed to hot ones
    /// held in memory).
    pub fn cold_entries(&self) -> usize {
        self.index.values().filter(|s| matches!(s, Slot::Cold(..))).count()
    }

    /// Visits every `(key, value)` pair in ascending key order,
    /// streaming cold records back from the page file one page at a
    /// time — the recovery path callers use to rebuild their in-memory
    /// tier without the map ever holding every value at once.
    ///
    /// # Errors
    ///
    /// Returns an error when a cold read fails or stored bytes are
    /// corrupt.
    pub fn for_each(&mut self, mut f: impl FnMut(u64, &V)) -> Result<(), StorageError> {
        let mut buf = Vec::new();
        for (&key, slot) in self.index.iter() {
            match slot {
                Slot::Hot(v) => f(key, v),
                Slot::Cold(addr, crc) => {
                    self.pages.read(addr, &mut buf)?;
                    if crc32(&buf) != *crc {
                        return Err(StorageError::Corrupt {
                            offset: 0,
                            reason: "cold record checksum mismatch",
                        });
                    }
                    let v = V::decode(&buf).ok_or(StorageError::Corrupt {
                        offset: 0,
                        reason: "undecodable cold record",
                    })?;
                    self.stats.cold_reads += 1;
                    f(key, &v);
                }
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> DurableMapStats {
        self.stats
    }

    /// Record bytes currently in the WAL (drives the auto-checkpoint
    /// heuristic; 0 right after a checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.data_bytes()
    }

    /// The current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pages the cold store currently holds (disk usage =
    /// `num_pages × 4096` + WAL + manifest).
    pub fn num_pages(&self) -> u32 {
        self.pages.num_pages()
    }

    /// Overrides the automatic checkpoint threshold (WAL record bytes;
    /// `None` disables automatic checkpoints entirely).
    pub fn set_auto_checkpoint(&mut self, bytes: Option<u64>) {
        self.auto_checkpoint_bytes = bytes;
    }

    /// The power-loss recovery points: for each of the map's files,
    /// the number of bytes guaranteed on stable storage. A simulator
    /// models power loss (as opposed to a process crash, which flushes
    /// buffers on drop) by truncating each file to its offset *after*
    /// dropping this map. The WAL point moves with [`Wal::sync`]; the
    /// page-store point moves with the checkpoint's page fsync; the
    /// manifest is rename-committed, so its point is always its full
    /// length.
    pub fn power_loss_points(&self) -> Vec<(PathBuf, u64)> {
        let mut points = vec![
            (self.wal.path().to_path_buf(), self.wal.synced_bytes()),
            (self.pages.path().to_path_buf(), self.pages.synced_len()),
        ];
        let manifest = self.dir.join(checkpoint::MANIFEST_FILE);
        if let Ok(meta) = fs::metadata(&manifest) {
            points.push((manifest, meta.len()));
        }
        points
    }

    /// Takes a checkpoint: rewrites condemned pages, flushes every hot
    /// entry to the page file, commits a new manifest atomically and
    /// truncates the WAL behind it. Afterwards every entry is cold and
    /// recovery replays nothing.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure; the previous checkpoint (and
    /// the WAL) remain intact in that case.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        // 1. Condemned pages (≥ half dead): read their survivors back
        //    so they rewrite into fresh pages and the page can be
        //    freed.
        let condemned = self.dead.condemned();
        if !condemned.is_empty() {
            // A condemned tail must stop accepting records *now*: the
            // flush below would otherwise pack into a page this very
            // checkpoint records as free.
            if let Some((tail_page, _)) = self.pages.tail() {
                if condemned.binary_search(&tail_page).is_ok() {
                    self.pages.drop_tail();
                }
            }
            self.rehome_page_records(|addr| condemned.binary_search(&addr.page).is_ok())?;
        }

        // 1b. Pull-down: when free pages sit below the highest live
        //     pack page, trailing truncation alone can never reclaim
        //     the gap. Re-home that one page per checkpoint — the
        //     highest live page index decreases monotonically, so
        //     repeated checkpoints converge on a dense file.
        let mut pulled = None;
        let highest_live = self
            .index
            .values()
            .filter_map(|slot| match slot {
                Slot::Cold(addr, _) if !addr.is_extent() => Some(addr.page),
                _ => None,
            })
            .max();
        if let (Some(hi), Some(&lo)) = (highest_live, self.pages.free_pages().iter().next()) {
            if lo < hi {
                if self.pages.tail().is_some_and(|(tail_page, _)| tail_page == hi) {
                    self.pages.drop_tail();
                }
                self.rehome_page_records(|addr| addr.page == hi)?;
                pulled = Some(hi);
            }
        }

        // 2. Flush the hot tier: only entries mutated (or re-homed)
        //    since the last checkpoint touch the disk — checkpoint
        //    cost follows the delta, not the database size.
        let mut buf = Vec::new();
        for slot in self.index.values_mut() {
            if let Slot::Hot(v) = slot {
                buf.clear();
                v.encode(&mut buf);
                let addr = self.pages.place(buf.len() as u32, &mut self.dead);
                self.pages.write(&addr, &buf)?;
                *slot = Slot::Cold(addr, crc32(&buf));
            }
        }

        // 3. Free what this checkpoint made unreferenced. These pages
        //    are still referenced by the *old* manifest, so they were
        //    not reused above and must not be truncated below.
        let mut protect = std::mem::take(&mut self.pending_free);
        protect.extend(condemned.iter().copied());
        protect.extend(pulled);
        for &page in &protect {
            self.pages.free_page(page);
        }
        for &page in condemned.iter().chain(pulled.iter()) {
            self.dead.clear_page(page);
        }
        self.pages.shrink(&protect)?;

        // 4. Commit: pages first, then the manifest, then the WAL —
        //    the ordering the generation arbitration in `open` relies
        //    on.
        self.pages.sync()?;
        let manifest = Manifest {
            generation: self.generation + 1,
            entries: self
                .index
                .iter()
                .map(|(&k, slot)| match slot {
                    Slot::Cold(addr, crc) => (k, *addr, *crc),
                    Slot::Hot(_) => unreachable!("hot entries were flushed above"),
                })
                .collect(),
            num_pages: self.pages.num_pages(),
            free: self.pages.free_pages().clone(),
            tail: self.pages.tail(),
            dead: self.dead.iter().collect(),
        };
        checkpoint::write(&self.dir, &manifest)?;
        self.wal.reset(self.generation + 1)?;
        self.generation += 1;
        self.stats.snapshots_written += 1;
        Ok(())
    }

    /// Flushes and fsyncs outstanding writes regardless of policy.
    ///
    /// # Errors
    ///
    /// Returns an error when syncing fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Reads every packed record whose address matches `doomed` back
    /// into the hot tier, so the next flush rewrites it elsewhere and
    /// its old page can be freed.
    fn rehome_page_records(
        &mut self,
        doomed: impl Fn(&PageAddr) -> bool,
    ) -> Result<(), StorageError> {
        let victims: Vec<(u64, PageAddr, u32)> = self
            .index
            .iter()
            .filter_map(|(&k, slot)| match slot {
                Slot::Cold(addr, crc) if !addr.is_extent() && doomed(addr) => {
                    Some((k, *addr, *crc))
                }
                _ => None,
            })
            .collect();
        for (key, addr, crc) in victims {
            let v = self.read_cold(addr, crc)?;
            self.index.insert(key, Slot::Hot(v));
        }
        Ok(())
    }

    fn read_cold(&mut self, addr: PageAddr, crc: u32) -> Result<V, StorageError> {
        let mut buf = Vec::with_capacity(addr.len as usize);
        self.pages.read(&addr, &mut buf)?;
        if crc32(&buf) != crc {
            return Err(StorageError::Corrupt {
                offset: 0,
                reason: "cold record checksum mismatch",
            });
        }
        self.stats.cold_reads += 1;
        V::decode(&buf)
            .ok_or(StorageError::Corrupt { offset: 0, reason: "undecodable cold record" })
    }

    /// Accounts for a replaced or removed slot: cold pack bytes are
    /// tombstoned; cold extents queue their pages for release at the
    /// next checkpoint commit.
    fn note_dead(&mut self, old: Option<Slot<V>>) {
        if let Some(Slot::Cold(addr, _)) = old {
            if addr.is_extent() {
                for page in addr.page..addr.page + addr.extent_pages() {
                    self.pending_free.insert(page);
                }
            } else {
                self.dead.add(addr.page, addr.len);
            }
        }
    }

    fn maybe_auto_checkpoint(&mut self) -> Result<(), StorageError> {
        if self.group_commit {
            return Ok(());
        }
        if let Some(threshold) = self.auto_checkpoint_bytes {
            if self.wal.data_bytes() >= threshold {
                self.compact()?;
            }
        }
        Ok(())
    }

    fn apply_policy(&mut self) -> Result<(), StorageError> {
        match self.policy {
            SyncPolicy::Always if self.group_commit => {
                self.sync_pending = true;
                self.wal.flush()
            }
            SyncPolicy::Always => self.wal.sync(),
            SyncPolicy::OsFlush => self.wal.flush(),
            SyncPolicy::Buffered => Ok(()),
        }
    }
}

/// Replays one WAL record into the index. Mutations mirror the live
/// paths exactly: overwritten or deleted cold entries tombstone their
/// bytes, dead extents queue for release.
fn apply_record<V: RecordValue>(
    index: &mut BTreeMap<u64, Slot<V>>,
    dead: &mut DeadSpace,
    pending_free: &mut BTreeSet<u32>,
    rec: &[u8],
) -> Option<()> {
    let mut note_dead = |old: Option<Slot<V>>, dead: &mut DeadSpace| {
        if let Some(Slot::Cold(addr, _)) = old {
            if addr.is_extent() {
                for page in addr.page..addr.page + addr.extent_pages() {
                    pending_free.insert(page);
                }
            } else {
                dead.add(addr.page, addr.len);
            }
        }
    };
    let mut buf = rec;
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        OP_PUT => {
            if buf.remaining() < 8 {
                return None;
            }
            let key = buf.get_u64_le();
            let value = V::decode(buf)?;
            let old = index.insert(key, Slot::Hot(value));
            note_dead(old, dead);
            Some(())
        }
        OP_DEL => {
            if buf.remaining() < 8 {
                return None;
            }
            let key = buf.get_u64_le();
            let old = index.remove(&key);
            note_dead(old, dead);
            Some(())
        }
        OP_BATCH => {
            if buf.remaining() < 4 {
                return None;
            }
            let count = buf.get_u32_le();
            // Decode the whole batch before touching the index: a
            // record that fails half-way must not apply a prefix.
            let mut staged: Vec<BatchOp<V>> = Vec::with_capacity(count as usize);
            for _ in 0..count {
                if buf.remaining() < 9 {
                    return None;
                }
                let op = buf.get_u8();
                let key = buf.get_u64_le();
                match op {
                    OP_PUT => {
                        if buf.remaining() < 4 {
                            return None;
                        }
                        let len = buf.get_u32_le() as usize;
                        if buf.remaining() < len {
                            return None;
                        }
                        let value = V::decode(&buf[..len])?;
                        buf.advance(len);
                        staged.push(BatchOp::Put(key, value));
                    }
                    OP_DEL => staged.push(BatchOp::Del(key)),
                    _ => return None,
                }
            }
            for op in staged {
                match op {
                    BatchOp::Put(key, value) => {
                        let old = index.insert(key, Slot::Hot(value));
                        note_dead(old, dead);
                    }
                    BatchOp::Del(key) => {
                        let old = index.remove(&key);
                        note_dead(old, dead);
                    }
                }
            }
            Some(())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::wal::tests::TempDir;

    fn open(dir: &TempDir) -> DurableMap<Vec<u8>> {
        DurableMap::open(dir.path(), SyncPolicy::OsFlush).unwrap()
    }

    fn get(db: &mut DurableMap<Vec<u8>>, key: u64) -> Option<Vec<u8>> {
        db.get(key).unwrap()
    }

    #[test]
    fn basic_crud_and_recovery() {
        let dir = TempDir::new("crud");
        {
            let mut db = open(&dir);
            db.insert(1, b"one".to_vec()).unwrap();
            db.insert(1, b"uno".to_vec()).unwrap();
            db.insert(2, b"two".to_vec()).unwrap();
            assert!(db.remove(2).unwrap());
            assert!(!db.remove(99).unwrap(), "removing an absent key is a no-op");
            db.sync().unwrap();
        }
        let mut db = open(&dir);
        assert_eq!(db.len(), 1);
        assert_eq!(get(&mut db, 1).unwrap(), b"uno");
        assert!(get(&mut db, 2).is_none());
        assert_eq!(db.stats().replayed, 4);
    }

    #[test]
    fn checkpoint_plus_wal_suffix_recovery() {
        let dir = TempDir::new("snap");
        {
            let mut db = open(&dir);
            for k in 0..100u64 {
                db.insert(k, vec![k as u8; 8]).unwrap();
            }
            db.compact().unwrap();
            // Post-checkpoint mutations live only in the WAL.
            db.insert(200, b"tail".to_vec()).unwrap();
            db.remove(5).unwrap();
            db.sync().unwrap();
        }
        let mut db = open(&dir);
        assert_eq!(db.len(), 100); // 100 - 1 removed + 1 added
        assert_eq!(db.stats().snapshot_loaded, 100);
        assert_eq!(db.stats().replayed, 2, "only the WAL suffix replays");
        assert_eq!(db.cold_entries(), 99, "checkpointed entries stay cold on recovery");
        assert!(get(&mut db, 5).is_none());
        assert_eq!(get(&mut db, 200).unwrap(), b"tail");
    }

    #[test]
    fn restart_after_checkpoint_replays_only_the_suffix() {
        // The acceptance assertion: the pre-checkpoint WAL prefix is
        // gone from disk and recovery touches only the suffix.
        let dir = TempDir::new("suffix");
        let wal_after_history;
        {
            let mut db = open(&dir);
            for k in 0..500u64 {
                db.insert(k, vec![0xAB; 16]).unwrap();
            }
            db.sync().unwrap();
            wal_after_history = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
            db.compact().unwrap();
            db.insert(1000, b"suffix-1".to_vec()).unwrap();
            db.insert(1001, b"suffix-2".to_vec()).unwrap();
            db.sync().unwrap();
        }
        let wal_now = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
        assert!(
            wal_now < wal_after_history / 10,
            "the pre-checkpoint prefix must be truncated on disk \
             ({wal_now} bytes left of {wal_after_history})"
        );
        let db = open(&dir);
        assert_eq!(db.stats().replayed, 2, "recovery replays exactly the post-checkpoint suffix");
        assert_eq!(db.stats().snapshot_loaded, 500);
        assert_eq!(db.len(), 502);
    }

    #[test]
    fn compact_resets_wal() {
        let dir = TempDir::new("compact");
        let mut db = open(&dir);
        for k in 0..50u64 {
            db.insert(k, b"v".to_vec()).unwrap();
        }
        assert!(db.wal_bytes() > 0);
        db.compact().unwrap();
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.len(), 50);
        assert_eq!(db.cold_entries(), 50);
        assert_eq!(db.generation(), 1);
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let dir = TempDir::new("torn");
        {
            let mut db = open(&dir);
            db.insert(1, b"aaa".to_vec()).unwrap();
            db.insert(2, b"bbb".to_vec()).unwrap();
            db.sync().unwrap();
        }
        let wal_path = dir.path().join("wal.log");
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);

        let db = open(&dir);
        assert_eq!(db.len(), 1);
        assert!(db.contains_key(1));
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = TempDir::new("badsnap");
        {
            let mut db = open(&dir);
            db.insert(1, b"x".to_vec()).unwrap();
            db.compact().unwrap();
        }
        let snap = dir.path().join("checkpoint.bin");
        let mut raw = std::fs::read(&snap).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&snap, &raw).unwrap();

        let res: Result<DurableMap<Vec<u8>>, _> =
            DurableMap::open(dir.path(), SyncPolicy::OsFlush);
        assert!(matches!(res, Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn lost_manifest_behind_a_newer_wal_is_an_error() {
        let dir = TempDir::new("lostsnap");
        {
            let mut db = open(&dir);
            db.insert(1, b"x".to_vec()).unwrap();
            db.compact().unwrap();
            db.insert(2, b"y".to_vec()).unwrap();
            db.sync().unwrap();
        }
        std::fs::remove_file(dir.path().join("checkpoint.bin")).unwrap();
        let res: Result<DurableMap<Vec<u8>>, _> =
            DurableMap::open(dir.path(), SyncPolicy::OsFlush);
        assert!(
            matches!(res, Err(StorageError::Corrupt { .. })),
            "a WAL generation ahead of the manifest must not silently lose the checkpoint"
        );
    }

    #[test]
    fn stale_wal_behind_the_manifest_is_discarded_not_replayed() {
        // Simulates a power loss between the manifest rename and the
        // WAL truncation: the old WAL (generation g) survives next to
        // a generation-g+1 manifest that already covers every record
        // in it.
        let dir = TempDir::new("stalewal");
        let wal_path = dir.path().join("wal.log");
        let stale_wal;
        {
            let mut db = open(&dir);
            db.insert(1, b"covered".to_vec()).unwrap();
            db.insert(2, b"also-covered".to_vec()).unwrap();
            db.sync().unwrap();
            stale_wal = std::fs::read(&wal_path).unwrap();
            db.compact().unwrap();
        }
        // Put the pre-checkpoint WAL back: generation 0 vs manifest 1.
        std::fs::write(&wal_path, &stale_wal).unwrap();
        let mut db = open(&dir);
        assert_eq!(db.stats().replayed, 0, "a stale WAL must not be replayed");
        assert_eq!(db.len(), 2);
        assert_eq!(get(&mut db, 1).unwrap(), b"covered");
        assert_eq!(db.generation(), 1);
        // And the interrupted truncation finished: the WAL is empty
        // and restamped.
        assert_eq!(db.wal_bytes(), 0);
    }

    #[test]
    fn sync_policies_all_work() {
        for policy in [SyncPolicy::Always, SyncPolicy::OsFlush, SyncPolicy::Buffered] {
            let dir = TempDir::new("policy");
            {
                let mut db: DurableMap<Vec<u8>> =
                    DurableMap::open(dir.path(), policy).unwrap();
                db.insert(7, b"val".to_vec()).unwrap();
                db.sync().unwrap();
            }
            let mut db: DurableMap<Vec<u8>> = DurableMap::open(dir.path(), policy).unwrap();
            assert_eq!(db.get(7).unwrap().unwrap(), b"val", "policy {policy:?}");
        }
    }

    #[test]
    fn batch_applies_and_recovers() {
        let dir = TempDir::new("batch");
        {
            let mut db = open(&dir);
            db.insert(1, b"old".to_vec()).unwrap();
            db.apply_batch(vec![
                BatchOp::Put(1, b"new".to_vec()),
                BatchOp::Put(2, b"two".to_vec()),
                BatchOp::Del(1),
                BatchOp::Put(3, b"three".to_vec()),
            ])
            .unwrap();
            assert!(get(&mut db, 1).is_none(), "batch ops apply in order");
            assert_eq!(db.stats().mutations, 5);
            db.sync().unwrap();
        }
        let mut db = open(&dir);
        assert_eq!(db.len(), 2);
        assert!(get(&mut db, 1).is_none());
        assert_eq!(get(&mut db, 2).unwrap(), b"two");
        assert_eq!(get(&mut db, 3).unwrap(), b"three");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = TempDir::new("batch0");
        let mut db = open(&dir);
        db.apply_batch(Vec::new()).unwrap();
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.stats().mutations, 0);
    }

    #[test]
    fn torn_batch_is_all_or_nothing() {
        // Truncate the WAL at *every* byte offset inside the batch
        // record: recovery must see either the full batch or none of
        // it — never a prefix of its mutations.
        let dir = TempDir::new("tornbatch");
        let base_len;
        {
            let mut db = open(&dir);
            db.insert(10, b"pre".to_vec()).unwrap();
            db.sync().unwrap();
            base_len = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
            db.apply_batch(vec![
                BatchOp::Put(1, b"aaaa".to_vec()),
                BatchOp::Put(2, b"bbbb".to_vec()),
                BatchOp::Del(10),
            ])
            .unwrap();
            db.sync().unwrap();
        }
        let wal_path = dir.path().join("wal.log");
        let full = std::fs::read(&wal_path).unwrap();
        for cut in base_len..full.len() as u64 {
            std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
            let mut db = open(&dir);
            let batch_applied = get(&mut db, 1).is_some();
            if batch_applied {
                assert_eq!(get(&mut db, 2).unwrap(), b"bbbb", "cut {cut}: partial batch visible");
                assert!(get(&mut db, 10).is_none(), "cut {cut}: partial batch visible");
            } else {
                assert!(get(&mut db, 2).is_none(), "cut {cut}: partial batch visible");
                assert_eq!(get(&mut db, 10).unwrap(), b"pre", "cut {cut}: partial batch visible");
            }
        }
        // And the untruncated log replays the whole batch.
        std::fs::write(&wal_path, &full).unwrap();
        let mut db = open(&dir);
        assert_eq!(get(&mut db, 1).unwrap(), b"aaaa");
        assert_eq!(get(&mut db, 2).unwrap(), b"bbbb");
        assert!(get(&mut db, 10).is_none());
    }

    #[test]
    fn group_commit_defers_the_sync_until_end() {
        let dir = TempDir::new("group");
        {
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(dir.path(), SyncPolicy::Always).unwrap();
            db.begin_group_commit();
            for k in 0..10u64 {
                db.insert(k, vec![k as u8]).unwrap();
            }
            db.end_group_commit().unwrap();
        }
        let db: DurableMap<Vec<u8>> =
            DurableMap::open(dir.path(), SyncPolicy::Always).unwrap();
        assert_eq!(db.len(), 10, "grouped mutations must all be durable after end");
        // Idempotent when nothing was written.
        let mut db = db;
        db.begin_group_commit();
        db.end_group_commit().unwrap();
    }

    #[test]
    fn power_loss_points_separate_synced_from_buffered() {
        let dir = TempDir::new("powerloss");
        let points;
        {
            // OsFlush: mutations reach the OS but are never fsynced.
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(dir.path(), SyncPolicy::OsFlush).unwrap();
            db.insert(1, b"durable".to_vec()).unwrap();
            db.sync().unwrap();
            db.insert(2, b"buffered".to_vec()).unwrap();
            points = db.power_loss_points();
            // A process crash (plain drop) keeps both records…
        }
        let db: DurableMap<Vec<u8>> =
            DurableMap::open(dir.path(), SyncPolicy::OsFlush).unwrap();
        assert_eq!(db.len(), 2, "a process crash flushes buffers on drop");
        drop(db);
        // …while a power loss drops everything past the synced offsets.
        for (path, synced) in points {
            if path.exists() {
                let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                f.set_len(synced).unwrap();
            }
        }
        let mut db: DurableMap<Vec<u8>> =
            DurableMap::open(dir.path(), SyncPolicy::OsFlush).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(get(&mut db, 1).unwrap(), b"durable");
        assert!(get(&mut db, 2).is_none(), "the un-fsynced record must be gone");
    }

    #[test]
    fn power_loss_right_after_a_checkpoint_loses_nothing() {
        // The checkpoint-boundary ordering: after compact() returns,
        // truncating every file to its power-loss point must recover
        // the full checkpointed state.
        let dir = TempDir::new("ckpt-loss");
        let points;
        {
            let mut db = open(&dir);
            for k in 0..40u64 {
                db.insert(k, vec![k as u8; 32]).unwrap();
            }
            db.compact().unwrap();
            points = db.power_loss_points();
        }
        for (path, synced) in points {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(synced).unwrap();
        }
        let mut db = open(&dir);
        assert_eq!(db.len(), 40);
        assert_eq!(db.stats().replayed, 0);
        for k in 0..40u64 {
            assert_eq!(get(&mut db, k).unwrap(), vec![k as u8; 32]);
        }
    }

    #[test]
    fn for_each_visits_hot_and_cold_entries() {
        let dir = TempDir::new("foreach");
        let mut db = open(&dir);
        for k in 0..10u64 {
            db.insert(k, vec![k as u8]).unwrap();
        }
        db.compact().unwrap(); // 0..10 now cold
        for k in 10..15u64 {
            db.insert(k, vec![k as u8]).unwrap();
        }
        let mut seen = Vec::new();
        db.for_each(|k, v| seen.push((k, v.clone()))).unwrap();
        assert_eq!(seen.len(), 15);
        for (i, (k, v)) in seen.iter().enumerate() {
            assert_eq!(*k, i as u64, "ascending key order");
            assert_eq!(v, &vec![i as u8]);
        }
        assert!(db.stats().cold_reads >= 10);
    }

    #[test]
    fn cold_reads_come_back_from_the_page_file() {
        let dir = TempDir::new("cold");
        let mut db = open(&dir);
        db.insert(5, b"cold-value".to_vec()).unwrap();
        db.compact().unwrap();
        assert_eq!(db.cold_entries(), 1);
        assert_eq!(db.stats().cold_reads, 0);
        assert_eq!(get(&mut db, 5).unwrap(), b"cold-value");
        assert_eq!(db.stats().cold_reads, 1);
    }

    #[test]
    fn tombstoned_pages_are_reclaimed_by_compaction() {
        let dir = TempDir::new("reclaim");
        let mut db = open(&dir);
        // Fill several pages, then kill most of the records.
        let val = vec![0xCD; 512];
        for k in 0..64u64 {
            db.insert(k, val.clone()).unwrap();
        }
        db.compact().unwrap();
        let pages_full = db.num_pages();
        assert!(pages_full >= 8, "64 × 512 B must span multiple pages");
        for k in 0..60u64 {
            db.remove(k).unwrap();
        }
        db.compact().unwrap(); // survivors rewritten, condemned pages freed
        db.compact().unwrap(); // pull-down moves survivors into the freed space
        db.compact().unwrap(); // trailing pages (protected last cycle) truncated
        assert!(
            db.num_pages() <= 2,
            "4 surviving records must fit in a couple of pages, got {}",
            db.num_pages()
        );
        let disk = std::fs::metadata(dir.path().join("pages.bin")).unwrap().len();
        assert!(
            disk <= u64::from(PAGE_SIZE) * 2,
            "reclaimed pages must shrink the file, got {disk} bytes"
        );
        // Everything still reads back.
        for k in 60..64u64 {
            assert_eq!(get(&mut db, k).unwrap(), val);
        }
    }

    #[test]
    fn oversized_records_live_in_extents_and_free_on_death() {
        let dir = TempDir::new("extent");
        let big = vec![0x5A; PAGE_SIZE as usize * 2 + 17];
        let mut db = open(&dir);
        db.insert(1, big.clone()).unwrap();
        db.insert(2, b"small".to_vec()).unwrap();
        db.compact().unwrap();
        assert_eq!(get(&mut db, 1).unwrap(), big);
        // Recovery reads the extent back too.
        drop(db);
        let mut db = open(&dir);
        assert_eq!(get(&mut db, 1).unwrap(), big);
        // Kill the extent: three checkpoints later (free, pull down
        // the survivor, truncate) the disk is down to one page.
        db.remove(1).unwrap();
        db.compact().unwrap();
        db.compact().unwrap();
        db.compact().unwrap();
        let disk = std::fs::metadata(dir.path().join("pages.bin")).unwrap().len();
        assert!(
            disk <= u64::from(PAGE_SIZE),
            "dead extent pages must be reclaimed, got {disk} bytes"
        );
        assert_eq!(get(&mut db, 2).unwrap(), b"small");
    }

    #[test]
    fn auto_checkpoint_bounds_the_wal() {
        let dir = TempDir::new("auto");
        let mut db = open(&dir);
        db.set_auto_checkpoint(Some(1024));
        for k in 0..200u64 {
            db.insert(k % 20, vec![k as u8; 32]).unwrap();
            assert!(db.wal_bytes() < 2048, "the WAL must stay bounded");
        }
        assert!(db.stats().snapshots_written >= 2, "auto-checkpoints must have fired");
        drop(db);
        let mut db = open(&dir);
        assert_eq!(db.len(), 20);
        for k in 0..20u64 {
            assert!(get(&mut db, k).is_some());
        }
    }

    #[test]
    fn group_commit_defers_the_auto_checkpoint() {
        let dir = TempDir::new("auto-group");
        let mut db: DurableMap<Vec<u8>> =
            DurableMap::open(dir.path(), SyncPolicy::Always).unwrap();
        db.set_auto_checkpoint(Some(64));
        db.begin_group_commit();
        for k in 0..20u64 {
            db.insert(k, vec![1; 16]).unwrap();
        }
        assert_eq!(
            db.stats().snapshots_written,
            0,
            "no checkpoint may fire inside a commit group"
        );
        db.end_group_commit().unwrap();
        assert!(db.stats().snapshots_written >= 1, "the deferred checkpoint fires at group end");
    }
}
