//! Durable key→value map: write-ahead log + snapshot.
//!
//! This is the embedded substitute for the paper's DB2-backed visitor
//! database: every mutation is logged before it is acknowledged, and a
//! background-compactable snapshot bounds recovery time.

use crate::{StorageError, Wal};
use hiloc_util::buf::{Buf, BufMut};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// How aggressively the map makes writes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every mutation — full durability, the paper's
    /// "persistent registration information" contract.
    #[default]
    Always,
    /// Flush to the OS after every mutation, fsync only on snapshot and
    /// close. Survives process crashes but not power loss.
    OsFlush,
    /// Buffer writes; flush on snapshot/close only. For benchmarks.
    Buffered,
}

/// A value that can live in a [`DurableMap`].
pub trait RecordValue: Sized + Clone {
    /// Appends the encoded value to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value from `buf`, or `None` when malformed.
    fn decode(buf: &[u8]) -> Option<Self>;
}

impl RecordValue for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(buf: &[u8]) -> Option<Self> {
        Some(buf.to_vec())
    }
}

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
/// A multi-mutation record: applied all-or-nothing on replay (a torn
/// tail drops the whole record, never a prefix of its mutations).
const OP_BATCH: u8 = 3;
/// Snapshot file magic + version.
const SNAPSHOT_MAGIC: u32 = 0x4C53_5631; // "LSV1"

/// One mutation of an atomic batch (see [`DurableMap::apply_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp<V> {
    /// Insert or replace `key`.
    Put(u64, V),
    /// Remove `key`.
    Del(u64),
}

/// Runtime statistics of a [`DurableMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableMapStats {
    /// Mutations applied since open.
    pub mutations: u64,
    /// Records replayed from the WAL at open.
    pub replayed: u64,
    /// Entries loaded from the snapshot at open.
    pub snapshot_loaded: u64,
    /// Snapshots written since open.
    pub snapshots_written: u64,
}

/// A crash-safe `u64 → V` map backed by a WAL and periodic snapshots.
///
/// * `insert`/`remove` append to the WAL (durability per
///   [`SyncPolicy`]) and update the in-memory image.
/// * [`DurableMap::compact`] atomically writes a snapshot (`tmp` +
///   rename) and resets the WAL.
/// * [`DurableMap::open`] loads the snapshot, replays the WAL and
///   repairs a torn tail.
///
/// # Example
///
/// ```no_run
/// use hiloc_storage::{DurableMap, SyncPolicy};
///
/// # fn main() -> Result<(), hiloc_storage::StorageError> {
/// let mut db: DurableMap<Vec<u8>> = DurableMap::open("/tmp/hiloc-visitors", SyncPolicy::OsFlush)?;
/// db.insert(42, b"forward-ref:child-3".to_vec())?;
/// db.compact()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DurableMap<V: RecordValue> {
    dir: PathBuf,
    wal: Wal,
    map: BTreeMap<u64, V>,
    policy: SyncPolicy,
    stats: DurableMapStats,
    /// Group-commit mode: while active, `SyncPolicy::Always` degrades
    /// each mutation's fsync to an OS flush; the deferred fsync happens
    /// once in [`DurableMap::end_group_commit`].
    group_commit: bool,
    /// Whether any mutation deferred a sync since the group began.
    sync_pending: bool,
}

impl<V: RecordValue> DurableMap<V> {
    /// Opens (creating if needed) a durable map stored in directory
    /// `dir`, recovering state from `snapshot.bin` + `wal.log`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a corrupt snapshot. A corrupt
    /// WAL *tail* is repaired silently (crash recovery); corrupt WAL
    /// entries before the tail are impossible by construction.
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut stats = DurableMapStats::default();

        let mut map = BTreeMap::new();
        let snap_path = dir.join("snapshot.bin");
        if snap_path.exists() {
            let raw = fs::read(&snap_path)?;
            map = decode_snapshot::<V>(&raw)?;
            stats.snapshot_loaded = map.len() as u64;
        }

        let (wal, replayed) = Wal::open(dir.join("wal.log"))?;
        stats.replayed = replayed.len() as u64;
        for rec in replayed {
            apply_record::<V>(&mut map, &rec).ok_or(StorageError::Corrupt {
                offset: 0,
                reason: "undecodable WAL record",
            })?;
        }

        Ok(DurableMap {
            dir,
            wal,
            map,
            policy,
            stats,
            group_commit: false,
            sync_pending: false,
        })
    }

    /// Inserts or replaces the value for `key`, returning the previous
    /// value. The mutation is logged before the in-memory image changes.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails; the in-memory state is
    /// untouched in that case.
    pub fn insert(&mut self, key: u64, value: V) -> Result<Option<V>, StorageError> {
        let mut payload = Vec::with_capacity(16);
        payload.put_u8(OP_PUT);
        payload.put_u64_le(key);
        value.encode(&mut payload);
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += 1;
        Ok(self.map.insert(key, value))
    }

    /// Removes `key`, returning its value when present.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails.
    pub fn remove(&mut self, key: u64) -> Result<Option<V>, StorageError> {
        if !self.map.contains_key(&key) {
            return Ok(None);
        }
        let mut payload = Vec::with_capacity(9);
        payload.put_u8(OP_DEL);
        payload.put_u64_le(key);
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += 1;
        Ok(self.map.remove(&key))
    }

    /// Applies several mutations **atomically**: the whole batch is one
    /// CRC-framed WAL record, so crash recovery replays either all of
    /// it or none of it — a torn tail can never expose a prefix of the
    /// batch. One durability round (a single fsync under
    /// [`SyncPolicy::Always`]) covers every mutation: group commit.
    ///
    /// # Errors
    ///
    /// Returns an error when the WAL write fails; the in-memory state
    /// is untouched in that case.
    pub fn apply_batch(&mut self, ops: Vec<BatchOp<V>>) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(16 + ops.len() * 24);
        payload.put_u8(OP_BATCH);
        payload.put_u32_le(ops.len() as u32);
        for op in &ops {
            match op {
                BatchOp::Put(key, value) => {
                    payload.put_u8(OP_PUT);
                    payload.put_u64_le(*key);
                    // Reserve the length slot, encode in place, then
                    // backpatch — no temp allocation per value.
                    let len_at = payload.len();
                    payload.put_u32_le(0);
                    let val_at = payload.len();
                    value.encode(&mut payload);
                    let len = (payload.len() - val_at) as u32;
                    payload[len_at..val_at].copy_from_slice(&len.to_le_bytes());
                }
                BatchOp::Del(key) => {
                    payload.put_u8(OP_DEL);
                    payload.put_u64_le(*key);
                }
            }
        }
        self.wal.append(&payload)?;
        self.apply_policy()?;
        self.stats.mutations += ops.len() as u64;
        for op in ops {
            match op {
                BatchOp::Put(key, value) => {
                    self.map.insert(key, value);
                }
                BatchOp::Del(key) => {
                    self.map.remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Enters group-commit mode: until
    /// [`DurableMap::end_group_commit`], mutations under
    /// [`SyncPolicy::Always`] flush to the OS but defer the fsync.
    /// Used to amortize durability cost over a message batch — callers
    /// must not acknowledge anything before ending the group.
    pub fn begin_group_commit(&mut self) {
        self.group_commit = true;
    }

    /// Leaves group-commit mode, performing the single deferred fsync
    /// when any mutation was logged during the group.
    ///
    /// # Errors
    ///
    /// Returns an error when the sync fails.
    pub fn end_group_commit(&mut self) -> Result<(), StorageError> {
        self.group_commit = false;
        if std::mem::take(&mut self.sync_pending) {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// The value for `key`, when present.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.map.get(&key)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.map.iter().map(|(&k, v)| (k, v))
    }

    /// Current statistics.
    pub fn stats(&self) -> DurableMapStats {
        self.stats
    }

    /// Bytes currently in the WAL (drives compaction heuristics).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The power-loss recovery point: the WAL file path and the number
    /// of bytes guaranteed on stable storage. A simulator models power
    /// loss (as opposed to a process crash, which flushes buffers on
    /// drop) by truncating the file to that offset *after* dropping
    /// this map.
    pub fn power_loss_point(&self) -> (PathBuf, u64) {
        (self.wal.path().to_path_buf(), self.wal.synced_bytes())
    }

    /// Writes a snapshot atomically (`snapshot.tmp` → fsync → rename)
    /// and resets the WAL.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure; the previous snapshot remains
    /// intact in that case.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        let tmp = self.dir.join("snapshot.tmp");
        let dst = self.dir.join("snapshot.bin");
        let encoded = encode_snapshot(&self.map);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encoded)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &dst)?;
        self.wal.reset()?;
        self.stats.snapshots_written += 1;
        Ok(())
    }

    /// Flushes and fsyncs outstanding writes regardless of policy.
    ///
    /// # Errors
    ///
    /// Returns an error when syncing fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    fn apply_policy(&mut self) -> Result<(), StorageError> {
        match self.policy {
            SyncPolicy::Always if self.group_commit => {
                self.sync_pending = true;
                self.wal.flush()
            }
            SyncPolicy::Always => self.wal.sync(),
            SyncPolicy::OsFlush => self.wal.flush(),
            SyncPolicy::Buffered => Ok(()),
        }
    }
}

fn apply_record<V: RecordValue>(map: &mut BTreeMap<u64, V>, rec: &[u8]) -> Option<()> {
    let mut buf = rec;
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        OP_PUT => {
            if buf.remaining() < 8 {
                return None;
            }
            let key = buf.get_u64_le();
            let value = V::decode(buf)?;
            map.insert(key, value);
            Some(())
        }
        OP_DEL => {
            if buf.remaining() < 8 {
                return None;
            }
            let key = buf.get_u64_le();
            map.remove(&key);
            Some(())
        }
        OP_BATCH => {
            if buf.remaining() < 4 {
                return None;
            }
            let count = buf.get_u32_le();
            // Decode the whole batch before touching the map: a record
            // that fails half-way must not apply a prefix.
            let mut staged: Vec<BatchOp<V>> = Vec::with_capacity(count as usize);
            for _ in 0..count {
                if buf.remaining() < 9 {
                    return None;
                }
                let op = buf.get_u8();
                let key = buf.get_u64_le();
                match op {
                    OP_PUT => {
                        if buf.remaining() < 4 {
                            return None;
                        }
                        let len = buf.get_u32_le() as usize;
                        if buf.remaining() < len {
                            return None;
                        }
                        let value = V::decode(&buf[..len])?;
                        buf.advance(len);
                        staged.push(BatchOp::Put(key, value));
                    }
                    OP_DEL => staged.push(BatchOp::Del(key)),
                    _ => return None,
                }
            }
            for op in staged {
                match op {
                    BatchOp::Put(key, value) => {
                        map.insert(key, value);
                    }
                    BatchOp::Del(key) => {
                        map.remove(&key);
                    }
                }
            }
            Some(())
        }
        _ => None,
    }
}

fn encode_snapshot<V: RecordValue>(map: &BTreeMap<u64, V>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + map.len() * 16);
    out.put_u32_le(SNAPSHOT_MAGIC);
    out.put_u64_le(map.len() as u64);
    for (&k, v) in map {
        let mut val = Vec::new();
        v.encode(&mut val);
        out.put_u64_le(k);
        out.put_u32_le(val.len() as u32);
        out.extend_from_slice(&val);
    }
    let crc = crate::crc32(&out);
    out.put_u32_le(crc);
    out
}

fn decode_snapshot<V: RecordValue>(raw: &[u8]) -> Result<BTreeMap<u64, V>, StorageError> {
    let corrupt = |reason| StorageError::Corrupt { offset: 0, reason };
    if raw.len() < 16 {
        return Err(corrupt("snapshot too short"));
    }
    let (body, crc_bytes) = raw.split_at(raw.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crate::crc32(body) != stored_crc {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    let mut buf = body;
    if buf.get_u32_le() != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let count = buf.get_u64_le();
    let mut map = BTreeMap::new();
    for _ in 0..count {
        if buf.remaining() < 12 {
            return Err(corrupt("snapshot entry truncated"));
        }
        let key = buf.get_u64_le();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(corrupt("snapshot value truncated"));
        }
        let value = V::decode(&buf[..len]).ok_or(corrupt("undecodable snapshot value"))?;
        buf.advance(len);
        map.insert(key, value);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("hiloc-dm-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &TempDir) -> DurableMap<Vec<u8>> {
        DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap()
    }

    #[test]
    fn basic_crud_and_recovery() {
        let dir = TempDir::new("crud");
        {
            let mut db = open(&dir);
            assert!(db.insert(1, b"one".to_vec()).unwrap().is_none());
            assert_eq!(db.insert(1, b"uno".to_vec()).unwrap().unwrap(), b"one");
            db.insert(2, b"two".to_vec()).unwrap();
            assert_eq!(db.remove(2).unwrap().unwrap(), b"two");
            assert!(db.remove(99).unwrap().is_none());
            db.sync().unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1).unwrap(), b"uno");
        assert!(db.get(2).is_none());
        assert_eq!(db.stats().replayed, 4);
    }

    #[test]
    fn snapshot_plus_wal_recovery() {
        let dir = TempDir::new("snap");
        {
            let mut db = open(&dir);
            for k in 0..100u64 {
                db.insert(k, vec![k as u8; 8]).unwrap();
            }
            db.compact().unwrap();
            // Post-snapshot mutations live only in the WAL.
            db.insert(200, b"tail".to_vec()).unwrap();
            db.remove(5).unwrap();
            db.sync().unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.len(), 100); // 100 - 1 removed + 1 added
        assert_eq!(db.stats().snapshot_loaded, 100);
        assert_eq!(db.stats().replayed, 2);
        assert!(db.get(5).is_none());
        assert_eq!(db.get(200).unwrap(), b"tail");
    }

    #[test]
    fn compact_resets_wal() {
        let dir = TempDir::new("compact");
        let mut db = open(&dir);
        for k in 0..50u64 {
            db.insert(k, b"v".to_vec()).unwrap();
        }
        assert!(db.wal_bytes() > 0);
        db.compact().unwrap();
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.len(), 50);
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let dir = TempDir::new("torn");
        {
            let mut db = open(&dir);
            db.insert(1, b"aaa".to_vec()).unwrap();
            db.insert(2, b"bbb".to_vec()).unwrap();
            db.sync().unwrap();
        }
        let wal_path = dir.0.join("wal.log");
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);

        let db = open(&dir);
        assert_eq!(db.len(), 1);
        assert!(db.contains_key(1));
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let dir = TempDir::new("badsnap");
        {
            let mut db = open(&dir);
            db.insert(1, b"x".to_vec()).unwrap();
            db.compact().unwrap();
        }
        let snap = dir.0.join("snapshot.bin");
        let mut raw = std::fs::read(&snap).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&snap, &raw).unwrap();

        let res: Result<DurableMap<Vec<u8>>, _> =
            DurableMap::open(&dir.0, SyncPolicy::OsFlush);
        assert!(matches!(res, Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn sync_policies_all_work() {
        for policy in [SyncPolicy::Always, SyncPolicy::OsFlush, SyncPolicy::Buffered] {
            let dir = TempDir::new("policy");
            {
                let mut db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, policy).unwrap();
                db.insert(7, b"val".to_vec()).unwrap();
                db.sync().unwrap();
            }
            let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, policy).unwrap();
            assert_eq!(db.get(7).unwrap(), b"val", "policy {policy:?}");
        }
    }

    #[test]
    fn batch_applies_and_recovers() {
        let dir = TempDir::new("batch");
        {
            let mut db = open(&dir);
            db.insert(1, b"old".to_vec()).unwrap();
            db.apply_batch(vec![
                BatchOp::Put(1, b"new".to_vec()),
                BatchOp::Put(2, b"two".to_vec()),
                BatchOp::Del(1),
                BatchOp::Put(3, b"three".to_vec()),
            ])
            .unwrap();
            assert!(db.get(1).is_none(), "batch ops apply in order");
            assert_eq!(db.stats().mutations, 5);
            db.sync().unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.len(), 2);
        assert!(db.get(1).is_none());
        assert_eq!(db.get(2).unwrap(), b"two");
        assert_eq!(db.get(3).unwrap(), b"three");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = TempDir::new("batch0");
        let mut db = open(&dir);
        db.apply_batch(Vec::new()).unwrap();
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.stats().mutations, 0);
    }

    #[test]
    fn torn_batch_is_all_or_nothing() {
        // Truncate the WAL at *every* byte offset inside the batch
        // record: recovery must see either the full batch or none of
        // it — never a prefix of its mutations.
        let dir = TempDir::new("tornbatch");
        let base_len;
        {
            let mut db = open(&dir);
            db.insert(10, b"pre".to_vec()).unwrap();
            db.sync().unwrap();
            base_len = std::fs::metadata(dir.0.join("wal.log")).unwrap().len();
            db.apply_batch(vec![
                BatchOp::Put(1, b"aaaa".to_vec()),
                BatchOp::Put(2, b"bbbb".to_vec()),
                BatchOp::Del(10),
            ])
            .unwrap();
            db.sync().unwrap();
        }
        let wal_path = dir.0.join("wal.log");
        let full = std::fs::read(&wal_path).unwrap();
        for cut in base_len..full.len() as u64 {
            std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
            let db = open(&dir);
            let batch_applied = db.get(1).is_some();
            if batch_applied {
                assert_eq!(db.get(2).unwrap(), b"bbbb", "cut {cut}: partial batch visible");
                assert!(db.get(10).is_none(), "cut {cut}: partial batch visible");
            } else {
                assert!(db.get(2).is_none(), "cut {cut}: partial batch visible");
                assert_eq!(db.get(10).unwrap(), b"pre", "cut {cut}: partial batch visible");
            }
        }
        // And the untruncated log replays the whole batch.
        std::fs::write(&wal_path, &full).unwrap();
        let db = open(&dir);
        assert_eq!(db.get(1).unwrap(), b"aaaa");
        assert_eq!(db.get(2).unwrap(), b"bbbb");
        assert!(db.get(10).is_none());
    }

    #[test]
    fn group_commit_defers_the_sync_until_end() {
        let dir = TempDir::new("group");
        {
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(&dir.0, SyncPolicy::Always).unwrap();
            db.begin_group_commit();
            for k in 0..10u64 {
                db.insert(k, vec![k as u8]).unwrap();
            }
            db.end_group_commit().unwrap();
        }
        let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::Always).unwrap();
        assert_eq!(db.len(), 10, "grouped mutations must all be durable after end");
        // Idempotent when nothing was written.
        let mut db = db;
        db.begin_group_commit();
        db.end_group_commit().unwrap();
    }

    #[test]
    fn power_loss_point_separates_synced_from_buffered() {
        let dir = TempDir::new("powerloss");
        let point;
        {
            // OsFlush: mutations reach the OS but are never fsynced.
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
            db.insert(1, b"durable".to_vec()).unwrap();
            db.sync().unwrap();
            db.insert(2, b"buffered".to_vec()).unwrap();
            point = db.power_loss_point();
            // A process crash (plain drop) keeps both records…
        }
        let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        assert_eq!(db.len(), 2, "a process crash flushes buffers on drop");
        drop(db);
        // …while a power loss drops everything past the synced offset.
        let (path, synced) = point;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(synced).unwrap();
        drop(f);
        let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1).unwrap(), b"durable");
        assert!(db.get(2).is_none(), "the un-fsynced record must be gone");
    }

    #[test]
    fn iter_visits_everything() {
        let dir = TempDir::new("iter");
        let mut db = open(&dir);
        for k in 0..10u64 {
            db.insert(k, vec![k as u8]).unwrap();
        }
        let mut keys: Vec<u64> = db.iter().map(|(k, _)| k).collect();
        keys.sort();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }
}
