//! Location-server data storage for hiloc.
//!
//! The paper (§5) gives each location server two databases:
//!
//! * a **sighting database** held in *volatile* memory — position
//!   updates are too frequent to make durable, and recorded positions
//!   would be outdated after a recovery anyway; it combines a spatial
//!   index (for range / nearest-neighbor queries) with a hash index over
//!   object identifiers (for position queries) and *soft-state* expiry;
//! * a **visitor database** on *persistent* storage — updated only on
//!   registration, handover and deregistration, so that forwarding paths
//!   survive crashes.
//!
//! The paper's prototype used IBM DB2 via JDBC for the persistent part;
//! this crate substitutes an embedded storage engine ([`DurableMap`])
//! that exercises the identical code path: a durable write before
//! acknowledging any path change, and recovery on restart. The engine
//! is a write-ahead log in front of a paged cold store with
//! checkpoint manifests — the WAL truncates behind every checkpoint,
//! so disk usage follows the *live* visitor set and recovery replays
//! only the suffix since the last checkpoint, never the full update
//! history (see `durable_map.rs` for the layout and `checkpoint.rs`
//! for the commit protocol).
//!
//! # Example
//!
//! ```
//! use hiloc_geo::Point;
//! use hiloc_storage::{SightingDb, StoredSighting};
//!
//! let mut db = SightingDb::new_quadtree();
//! db.upsert(StoredSighting {
//!     key: 1,
//!     pos: Point::new(10.0, 20.0),
//!     time_us: 0,
//!     acc_sens_m: 10.0,
//!     expires_us: 60_000_000,
//! });
//! assert_eq!(db.get(1).unwrap().pos, Point::new(10.0, 20.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod crc;
mod durable_map;
mod page;
mod sighting_db;
mod tombstone;
mod wal;

pub use crc::crc32;
pub use durable_map::{
    BatchOp, DurableMap, DurableMapStats, RecordValue, SyncPolicy, DEFAULT_AUTO_CHECKPOINT_BYTES,
};
pub use page::{PageAddr, PAGE_SIZE};
pub use sighting_db::{SightingDb, StoredSighting};
pub use wal::{Wal, WalError, WalReplay};

/// Errors produced by the durable storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A record failed its checksum or could not be decoded.
    Corrupt {
        /// Byte offset of the bad record within the log.
        offset: u64,
        /// Human-readable cause.
        reason: &'static str,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
