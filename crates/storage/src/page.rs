//! Fixed-size pages on disk, a free-list allocator and a small read
//! cache — the cold tier under [`crate::DurableMap`].
//!
//! Records checkpointed out of memory are packed into 4 KiB pages in
//! `pages.bin`. The page file carries **no self-describing metadata**:
//! which byte ranges are live, which pages are free and where the
//! current pack page stands is recorded exclusively by the checkpoint
//! manifest (`checkpoint.rs`), which is only renamed into place *after*
//! the page writes it references are fsynced. That ordering is the
//! crash-safety argument: a power loss mid-checkpoint leaves the old
//! manifest pointing only at page ranges that were never overwritten
//! (freed pages are not reused until the manifest that records them as
//! free is durable).
//!
//! Records larger than one page get an exclusive extent of contiguous
//! pages; everything else is packed tail-first. Reads of packed records
//! go through a small FIFO page cache so cold scans (recovery, spills)
//! touch the disk once per page, not once per record.

use crate::tombstone::DeadSpace;
use crate::StorageError;
use std::collections::{BTreeSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Bytes per page.
pub const PAGE_SIZE: u32 = 4096;
/// Pages held by the read cache (64 × 4 KiB = 256 KiB).
const CACHE_PAGES: usize = 64;

/// Location of one record's payload inside the page file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAddr {
    /// First page of the record.
    pub page: u32,
    /// Byte offset inside the page (always 0 for multi-page extents).
    pub offset: u16,
    /// Payload length in bytes.
    pub len: u32,
}

impl PageAddr {
    /// True when the record occupies an exclusive extent of whole
    /// pages rather than a slice of a shared pack page.
    pub fn is_extent(&self) -> bool {
        self.len > PAGE_SIZE
    }

    /// Number of pages an extent covers (1 for packed records).
    pub fn extent_pages(&self) -> u32 {
        if self.is_extent() {
            self.len.div_ceil(PAGE_SIZE)
        } else {
            1
        }
    }

    fn file_offset(&self) -> u64 {
        u64::from(self.page) * u64::from(PAGE_SIZE) + u64::from(self.offset)
    }
}

/// The on-disk page file plus its in-memory allocation state.
#[derive(Debug)]
pub struct PageStore {
    path: PathBuf,
    file: File,
    /// Pages the file logically holds (the manifest's view; the file
    /// on disk is kept at exactly this length on restore).
    num_pages: u32,
    /// Wholly unreferenced pages, reusable for new placements.
    free: BTreeSet<u32>,
    /// The current pack page and its fill offset.
    tail: Option<(u32, u32)>,
    /// File length guaranteed on stable storage (advanced by
    /// [`PageStore::sync`]; the simulator truncates to this to model a
    /// power loss, exactly like the WAL's `synced_bytes`).
    synced_len: u64,
    cache: std::collections::BTreeMap<u32, Vec<u8>>,
    cache_fifo: VecDeque<u32>,
}

impl PageStore {
    /// Opens (or creates) the page file. The store starts logically
    /// empty; call [`PageStore::restore`] with the manifest's
    /// allocation state before reading.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        Ok(PageStore {
            path,
            file,
            num_pages: 0,
            free: BTreeSet::new(),
            tail: None,
            synced_len: 0,
            cache: std::collections::BTreeMap::new(),
            cache_fifo: VecDeque::new(),
        })
    }

    /// Adopts the allocation state recorded by a checkpoint manifest
    /// and trims the file to exactly that many pages — anything beyond
    /// is unreferenced garbage from a checkpoint that never committed.
    ///
    /// # Errors
    ///
    /// Returns an error when truncation fails.
    pub fn restore(
        &mut self,
        num_pages: u32,
        free: BTreeSet<u32>,
        tail: Option<(u32, u32)>,
    ) -> Result<(), StorageError> {
        self.num_pages = num_pages;
        self.free = free;
        self.tail = tail;
        let len = u64::from(num_pages) * u64::from(PAGE_SIZE);
        if self.file.metadata()?.len() != len {
            self.file.set_len(len)?;
        }
        self.synced_len = len;
        self.cache.clear();
        self.cache_fifo.clear();
        Ok(())
    }

    /// Reserves space for a `len`-byte record and returns its address.
    /// Space only — the caller writes via [`PageStore::write`]. When a
    /// partially filled pack page is retired (the record did not fit),
    /// its slack is charged to `dead`, since nothing will ever fill it.
    pub fn place(&mut self, len: u32, dead: &mut DeadSpace) -> PageAddr {
        if len > PAGE_SIZE {
            let page = self.alloc_extent(len.div_ceil(PAGE_SIZE));
            return PageAddr { page, offset: 0, len };
        }
        match self.tail {
            Some((page, fill)) if PAGE_SIZE - fill >= len => {
                self.tail = Some((page, fill + len));
                PageAddr { page, offset: fill as u16, len }
            }
            retired => {
                if let Some((page, fill)) = retired {
                    dead.add(page, PAGE_SIZE - fill);
                }
                let page = self.alloc_extent(1);
                self.tail = Some((page, len));
                PageAddr { page, offset: 0, len }
            }
        }
    }

    /// Writes a record's payload at its reserved address.
    ///
    /// # Errors
    ///
    /// Returns an error when the write fails.
    pub fn write(&mut self, addr: &PageAddr, bytes: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(bytes.len() as u32, addr.len);
        self.file.write_all_at(bytes, addr.file_offset())?;
        for page in addr.page..addr.page + addr.extent_pages() {
            self.invalidate(page);
        }
        Ok(())
    }

    /// Reads a record's payload into `out` (replacing its contents).
    /// Packed records go through the page cache; extents read straight
    /// from the file.
    ///
    /// # Errors
    ///
    /// Returns an error when the read fails.
    pub fn read(&mut self, addr: &PageAddr, out: &mut Vec<u8>) -> Result<(), StorageError> {
        out.resize(addr.len as usize, 0);
        if addr.is_extent() {
            self.file.read_exact_at(out, addr.file_offset())?;
            return Ok(());
        }
        let page = self.load_page(addr.page)?;
        let start = addr.offset as usize;
        out.copy_from_slice(&page[start..start + addr.len as usize]);
        Ok(())
    }

    /// Returns `page` (and the rest of an extent starting there) to the
    /// free list. The file space becomes reusable at the *next*
    /// checkpoint commit — callers must not hand freed pages back to
    /// [`PageStore::place`] before the manifest recording them as free
    /// is durable (see the module docs).
    pub fn free_page(&mut self, page: u32) {
        self.free.insert(page);
        self.invalidate(page);
        if let Some((tail_page, _)) = self.tail {
            if tail_page == page {
                self.tail = None;
            }
        }
    }

    /// Retires the current pack page without charging its slack:
    /// callers drop the tail when the page is about to be freed
    /// entirely (condemned or pulled down during compaction), so that
    /// no new record packs into a page that is on its way out.
    pub fn drop_tail(&mut self) {
        self.tail = None;
    }

    /// Truncates trailing free pages off the file. Pages in `protect`
    /// (freed since the last durable manifest, so still referenced by
    /// it) are left alone.
    ///
    /// # Errors
    ///
    /// Returns an error when truncation fails.
    pub fn shrink(&mut self, protect: &BTreeSet<u32>) -> Result<(), StorageError> {
        let before = self.num_pages;
        while self.num_pages > 0 {
            let last = self.num_pages - 1;
            if !self.free.contains(&last) || protect.contains(&last) {
                break;
            }
            self.free.remove(&last);
            self.invalidate(last);
            self.num_pages -= 1;
        }
        if self.num_pages != before {
            self.file.set_len(u64::from(self.num_pages) * u64::from(PAGE_SIZE))?;
        }
        Ok(())
    }

    /// Fsyncs the file and advances the durable watermark.
    ///
    /// # Errors
    ///
    /// Returns an error when the sync fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_all()?;
        self.synced_len = u64::from(self.num_pages) * u64::from(PAGE_SIZE);
        Ok(())
    }

    /// File length guaranteed on stable storage.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// The page file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Pages the file logically holds.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Snapshot of the free list (for the checkpoint manifest).
    pub fn free_pages(&self) -> &BTreeSet<u32> {
        &self.free
    }

    /// The current pack page and fill (for the checkpoint manifest).
    pub fn tail(&self) -> Option<(u32, u32)> {
        self.tail
    }

    /// Finds `n` contiguous pages: first fit from the free list, else
    /// fresh pages at the end of the file.
    fn alloc_extent(&mut self, n: u32) -> u32 {
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        let mut prev: Option<u32> = None;
        for &p in &self.free {
            match prev {
                Some(q) if p == q + 1 => run_len += 1,
                _ => {
                    run_start = p;
                    run_len = 1;
                }
            }
            prev = Some(p);
            if run_len == n {
                for page in run_start..run_start + n {
                    self.free.remove(&page);
                }
                return run_start;
            }
        }
        let start = self.num_pages;
        self.num_pages += n;
        start
    }

    fn invalidate(&mut self, page: u32) {
        if self.cache.remove(&page).is_some() {
            self.cache_fifo.retain(|&p| p != page);
        }
    }

    fn load_page(&mut self, page: u32) -> Result<&Vec<u8>, StorageError> {
        if !self.cache.contains_key(&page) {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            // The tail page may end before a full page of file exists;
            // the unwritten remainder reads as zeros.
            let mut filled = 0usize;
            let base = u64::from(page) * u64::from(PAGE_SIZE);
            while filled < buf.len() {
                let n = self.file.read_at(&mut buf[filled..], base + filled as u64)?;
                if n == 0 {
                    break;
                }
                filled += n;
            }
            while self.cache.len() >= CACHE_PAGES {
                match self.cache_fifo.pop_front() {
                    Some(old) => {
                        self.cache.remove(&old);
                    }
                    None => break,
                }
            }
            self.cache.insert(page, buf);
            self.cache_fifo.push_back(page);
        }
        Ok(self.cache.get(&page).expect("just inserted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::tests::TempDir;

    fn store(dir: &TempDir) -> PageStore {
        PageStore::open(dir.path().join("pages.bin")).unwrap()
    }

    #[test]
    fn packs_small_records_into_one_page() {
        let dir = TempDir::new("page-pack");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        let a = ps.place(100, &mut dead);
        let b = ps.place(200, &mut dead);
        assert_eq!((a.page, a.offset), (0, 0));
        assert_eq!((b.page, b.offset), (0, 100));
        ps.write(&a, &[7u8; 100]).unwrap();
        ps.write(&b, &[9u8; 200]).unwrap();
        let mut out = Vec::new();
        ps.read(&a, &mut out).unwrap();
        assert_eq!(out, vec![7u8; 100]);
        ps.read(&b, &mut out).unwrap();
        assert_eq!(out, vec![9u8; 200]);
        assert_eq!(ps.num_pages(), 1);
    }

    #[test]
    fn retiring_a_pack_page_charges_the_slack() {
        let dir = TempDir::new("page-slack");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        let a = ps.place(PAGE_SIZE - 10, &mut dead);
        // Does not fit in the 10 spare bytes: page 0 retires.
        let b = ps.place(100, &mut dead);
        assert_eq!(a.page, 0);
        assert_eq!((b.page, b.offset), (1, 0));
        assert_eq!(dead.bytes(0), 10, "the unfillable slack is tombstoned");
    }

    #[test]
    fn large_records_get_contiguous_extents() {
        let dir = TempDir::new("page-extent");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        let len = PAGE_SIZE * 2 + 100;
        let addr = ps.place(len, &mut dead);
        assert!(addr.is_extent());
        assert_eq!(addr.extent_pages(), 3);
        assert_eq!(addr.offset, 0);
        let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
        ps.write(&addr, &payload).unwrap();
        let mut out = Vec::new();
        ps.read(&addr, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn free_pages_are_reused_contiguously() {
        let dir = TempDir::new("page-reuse");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        for _ in 0..4 {
            ps.place(PAGE_SIZE, &mut dead);
        }
        assert_eq!(ps.num_pages(), 4);
        ps.free_page(1);
        ps.free_page(2);
        // A 2-page extent fits exactly in the freed run.
        let addr = ps.place(PAGE_SIZE + 1, &mut dead);
        assert_eq!(addr.page, 1);
        assert_eq!(ps.num_pages(), 4, "no growth when the free list serves");
        // No contiguous run left: the next extent grows the file.
        ps.free_page(0);
        let addr = ps.place(PAGE_SIZE + 1, &mut dead);
        assert_eq!(addr.page, 4);
        assert_eq!(ps.num_pages(), 6);
    }

    #[test]
    fn shrink_trims_trailing_free_pages_but_respects_protect() {
        let dir = TempDir::new("page-shrink");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        for _ in 0..4 {
            ps.place(PAGE_SIZE, &mut dead);
        }
        ps.free_page(2);
        ps.free_page(3);
        let protect: BTreeSet<u32> = [3].into_iter().collect();
        ps.shrink(&protect).unwrap();
        assert_eq!(ps.num_pages(), 4, "page 3 is still referenced by the old manifest");
        ps.shrink(&BTreeSet::new()).unwrap();
        assert_eq!(ps.num_pages(), 2);
        assert!(ps.free_pages().is_empty());
    }

    #[test]
    fn restore_trims_uncommitted_garbage() {
        let dir = TempDir::new("page-restore");
        let path = dir.path().join("pages.bin");
        let mut ps = PageStore::open(&path).unwrap();
        let mut dead = DeadSpace::new();
        let a = ps.place(50, &mut dead);
        ps.write(&a, &[1u8; 50]).unwrap();
        drop(ps);
        // A manifest that knows only about 0 pages: the write above
        // never committed.
        let mut ps = PageStore::open(&path).unwrap();
        ps.restore(0, BTreeSet::new(), None).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn cache_survives_writes_via_invalidation() {
        let dir = TempDir::new("page-cache");
        let mut ps = store(&dir);
        let mut dead = DeadSpace::new();
        let a = ps.place(64, &mut dead);
        ps.write(&a, &[1u8; 64]).unwrap();
        let mut out = Vec::new();
        ps.read(&a, &mut out).unwrap(); // populates the cache
        ps.write(&a, &[2u8; 64]).unwrap(); // must invalidate it
        ps.read(&a, &mut out).unwrap();
        assert_eq!(out, vec![2u8; 64], "stale cached page served after a write");
    }
}
