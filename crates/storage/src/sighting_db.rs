//! The volatile main-memory sighting database.
//!
//! Rebuilt for the allocation-free update hot path: records live in a
//! slab arena (dense `u32` slots with a free list) and soft-state
//! expiry is tracked by a coarse-bucket expiry wheel instead of an
//! unbounded lazy-deletion heap. In steady state a position update
//! touches the key→slot map once, rewrites the slot in place, moves the
//! spatial index via its [`SpatialIndex::update`] fast path and pushes
//! one wheel entry — no per-update allocation once the arena and
//! buckets are warm.

use hiloc_geo::{Point, Rect, Region};
use hiloc_spatial::{GridIndex, PointQuadtree, RTree, SpatialIndex};
// lint:allow(determinism) import for the lookup-only slot map annotated below
use std::collections::{BTreeMap, HashMap};

/// A sighting record as stored by a leaf location server.
///
/// Mirrors the paper's `s ∈ S`: object identifier, timestamp, position
/// and sensor accuracy — plus the soft-state expiration deadline that
/// the paper attaches to every stored sighting ("each sighting record is
/// associated with an expiration date, which is extended accordingly
/// whenever the visitor contacts the location server").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredSighting {
    /// Object key (the service's object identifier).
    pub key: u64,
    /// Position in the local planar frame at `time_us`.
    pub pos: Point,
    /// Timestamp of the sighting, microseconds on the service clock.
    pub time_us: u64,
    /// Sensor accuracy in meters (worst-case deviation at `time_us`).
    pub acc_sens_m: f64,
    /// Soft-state deadline: the record expires at this service time.
    pub expires_us: u64,
}

/// Expiry-wheel bucket width: deadlines are grouped into `2^22` µs
/// (≈ 4.2 s) buckets. Coarse buckets keep the wheel dense — soft-state
/// TTLs are tens to hundreds of seconds — and make the classic wheel
/// no-op kick in: a refresh whose new deadline lands in the bucket
/// already scheduled for the record performs **zero** wheel work. The
/// record's exact deadline always lives in its slot, so expiry remains
/// microsecond-precise.
const WHEEL_SHIFT: u32 = 22;

/// Below this many wheel entries, stale-entry compaction is not worth
/// the rebuild (mirrors the quadtree's tombstone floor).
const WHEEL_COMPACT_FLOOR: usize = 64;

/// One slab slot. `gen` is bumped whenever the slot's wheel entry is
/// superseded (a reschedule into a different bucket, or a removal), so
/// entries minted for an earlier state of the slot — or for a previous
/// occupant after slot reuse — are recognizably stale. `sched_bucket`
/// is the bucket of the slot's current (gen-matching) wheel entry; a
/// refresh into the same bucket keeps the entry and touches nothing.
#[derive(Debug, Clone, Copy)]
struct Slot {
    rec: StoredSighting,
    gen: u32,
    live: bool,
    sched_bucket: u64,
}

/// One expiry-wheel entry: the `(slot, gen)` pair it was minted for.
/// The exact deadline is read from the slot at expiry time (a
/// same-bucket refresh updates the deadline without touching the
/// entry).
#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    slot: u32,
    gen: u32,
}

/// One wheel bucket: its entries plus a cached lower bound on their
/// current deadlines, so [`SightingDb::next_expiry`] is O(1) instead
/// of scanning the bucket. The bound may be stale-early (an entry
/// refreshed to a later deadline within the bucket does not raise it)
/// but never stale-late: deadlines only move forward without a push
/// (the same-bucket skip requires it), and `expire_due` recomputes the
/// bound from the kept entries whenever it scans the bucket.
#[derive(Debug, Default)]
struct Bucket {
    entries: Vec<WheelEntry>,
    min_us: u64,
}

/// The main-memory database of sighting records kept by a leaf server.
///
/// Combines the paper's three volatile structures (§5, Fig. 7):
///
/// * a **spatial index** over positions — candidates for range and
///   nearest-neighbor queries;
/// * a **hash index** over object identifiers — position queries;
/// * **expiration** tracking implementing the soft-state principle.
///
/// Everything lives in volatile memory by design; after a crash the
/// database is rebuilt from incoming position updates (the paper
/// measures exactly this rebuild in Table 1's "creating index" row).
///
/// # Memory bound
///
/// The slab never holds more slots than the peak number of live
/// records, and the wheel is compacted whenever stale entries would
/// push it past **2× the live-record count** — so memory is bounded by
/// the live population, not by the total number of updates ever
/// received (the pre-slab lazy-deletion heap grew with the latter).
///
/// # Determinism
///
/// Iteration (`for_each`) walks slots in arena order and expiry
/// delivers records sorted by `(deadline, key)`, so two runs that issue
/// the same operations observe identical orders — a property the
/// deterministic chaos harness relies on.
///
/// # Example
///
/// ```
/// use hiloc_geo::{Point, Rect};
/// use hiloc_storage::{SightingDb, StoredSighting};
///
/// let mut db = SightingDb::new_quadtree();
/// for i in 0..10u64 {
///     db.upsert(StoredSighting {
///         key: i,
///         pos: Point::new(i as f64 * 10.0, 0.0),
///         time_us: 0,
///         acc_sens_m: 5.0,
///         expires_us: 1_000_000,
///     });
/// }
/// let mut in_range = 0;
/// db.query_rect(&Rect::new(Point::new(0.0, -1.0), Point::new(45.0, 1.0)), &mut |_| in_range += 1);
/// assert_eq!(in_range, 5);
/// ```
pub struct SightingDb {
    index: Box<dyn SpatialIndex>,
    /// The slab arena; slots are reused through `free`.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Key → slot. The only per-key hash map; touched once per update.
    // lint:allow(determinism) O(1) key → slot lookup on the hot path; never iterated (for_each walks the slab arena)
    by_key: HashMap<u64, u32>,
    /// The expiry wheel: bucket index (`deadline >> WHEEL_SHIFT`) →
    /// entries. A `BTreeMap` keeps bucket order deterministic and
    /// handles arbitrarily distant deadlines without a fixed horizon.
    wheel: BTreeMap<u64, Bucket>,
    /// Total entries across all buckets (live + not-yet-purged stale).
    wheel_len: usize,
}

impl std::fmt::Debug for SightingDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SightingDb")
            .field("records", &self.by_key.len())
            .field("pending_expiries", &self.wheel_len)
            .finish()
    }
}

/// The slot index for a slab about to grow past `len` slots.
///
/// Slot indices are `u32` (half the per-record footprint of `usize` in
/// the wheel and free list). A plain `as u32` would silently wrap once
/// the slab crosses 2³² slots and corrupt the free list / expiry wheel
/// by aliasing slot 0 — detect it and fail loudly instead. One leaf
/// holding 4 billion live sightings is far beyond any deployment this
/// crate targets (the macro benchmark asserts capacity headroom at
/// setup); the right fix at that scale is sharding the leaf, not wider
/// indices.
fn checked_slot_index(len: usize) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| {
        panic!(
            "SightingDb slab exceeded {} slots — u32 slot indices would wrap \
             and corrupt the free list; shard this leaf's service area instead",
            u32::MAX
        )
    })
}

impl SightingDb {
    /// Creates a database indexed by a [`PointQuadtree`] (the paper's
    /// choice).
    pub fn new_quadtree() -> Self {
        Self::with_index(Box::new(PointQuadtree::new()))
    }

    /// Creates a database indexed by an [`RTree`].
    pub fn new_rtree() -> Self {
        Self::with_index(Box::new(RTree::new()))
    }

    /// Creates a database indexed by a [`GridIndex`] with the given cell
    /// size in meters.
    pub fn new_grid(cell_size_m: f64) -> Self {
        Self::with_index(Box::new(GridIndex::new(cell_size_m)))
    }

    /// Creates a database over any spatial index implementation.
    pub fn with_index(index: Box<dyn SpatialIndex>) -> Self {
        SightingDb {
            index,
            slots: Vec::new(),
            free: Vec::new(),
            // lint:allow(determinism) constructor for the annotated lookup-only map
            by_key: HashMap::new(),
            wheel: BTreeMap::new(),
            wheel_len: 0,
        }
    }

    /// Inserts or replaces the sighting for `s.key`, returning the
    /// previous record (a position update).
    // lint:hot_path
    pub fn upsert(&mut self, s: StoredSighting) -> Option<StoredSighting> {
        let bucket = s.expires_us >> WHEEL_SHIFT;
        let old = if let Some(&slot) = self.by_key.get(&s.key) {
            // Steady-state refresh: rewrite the slot and move the index
            // in place when the motion is local. When the new deadline
            // stays in the already-scheduled bucket — the common case
            // for TTL refreshes under a sustained update stream — the
            // wheel is not touched at all.
            let sl = &mut self.slots[slot as usize];
            debug_assert!(sl.live && sl.rec.key == s.key);
            let old = sl.rec;
            sl.rec = s;
            // The skip also requires a non-shrinking deadline (the
            // TTL-refresh case), so bucket min bounds stay safe-early.
            if sl.sched_bucket != bucket || s.expires_us < old.expires_us {
                sl.gen = sl.gen.wrapping_add(1);
                sl.sched_bucket = bucket;
                let gen = sl.gen;
                self.wheel_push(bucket, slot, gen, s.expires_us);
            }
            self.index.update(s.key, s.pos);
            Some(old)
        } else {
            let slot = match self.free.pop() {
                Some(slot) => {
                    let sl = &mut self.slots[slot as usize];
                    sl.rec = s;
                    sl.live = true;
                    sl.sched_bucket = bucket;
                    slot
                }
                None => {
                    let slot = checked_slot_index(self.slots.len());
                    self.slots.push(Slot { rec: s, gen: 0, live: true, sched_bucket: bucket });
                    slot
                }
            };
            self.by_key.insert(s.key, slot);
            let gen = self.slots[slot as usize].gen;
            self.index.insert(s.key, s.pos);
            self.wheel_push(bucket, slot, gen, s.expires_us);
            None
        };
        self.maybe_compact_wheel();
        old
    }

    /// The sighting for `key`, when present (the hash-index path used by
    /// position queries).
    // lint:hot_path
    pub fn get(&self, key: u64) -> Option<&StoredSighting> {
        self.by_key.get(&key).map(|&slot| &self.slots[slot as usize].rec)
    }

    /// Removes the sighting for `key`.
    pub fn remove(&mut self, key: u64) -> Option<StoredSighting> {
        let slot = self.by_key.remove(&key)?;
        let sl = &mut self.slots[slot as usize];
        debug_assert!(sl.live);
        sl.live = false;
        // Invalidate any wheel entry still pointing here, including
        // after the slot is handed to a different key.
        sl.gen = sl.gen.wrapping_add(1);
        let rec = sl.rec;
        self.free.push(slot);
        self.index.remove(key);
        self.maybe_compact_wheel();
        Some(rec)
    }

    /// Number of live sightings.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no sightings are stored.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of expiry-wheel entries currently held (live + stale).
    /// Compaction keeps this at most twice [`SightingDb::len`] (plus
    /// the small compaction floor) — the memory-bound regression tests
    /// and the hotpath benchmark read it.
    pub fn expiry_entries(&self) -> usize {
        self.wheel_len
    }

    /// Number of slab slots ever allocated (live + free-listed): the
    /// arena footprint, bounded by the peak live population.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.by_key.clear();
        self.wheel.clear();
        self.wheel_len = 0;
    }

    // lint:hot_path
    fn wheel_push(&mut self, bucket: u64, slot: u32, gen: u32, expires_us: u64) {
        let b = self.wheel.entry(bucket).or_insert_with(|| Bucket {
            entries: Vec::new(), // lint:allow(hot_path) amortized: one empty bucket per wheel slot, reused for its lifetime
            min_us: u64::MAX,
        });
        b.entries.push(WheelEntry { slot, gen });
        b.min_us = b.min_us.min(expires_us);
        self.wheel_len += 1;
    }

    /// Compacts stale wheel entries whenever they would push the wheel
    /// past 2× the live-record count: rebuilds the buckets from the
    /// live slots in arena order (deterministic), restoring the
    /// one-entry-per-record invariant.
    fn maybe_compact_wheel(&mut self) {
        if self.wheel_len <= WHEEL_COMPACT_FLOOR.max(2 * self.by_key.len()) {
            return;
        }
        self.wheel.clear();
        self.wheel_len = 0;
        for slot in 0..self.slots.len() as u32 {
            let sl = self.slots[slot as usize];
            if sl.live {
                debug_assert_eq!(sl.sched_bucket, sl.rec.expires_us >> WHEEL_SHIFT);
                self.wheel_push(sl.sched_bucket, slot, sl.gen, sl.rec.expires_us);
            }
        }
    }

    /// Pops and returns every sighting whose deadline is at or before
    /// `now_us` (soft-state expiry), in `(deadline, key)` order.
    /// Expired records are removed from all indexes; stale wheel
    /// entries encountered along the way are purged.
    pub fn expire_due(&mut self, now_us: u64) -> Vec<StoredSighting> {
        let due_bucket = now_us >> WHEEL_SHIFT;
        if self.wheel.range(..=due_bucket).next().is_none() {
            return Vec::new();
        }
        let buckets: Vec<u64> = self.wheel.range(..=due_bucket).map(|(b, _)| *b).collect();
        let mut due: Vec<(u64, u64)> = Vec::new();
        for b in buckets {
            let bucket = self.wheel.remove(&b).expect("bucket listed above");
            let mut keep = Vec::new();
            let mut keep_min = u64::MAX;
            for e in bucket.entries {
                let sl = &self.slots[e.slot as usize];
                if !(sl.live && sl.gen == e.gen) {
                    // Superseded by a rescheduling refresh or a removal.
                    self.wheel_len -= 1;
                    continue;
                }
                // The entry is current, so the slot's exact deadline
                // lives in this bucket.
                if sl.rec.expires_us <= now_us {
                    self.wheel_len -= 1;
                    due.push((sl.rec.expires_us, sl.rec.key));
                } else {
                    // Same (boundary) bucket, deadline still ahead.
                    keep_min = keep_min.min(sl.rec.expires_us);
                    keep.push(e);
                }
            }
            if !keep.is_empty() {
                // The recomputed bound is exact, so repeated
                // hint/expire rounds always advance past `now`.
                self.wheel.insert(b, Bucket { entries: keep, min_us: keep_min });
            }
        }
        due.sort_unstable();
        let mut out = Vec::with_capacity(due.len());
        for (_, key) in due {
            if let Some(rec) = self.remove(key) {
                out.push(rec);
            }
        }
        out
    }

    /// The earliest pending expiry deadline, when any sightings exist.
    ///
    /// May return a stale (earlier) deadline for records that were since
    /// refreshed; callers treat it as a wake-up hint, not a promise —
    /// the following [`SightingDb::expire_due`] purges the stale entry,
    /// so repeated hint/expire rounds always make progress.
    pub fn next_expiry(&self) -> Option<u64> {
        // The globally earliest deadline lives in the first non-empty
        // bucket (buckets partition the deadline axis), and its cached
        // lower bound is O(1) to read. It may be stale-early — entries
        // superseded or refreshed to later deadlines do not raise it —
        // which the contract allows, because the expire_due a hint
        // triggers rescans the bucket and tightens the bound.
        self.wheel.values().next().map(|b| b.min_us)
    }

    /// Invokes `sink` for every sighting positioned inside `rect`.
    pub fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(&StoredSighting)) {
        let slots = &self.slots;
        let by_key = &self.by_key;
        self.index.query_rect(rect, &mut |e| {
            if let Some(&slot) = by_key.get(&e.key) {
                sink(&slots[slot as usize].rec);
            }
        });
    }

    /// Invokes `sink` for every *candidate* sighting for a range query
    /// over `region`: all records within the region's bounding rectangle
    /// enlarged by `margin` meters (the paper's `Enlarge(area, reqAcc)`
    /// — an object's location area may poke outside the region by up to
    /// its accuracy). The caller applies the exact overlap predicate.
    pub fn range_candidates(
        &self,
        region: &Region,
        margin: f64,
        sink: &mut dyn FnMut(&StoredSighting),
    ) {
        let probe = region.bounding_rect().enlarged(margin.max(0.0));
        self.query_rect(&probe, sink);
    }

    /// The sighting nearest to `p` among those accepted by `filter`.
    pub fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(&StoredSighting) -> bool,
    ) -> Option<(StoredSighting, f64)> {
        let slots = &self.slots;
        let by_key = &self.by_key;
        let rec_of = |key: u64| by_key.get(&key).map(|&slot| &slots[slot as usize].rec);
        let found = self.index.nearest_where(p, &mut |key| {
            rec_of(key).map(&mut *filter).unwrap_or(false)
        })?;
        rec_of(found.0.key).map(|r| (*r, found.1))
    }

    /// The `k` sightings nearest to `p` among those accepted by
    /// `filter`, ascending by distance.
    pub fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(&StoredSighting) -> bool,
    ) -> Vec<(StoredSighting, f64)> {
        let slots = &self.slots;
        let by_key = &self.by_key;
        let rec_of = |key: u64| by_key.get(&key).map(|&slot| &slots[slot as usize].rec);
        self.index
            .k_nearest_where(p, k, &mut |key| {
                rec_of(key).map(&mut *filter).unwrap_or(false)
            })
            .into_iter()
            .filter_map(|(e, d)| rec_of(e.key).map(|r| (*r, d)))
            .collect()
    }

    /// Invokes `sink` for every stored sighting, in slab (arena) order —
    /// deterministic across same-seed runs.
    pub fn for_each(&self, sink: &mut dyn FnMut(&StoredSighting)) {
        for sl in &self.slots {
            if sl.live {
                sink(&sl.rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(key: u64, x: f64, y: f64, expires: u64) -> StoredSighting {
        StoredSighting { key, pos: Point::new(x, y), time_us: 0, acc_sens_m: 10.0, expires_us: expires }
    }

    #[test]
    fn upsert_get_remove() {
        let mut db = SightingDb::new_quadtree();
        assert!(db.upsert(s(1, 0.0, 0.0, 100)).is_none());
        let old = db.upsert(s(1, 5.0, 5.0, 200)).unwrap();
        assert_eq!(old.pos, Point::new(0.0, 0.0));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1).unwrap().pos, Point::new(5.0, 5.0));
        assert!(db.remove(1).is_some());
        assert!(db.is_empty());
        assert!(db.remove(1).is_none());
    }

    #[test]
    fn expiry_in_deadline_order() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 300));
        db.upsert(s(2, 1.0, 0.0, 100));
        db.upsert(s(3, 2.0, 0.0, 200));
        assert_eq!(db.next_expiry(), Some(100));

        let expired = db.expire_due(150);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].key, 2);
        assert_eq!(db.len(), 2);

        let expired = db.expire_due(1_000);
        let keys: Vec<u64> = expired.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![3, 1], "expiry must deliver in (deadline, key) order");
        assert!(db.is_empty());
    }

    #[test]
    fn expiry_across_wheel_buckets() {
        let mut db = SightingDb::new_quadtree();
        // Deadlines spread over several 2^20 µs buckets, inserted out
        // of order.
        db.upsert(s(1, 0.0, 0.0, 5 << WHEEL_SHIFT));
        db.upsert(s(2, 1.0, 0.0, 1 << WHEEL_SHIFT));
        db.upsert(s(3, 2.0, 0.0, (1 << WHEEL_SHIFT) + 7));
        db.upsert(s(4, 3.0, 0.0, 3 << WHEEL_SHIFT));
        assert_eq!(db.next_expiry(), Some(1 << WHEEL_SHIFT));
        let expired = db.expire_due((1 << WHEEL_SHIFT) + 7);
        let keys: Vec<u64> = expired.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 3]);
        let expired = db.expire_due(u64::MAX);
        let keys: Vec<u64> = expired.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![4, 1]);
    }

    #[test]
    fn refresh_extends_deadline() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        // Position update arrives; deadline extended (soft-state refresh).
        db.upsert(s(1, 1.0, 0.0, 500));
        let expired = db.expire_due(200);
        assert!(expired.is_empty(), "stale wheel entry must be skipped");
        assert_eq!(db.len(), 1);
        let expired = db.expire_due(600);
        assert_eq!(expired.len(), 1);
    }

    #[test]
    fn expiry_after_remove_is_noop() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        db.remove(1);
        assert!(db.expire_due(1_000).is_empty());
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_deadlines() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        db.remove(1);
        // Key 2 reuses key 1's slot with a much later deadline; the
        // stale (slot, gen) entry at t=100 must not expire it.
        db.upsert(s(2, 1.0, 1.0, 900));
        assert_eq!(db.slot_capacity(), 1, "slot must be reused");
        assert!(db.expire_due(500).is_empty());
        let expired = db.expire_due(1_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].key, 2);
    }

    #[test]
    fn wheel_memory_bounded_by_live_records() {
        let mut db = SightingDb::new_grid(50.0);
        let live = 100u64;
        // An update storm: 10 000 refreshes over 100 live records. The
        // pre-slab heap grew to ~10 000 entries here.
        for round in 0..100u64 {
            for key in 0..live {
                db.upsert(s(key, (key % 10) as f64, (key / 10) as f64, 1_000 + round));
            }
        }
        assert_eq!(db.len(), live as usize);
        assert!(
            db.expiry_entries() <= 2 * live as usize + WHEEL_COMPACT_FLOOR,
            "wheel grew to {} entries for {} live records",
            db.expiry_entries(),
            live
        );
        assert_eq!(db.slot_capacity(), live as usize, "slab bounded by peak live set");
        // And expiry still fires exactly once per live record.
        assert_eq!(db.expire_due(u64::MAX).len(), live as usize);
        assert_eq!(db.expiry_entries(), 0);
    }

    #[test]
    fn spatial_queries_see_current_positions() {
        let mut db = SightingDb::new_rtree();
        db.upsert(s(1, 0.0, 0.0, 1_000));
        db.upsert(s(2, 100.0, 100.0, 1_000));
        db.upsert(s(1, 50.0, 50.0, 1_000)); // moved

        let mut hits = Vec::new();
        db.query_rect(&Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)), &mut |r| {
            hits.push(r.key)
        });
        assert!(hits.is_empty(), "old position must not linger in index");

        let (nearest, d) = db.nearest_where(Point::new(49.0, 50.0), &mut |_| true).unwrap();
        assert_eq!(nearest.key, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_with_record_filter() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(StoredSighting { key: 1, pos: Point::new(1.0, 0.0), time_us: 0, acc_sens_m: 100.0, expires_us: 1_000 });
        db.upsert(StoredSighting { key: 2, pos: Point::new(5.0, 0.0), time_us: 0, acc_sens_m: 5.0, expires_us: 1_000 });
        // Accuracy-threshold filter, as in the paper's reqAcc handling.
        let (rec, _) = db
            .nearest_where(Point::ORIGIN, &mut |r| r.acc_sens_m <= 10.0)
            .unwrap();
        assert_eq!(rec.key, 2);
    }

    #[test]
    fn range_candidates_include_margin() {
        let mut db = SightingDb::new_grid(10.0);
        // Object just outside the region, but within the accuracy margin.
        db.upsert(s(1, 104.0, 50.0, 1_000));
        let region = Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)));
        let mut without = Vec::new();
        db.range_candidates(&region, 0.0, &mut |r| without.push(r.key));
        assert!(without.is_empty());
        let mut with = Vec::new();
        db.range_candidates(&region, 5.0, &mut |r| with.push(r.key));
        assert_eq!(with, vec![1]);
    }

    #[test]
    fn k_nearest_ordering() {
        let mut db = SightingDb::new_quadtree();
        for i in 0..5u64 {
            db.upsert(s(i, i as f64 * 2.0, 0.0, 1_000));
        }
        let got = db.k_nearest_where(Point::ORIGIN, 3, &mut |_| true);
        let keys: Vec<u64> = got.iter().map(|(r, _)| r.key).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn for_each_in_arena_order() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(7, 0.0, 0.0, 100));
        db.upsert(s(3, 1.0, 0.0, 100));
        db.upsert(s(5, 2.0, 0.0, 100));
        let mut keys = Vec::new();
        db.for_each(&mut |r| keys.push(r.key));
        assert_eq!(keys, vec![7, 3, 5], "arena order = insertion order here");
    }

    #[test]
    fn clear_resets_everything() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.next_expiry(), None);
        assert_eq!(db.expiry_entries(), 0);
        assert_eq!(db.slot_capacity(), 0);
        assert!(db.expire_due(u64::MAX).is_empty());
    }

    /// Regression: slab growth converted `slots.len()` with a plain
    /// `as u32`. In-range lengths must map to their exact index…
    #[test]
    fn slot_index_conversion_is_exact_in_range() {
        assert_eq!(checked_slot_index(0), 0);
        assert_eq!(checked_slot_index(12_345), 12_345);
        assert_eq!(checked_slot_index(u32::MAX as usize), u32::MAX);
    }

    /// …and a slab at 2³² slots must fail loudly: the unchecked cast
    /// wrapped to slot 0, aliasing a live record and corrupting the
    /// free list. (Tested on the factored-out conversion — allocating
    /// four billion slots in a test is not an option.)
    #[test]
    #[should_panic(expected = "shard this leaf")]
    fn slot_index_past_u32_panics_instead_of_wrapping() {
        let _ = checked_slot_index(u32::MAX as usize + 1);
    }
}
