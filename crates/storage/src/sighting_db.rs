//! The volatile main-memory sighting database.

use hiloc_geo::{Point, Rect, Region};
use hiloc_spatial::{GridIndex, PointQuadtree, RTree, SpatialIndex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A sighting record as stored by a leaf location server.
///
/// Mirrors the paper's `s ∈ S`: object identifier, timestamp, position
/// and sensor accuracy — plus the soft-state expiration deadline that
/// the paper attaches to every stored sighting ("each sighting record is
/// associated with an expiration date, which is extended accordingly
/// whenever the visitor contacts the location server").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredSighting {
    /// Object key (the service's object identifier).
    pub key: u64,
    /// Position in the local planar frame at `time_us`.
    pub pos: Point,
    /// Timestamp of the sighting, microseconds on the service clock.
    pub time_us: u64,
    /// Sensor accuracy in meters (worst-case deviation at `time_us`).
    pub acc_sens_m: f64,
    /// Soft-state deadline: the record expires at this service time.
    pub expires_us: u64,
}

/// The main-memory database of sighting records kept by a leaf server.
///
/// Combines the paper's three volatile structures (§5, Fig. 7):
///
/// * a **spatial index** over positions — candidates for range and
///   nearest-neighbor queries;
/// * a **hash index** over object identifiers — position queries;
/// * **expiration** tracking implementing the soft-state principle.
///
/// Everything lives in volatile memory by design; after a crash the
/// database is rebuilt from incoming position updates (the paper
/// measures exactly this rebuild in Table 1's "creating index" row).
///
/// # Example
///
/// ```
/// use hiloc_geo::{Point, Rect};
/// use hiloc_storage::{SightingDb, StoredSighting};
///
/// let mut db = SightingDb::new_quadtree();
/// for i in 0..10u64 {
///     db.upsert(StoredSighting {
///         key: i,
///         pos: Point::new(i as f64 * 10.0, 0.0),
///         time_us: 0,
///         acc_sens_m: 5.0,
///         expires_us: 1_000_000,
///     });
/// }
/// let mut in_range = 0;
/// db.query_rect(&Rect::new(Point::new(0.0, -1.0), Point::new(45.0, 1.0)), &mut |_| in_range += 1);
/// assert_eq!(in_range, 5);
/// ```
pub struct SightingDb {
    index: Box<dyn SpatialIndex>,
    records: HashMap<u64, StoredSighting>,
    /// Lazy-deletion expiry heap of `(deadline, key, version)`.
    expiry: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Current heap-entry version per key; stale heap entries are
    /// skipped on pop.
    versions: HashMap<u64, u64>,
    next_version: u64,
}

impl std::fmt::Debug for SightingDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SightingDb")
            .field("records", &self.records.len())
            .field("pending_expiries", &self.expiry.len())
            .finish()
    }
}

impl SightingDb {
    /// Creates a database indexed by a [`PointQuadtree`] (the paper's
    /// choice).
    pub fn new_quadtree() -> Self {
        Self::with_index(Box::new(PointQuadtree::new()))
    }

    /// Creates a database indexed by an [`RTree`].
    pub fn new_rtree() -> Self {
        Self::with_index(Box::new(RTree::new()))
    }

    /// Creates a database indexed by a [`GridIndex`] with the given cell
    /// size in meters.
    pub fn new_grid(cell_size_m: f64) -> Self {
        Self::with_index(Box::new(GridIndex::new(cell_size_m)))
    }

    /// Creates a database over any spatial index implementation.
    pub fn with_index(index: Box<dyn SpatialIndex>) -> Self {
        SightingDb {
            index,
            records: HashMap::new(),
            expiry: BinaryHeap::new(),
            versions: HashMap::new(),
            next_version: 0,
        }
    }

    /// Inserts or replaces the sighting for `s.key`, returning the
    /// previous record (a position update).
    pub fn upsert(&mut self, s: StoredSighting) -> Option<StoredSighting> {
        self.index.insert(s.key, s.pos);
        self.next_version += 1;
        self.versions.insert(s.key, self.next_version);
        self.expiry.push(Reverse((s.expires_us, s.key, self.next_version)));
        self.records.insert(s.key, s)
    }

    /// The sighting for `key`, when present (the hash-index path used by
    /// position queries).
    pub fn get(&self, key: u64) -> Option<&StoredSighting> {
        self.records.get(&key)
    }

    /// Removes the sighting for `key`.
    pub fn remove(&mut self, key: u64) -> Option<StoredSighting> {
        let rec = self.records.remove(&key)?;
        self.index.remove(key);
        self.versions.remove(&key);
        Some(rec)
    }

    /// Number of live sightings.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sightings are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.index.clear();
        self.records.clear();
        self.expiry.clear();
        self.versions.clear();
    }

    /// Pops and returns every sighting whose deadline is at or before
    /// `now_us` (soft-state expiry). Expired records are removed from
    /// all indexes.
    pub fn expire_due(&mut self, now_us: u64) -> Vec<StoredSighting> {
        let mut out = Vec::new();
        while let Some(Reverse((deadline, key, version))) = self.expiry.peek().copied() {
            if deadline > now_us {
                break;
            }
            self.expiry.pop();
            // Skip entries superseded by a later upsert.
            if self.versions.get(&key) != Some(&version) {
                continue;
            }
            if let Some(rec) = self.remove(key) {
                out.push(rec);
            }
        }
        out
    }

    /// The earliest pending expiry deadline, when any sightings exist.
    ///
    /// May return a stale (earlier) deadline for records that were since
    /// refreshed; callers treat it as a wake-up hint, not a promise.
    pub fn next_expiry(&self) -> Option<u64> {
        self.expiry.peek().map(|Reverse((d, _, _))| *d)
    }

    /// Invokes `sink` for every sighting positioned inside `rect`.
    pub fn query_rect(&self, rect: &Rect, sink: &mut dyn FnMut(&StoredSighting)) {
        self.index.query_rect(rect, &mut |e| {
            if let Some(rec) = self.records.get(&e.key) {
                sink(rec);
            }
        });
    }

    /// Invokes `sink` for every *candidate* sighting for a range query
    /// over `region`: all records within the region's bounding rectangle
    /// enlarged by `margin` meters (the paper's `Enlarge(area, reqAcc)`
    /// — an object's location area may poke outside the region by up to
    /// its accuracy). The caller applies the exact overlap predicate.
    pub fn range_candidates(
        &self,
        region: &Region,
        margin: f64,
        sink: &mut dyn FnMut(&StoredSighting),
    ) {
        let probe = region.bounding_rect().enlarged(margin.max(0.0));
        self.query_rect(&probe, sink);
    }

    /// The sighting nearest to `p` among those accepted by `filter`.
    pub fn nearest_where(
        &self,
        p: Point,
        filter: &mut dyn FnMut(&StoredSighting) -> bool,
    ) -> Option<(StoredSighting, f64)> {
        let records = &self.records;
        let found = self.index.nearest_where(p, &mut |key| {
            records.get(&key).map(&mut *filter).unwrap_or(false)
        })?;
        records.get(&found.0.key).map(|r| (*r, found.1))
    }

    /// The `k` sightings nearest to `p` among those accepted by
    /// `filter`, ascending by distance.
    pub fn k_nearest_where(
        &self,
        p: Point,
        k: usize,
        filter: &mut dyn FnMut(&StoredSighting) -> bool,
    ) -> Vec<(StoredSighting, f64)> {
        let records = &self.records;
        self.index
            .k_nearest_where(p, k, &mut |key| {
                records.get(&key).map(&mut *filter).unwrap_or(false)
            })
            .into_iter()
            .filter_map(|(e, d)| records.get(&e.key).map(|r| (*r, d)))
            .collect()
    }

    /// Invokes `sink` for every stored sighting.
    pub fn for_each(&self, sink: &mut dyn FnMut(&StoredSighting)) {
        for rec in self.records.values() {
            sink(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(key: u64, x: f64, y: f64, expires: u64) -> StoredSighting {
        StoredSighting { key, pos: Point::new(x, y), time_us: 0, acc_sens_m: 10.0, expires_us: expires }
    }

    #[test]
    fn upsert_get_remove() {
        let mut db = SightingDb::new_quadtree();
        assert!(db.upsert(s(1, 0.0, 0.0, 100)).is_none());
        let old = db.upsert(s(1, 5.0, 5.0, 200)).unwrap();
        assert_eq!(old.pos, Point::new(0.0, 0.0));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1).unwrap().pos, Point::new(5.0, 5.0));
        assert!(db.remove(1).is_some());
        assert!(db.is_empty());
        assert!(db.remove(1).is_none());
    }

    #[test]
    fn expiry_in_deadline_order() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 300));
        db.upsert(s(2, 1.0, 0.0, 100));
        db.upsert(s(3, 2.0, 0.0, 200));
        assert_eq!(db.next_expiry(), Some(100));

        let expired = db.expire_due(150);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].key, 2);
        assert_eq!(db.len(), 2);

        let expired = db.expire_due(1_000);
        let mut keys: Vec<u64> = expired.iter().map(|r| r.key).collect();
        keys.sort();
        assert_eq!(keys, vec![1, 3]);
        assert!(db.is_empty());
    }

    #[test]
    fn refresh_extends_deadline() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        // Position update arrives; deadline extended (soft-state refresh).
        db.upsert(s(1, 1.0, 0.0, 500));
        let expired = db.expire_due(200);
        assert!(expired.is_empty(), "stale heap entry must be skipped");
        assert_eq!(db.len(), 1);
        let expired = db.expire_due(600);
        assert_eq!(expired.len(), 1);
    }

    #[test]
    fn expiry_after_remove_is_noop() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        db.remove(1);
        assert!(db.expire_due(1_000).is_empty());
    }

    #[test]
    fn spatial_queries_see_current_positions() {
        let mut db = SightingDb::new_rtree();
        db.upsert(s(1, 0.0, 0.0, 1_000));
        db.upsert(s(2, 100.0, 100.0, 1_000));
        db.upsert(s(1, 50.0, 50.0, 1_000)); // moved

        let mut hits = Vec::new();
        db.query_rect(&Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)), &mut |r| {
            hits.push(r.key)
        });
        assert!(hits.is_empty(), "old position must not linger in index");

        let (nearest, d) = db.nearest_where(Point::new(49.0, 50.0), &mut |_| true).unwrap();
        assert_eq!(nearest.key, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_with_record_filter() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(StoredSighting { key: 1, pos: Point::new(1.0, 0.0), time_us: 0, acc_sens_m: 100.0, expires_us: 1_000 });
        db.upsert(StoredSighting { key: 2, pos: Point::new(5.0, 0.0), time_us: 0, acc_sens_m: 5.0, expires_us: 1_000 });
        // Accuracy-threshold filter, as in the paper's reqAcc handling.
        let (rec, _) = db
            .nearest_where(Point::ORIGIN, &mut |r| r.acc_sens_m <= 10.0)
            .unwrap();
        assert_eq!(rec.key, 2);
    }

    #[test]
    fn range_candidates_include_margin() {
        let mut db = SightingDb::new_grid(10.0);
        // Object just outside the region, but within the accuracy margin.
        db.upsert(s(1, 104.0, 50.0, 1_000));
        let region = Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)));
        let mut without = Vec::new();
        db.range_candidates(&region, 0.0, &mut |r| without.push(r.key));
        assert!(without.is_empty());
        let mut with = Vec::new();
        db.range_candidates(&region, 5.0, &mut |r| with.push(r.key));
        assert_eq!(with, vec![1]);
    }

    #[test]
    fn k_nearest_ordering() {
        let mut db = SightingDb::new_quadtree();
        for i in 0..5u64 {
            db.upsert(s(i, i as f64 * 2.0, 0.0, 1_000));
        }
        let got = db.k_nearest_where(Point::ORIGIN, 3, &mut |_| true);
        let keys: Vec<u64> = got.iter().map(|(r, _)| r.key).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut db = SightingDb::new_quadtree();
        db.upsert(s(1, 0.0, 0.0, 100));
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.next_expiry(), None);
        assert!(db.expire_due(u64::MAX).is_empty());
    }
}
