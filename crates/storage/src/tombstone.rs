//! Dead-space accounting for the page store.
//!
//! Deletes and overwrites never rewrite a page in place — the old
//! bytes simply stop being referenced ("tombstoned") and are counted
//! here, per page. At checkpoint time, pages whose dead ratio crosses
//! [`DeadSpace::CONDEMN_NUM`]`/`[`DeadSpace::CONDEMN_DEN`] are
//! *condemned*: their surviving records are rewritten into fresh pages
//! and the page returns to the free list. That is the reclamation path
//! the WAL alone never had — deregistered objects used to live in the
//! log forever.

use crate::page::PAGE_SIZE;
use std::collections::BTreeMap;

/// Per-page tombstoned-byte counts (deterministic iteration order, so
/// condemnation — and therefore page layout — is identical across
/// same-seed runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadSpace {
    dead: BTreeMap<u32, u32>,
}

impl DeadSpace {
    /// A page is condemned when `dead * DEN >= PAGE_SIZE * NUM`.
    pub const CONDEMN_NUM: u32 = 1;
    /// See [`DeadSpace::CONDEMN_NUM`].
    pub const CONDEMN_DEN: u32 = 2;

    /// An empty tracker.
    pub fn new() -> Self {
        DeadSpace::default()
    }

    /// Records `bytes` of a page's content as dead (an overwritten or
    /// deleted record's payload, or the slack left when a pack page is
    /// retired with space that will never be filled).
    pub fn add(&mut self, page: u32, bytes: u32) {
        if bytes > 0 {
            *self.dead.entry(page).or_insert(0) += bytes;
        }
    }

    /// Forgets a page entirely (it was freed or rewritten).
    pub fn clear_page(&mut self, page: u32) {
        self.dead.remove(&page);
    }

    /// Pages whose dead ratio crosses the condemnation threshold, in
    /// ascending page order.
    pub fn condemned(&self) -> Vec<u32> {
        self.dead
            .iter()
            .filter(|(_, &bytes)| bytes * Self::CONDEMN_DEN >= PAGE_SIZE * Self::CONDEMN_NUM)
            .map(|(&page, _)| page)
            .collect()
    }

    /// Dead bytes currently tracked for `page`.
    #[cfg(test)]
    pub fn bytes(&self, page: u32) -> u32 {
        self.dead.get(&page).copied().unwrap_or(0)
    }

    /// All `(page, dead_bytes)` pairs (for the checkpoint manifest).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dead.iter().map(|(&p, &b)| (p, b))
    }

    /// Rebuilds the tracker from manifest pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        DeadSpace { dead: pairs.into_iter().filter(|&(_, b)| b > 0).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condemns_at_half_page() {
        let mut dead = DeadSpace::new();
        dead.add(3, PAGE_SIZE / 2 - 1);
        assert!(dead.condemned().is_empty());
        dead.add(3, 1);
        assert_eq!(dead.condemned(), vec![3]);
        dead.add(1, PAGE_SIZE);
        assert_eq!(dead.condemned(), vec![1, 3], "ascending page order");
        dead.clear_page(3);
        assert_eq!(dead.condemned(), vec![1]);
        assert_eq!(dead.bytes(3), 0);
    }

    #[test]
    fn round_trips_through_pairs() {
        let mut dead = DeadSpace::new();
        dead.add(7, 100);
        dead.add(2, 40);
        dead.add(9, 0); // zero entries are dropped
        let pairs: Vec<_> = dead.iter().collect();
        assert_eq!(pairs, vec![(2, 40), (7, 100)]);
        assert_eq!(DeadSpace::from_pairs(pairs), dead);
    }
}
