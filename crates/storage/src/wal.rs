//! Append-only write-ahead log with checksummed records.

use crate::{crc32, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Error alias for WAL operations.
pub type WalError = StorageError;

/// Header bytes per record: length (u32) + checksum (u32).
const RECORD_HEADER: usize = 8;
/// Refuse to read records larger than this (a corrupt length field
/// would otherwise cause a huge allocation).
const MAX_RECORD: u32 = 16 * 1024 * 1024;
/// File header: `[magic u32][generation u64][reserved u32]`.
pub(crate) const WAL_HEADER: usize = 16;
/// File magic ("HWL1").
const WAL_MAGIC: u32 = 0x4857_4C31;

/// An append-only log of length-prefixed, CRC-checked records.
///
/// The file starts with a 16-byte header `[magic: u32 LE]
/// [generation: u64 LE][reserved: u32 LE]`; the generation ties the log
/// to the checkpoint that preceded it (see `checkpoint.rs`), so
/// recovery can tell a fresh post-checkpoint log from a stale
/// pre-checkpoint one after a power loss between the two steps of a
/// compaction. Each record is `[len: u32 LE][crc32(payload): u32 LE]
/// [payload]`.
///
/// On open, the log is scanned; a truncated or corrupt tail (the result
/// of a crash mid-append) is detected and the file is truncated back to
/// the last valid record, matching the recovery behavior expected of
/// the visitor database ("the objects' forwarding paths are supposed to
/// survive system failures"). The scan streams through a fixed buffer —
/// replay memory is one record, not the whole history.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    generation: u64,
    len_bytes: u64,
    /// Bytes guaranteed on stable storage (advanced by [`Wal::sync`]
    /// only). Appends and [`Wal::flush`] leave bytes in OS/user-space
    /// buffers, which a power loss — unlike a process crash — discards;
    /// the simulator truncates the file back to this offset to model
    /// that (see `power_loss_points` on the durable map).
    synced_bytes: u64,
    records: u64,
}

/// Streaming reader over the valid records found by [`Wal::open`].
///
/// Yields one payload at a time into a reused internal buffer, so
/// replaying an arbitrarily long log needs memory for only the largest
/// single record — the fix for the old API that materialized the whole
/// history as `Vec<Vec<u8>>`.
#[derive(Debug)]
pub struct WalReplay {
    /// `None` when the log held no valid records.
    reader: Option<BufReader<File>>,
    /// Byte offset of the next unread record header.
    pos: u64,
    /// End of the validated prefix; nothing at or past this offset is
    /// replayed.
    end: u64,
    buf: Vec<u8>,
}

impl WalReplay {
    fn empty() -> Self {
        WalReplay { reader: None, pos: 0, end: 0, buf: Vec::new() }
    }

    /// The next record payload, or `None` after the last one. The
    /// returned slice borrows the reader's internal buffer and is
    /// invalidated by the next call.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or when the file changed under
    /// the reader since the validating scan (checksum mismatch).
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, WalError> {
        let Some(reader) = self.reader.as_mut().filter(|_| self.pos < self.end) else {
            return Ok(None);
        };
        let mut header = [0u8; RECORD_HEADER];
        reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        self.buf.resize(len as usize, 0);
        reader.read_exact(&mut self.buf)?;
        if crc32(&self.buf) != crc {
            return Err(StorageError::Corrupt {
                offset: self.pos,
                reason: "WAL record changed between scan and replay",
            });
        }
        self.pos += (RECORD_HEADER + len as usize) as u64;
        Ok(Some(&self.buf))
    }

    /// Collects every remaining record (test/tooling convenience; the
    /// production replay path streams).
    ///
    /// # Errors
    ///
    /// Returns an error when [`WalReplay::next_record`] does.
    pub fn collect_records(mut self) -> Result<Vec<Vec<u8>>, WalError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec.to_vec());
        }
        Ok(out)
    }
}

impl Wal {
    /// Opens (or creates) the log at `path`, validating existing
    /// records and truncating a corrupt tail.
    ///
    /// Returns the WAL and a streaming reader over all valid records.
    /// A missing or damaged file header (shorter than 16 bytes, or bad
    /// magic) is tail damage of the most extreme kind: the log is reset
    /// to an empty generation-0 file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened, read or
    /// truncated. Corrupt tails are *not* errors — they are repaired.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalReplay), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;

        let file_len = file.metadata()?.len();
        let mut header = [0u8; WAL_HEADER];
        let generation = if file_len >= WAL_HEADER as u64 {
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
            if magic == WAL_MAGIC {
                Some(u64::from_le_bytes(header[4..12].try_into().unwrap()))
            } else {
                None
            }
        } else {
            None
        };

        let generation = match generation {
            Some(g) => g,
            None => {
                // Empty file or damaged header: start a fresh gen-0 log.
                file.set_len(0)?;
                write_header(&mut file, 0)?;
                0
            }
        };

        // Streaming validation scan: find the longest valid record
        // prefix without materializing payloads.
        let mut reader = BufReader::new(&mut file);
        reader.seek(SeekFrom::Start(WAL_HEADER as u64))?;
        let mut valid = WAL_HEADER as u64;
        let mut records = 0u64;
        let mut scratch = Vec::new();
        loop {
            let mut rec_header = [0u8; RECORD_HEADER];
            match reader.read_exact(&mut rec_header) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let len = u32::from_le_bytes(rec_header[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(rec_header[4..8].try_into().unwrap());
            if len > MAX_RECORD {
                break; // corrupt length; treat as tail damage
            }
            scratch.resize(len as usize, 0);
            match reader.read_exact(&mut scratch) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            if crc32(&scratch) != crc {
                break; // corrupt payload
            }
            valid += (RECORD_HEADER + len as usize) as u64;
            records += 1;
        }
        drop(reader);

        if valid < file.metadata()?.len() {
            // Repair: drop the damaged tail.
            file.set_len(valid)?;
        }
        drop(file);

        let replay = if records == 0 {
            WalReplay::empty()
        } else {
            let replay_file = File::open(&path)?;
            let mut reader = BufReader::new(replay_file);
            reader.seek(SeekFrom::Start(WAL_HEADER as u64))?;
            WalReplay {
                reader: Some(reader),
                pos: WAL_HEADER as u64,
                end: valid,
                buf: Vec::new(),
            }
        };

        let file = OpenOptions::new().append(true).open(&path)?;
        let wal = Wal {
            path,
            writer: BufWriter::new(file),
            generation,
            len_bytes: valid,
            // Everything that survived the scan is on disk already.
            synced_bytes: valid,
            records,
        };
        Ok((wal, replay))
    }

    /// Appends one record. The record is buffered; call [`Wal::sync`]
    /// to make it durable.
    ///
    /// # Errors
    ///
    /// Returns an error when the write fails or the payload exceeds the
    /// maximum record size.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return Err(StorageError::Corrupt { offset: self.len_bytes, reason: "record too large" });
        }
        let len = (payload.len() as u32).to_le_bytes();
        let crc = crc32(payload).to_le_bytes();
        self.writer.write_all(&len)?;
        self.writer.write_all(&crc)?;
        self.writer.write_all(payload)?;
        self.len_bytes += (RECORD_HEADER + payload.len()) as u64;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file.
    ///
    /// # Errors
    ///
    /// Returns an error when flushing or syncing fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.synced_bytes = self.len_bytes;
        Ok(())
    }

    /// Flushes buffered records to the OS without fsync.
    ///
    /// # Errors
    ///
    /// Returns an error when flushing fails.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Truncates the log to zero records and stamps it with
    /// `generation` (the generation of the checkpoint that made the old
    /// records redundant). The new header is fsynced before the call
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns an error when truncation fails.
    pub fn reset(&mut self, generation: u64) -> Result<(), WalError> {
        self.writer.flush()?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        write_header(&mut file, generation)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.generation = generation;
        self.len_bytes = WAL_HEADER as u64;
        self.synced_bytes = WAL_HEADER as u64;
        self.records = 0;
        Ok(())
    }

    /// The log's generation (stamped at the last [`Wal::reset`], 0 for
    /// a fresh log).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Size of the log in bytes (header plus records).
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Record bytes in the log, excluding the file header — the number
    /// that drives compaction heuristics (0 right after a reset).
    pub fn data_bytes(&self) -> u64 {
        self.len_bytes.saturating_sub(WAL_HEADER as u64)
    }

    /// Bytes known to be on stable storage (see [`Wal::sync`]). A
    /// simulated power loss truncates the file to this offset; a
    /// simulated process crash keeps everything (the OS flushes
    /// user-space buffers when the handle drops).
    pub fn synced_bytes(&self) -> u64 {
        self.synced_bytes
    }

    /// Number of records appended (including replayed ones).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn write_header(file: &mut File, generation: u64) -> Result<(), WalError> {
    let mut header = [0u8; WAL_HEADER];
    header[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    header[4..12].copy_from_slice(&generation.to_le_bytes());
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Minimal unique temp-dir helper (no external tempfile crate).
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "hiloc-test-{tag}-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open_collect(path: &Path) -> (Wal, Vec<Vec<u8>>) {
        let (wal, replay) = Wal::open(path).unwrap();
        (wal, replay.collect_records().unwrap())
    }

    #[test]
    fn roundtrip_records() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, replayed) = open_collect(&path);
            assert!(replayed.is_empty());
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[0u8; 1024]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, replayed) = open_collect(&path);
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0], b"alpha");
        assert_eq!(replayed[1], b"");
        assert_eq!(replayed[2], vec![0u8; 1024]);
        assert_eq!(wal.record_count(), 3);
    }

    #[test]
    fn replay_streams_one_record_at_a_time() {
        let dir = TempDir::new("wal-stream");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for i in 0..100u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, mut replay) = Wal::open(&path).unwrap();
        let mut seen = 0u32;
        while let Some(rec) = replay.next_record().unwrap() {
            assert_eq!(rec, seen.to_le_bytes());
            seen += 1;
        }
        assert_eq!(seen, 100);
        assert!(replay.next_record().unwrap().is_none(), "exhausted reader stays exhausted");
    }

    #[test]
    fn truncated_tail_is_repaired() {
        let dir = TempDir::new("wal-trunc");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second-record").unwrap();
            wal.sync().unwrap();
        }
        // Chop 3 bytes off the end — simulates a crash mid-append.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let (mut wal, replayed) = open_collect(&path);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], b"first");
        // The log is usable after repair.
        wal.append(b"third").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = open_collect(&path);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1], b"third");
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = TempDir::new("wal-corrupt");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"aaaaaaaa").unwrap();
            wal.append(b"bbbbbbbb").unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the second record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let second_payload_start = WAL_HEADER + 8 + 8 + 8; // file header, header+payload, header
        raw[second_payload_start + 2] ^= 0xFF;
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all(&raw).unwrap();
        drop(f);

        let (_, replayed) = open_collect(&path);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], b"aaaaaaaa");
    }

    #[test]
    fn absurd_length_field_treated_as_damage() {
        let dir = TempDir::new("wal-len");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.sync().unwrap();
        }
        // Append garbage that claims a 4 GB record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&[0u8; 20]).unwrap();
        drop(f);

        let (_, replayed) = open_collect(&path);
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn damaged_file_header_resets_the_log() {
        let dir = TempDir::new("wal-header");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"doomed").unwrap();
            wal.sync().unwrap();
        }
        // Clobber the magic: the whole log is untrustworthy.
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let (wal, replayed) = open_collect(&path);
        assert!(replayed.is_empty());
        assert_eq!(wal.generation(), 0);
        assert_eq!(wal.data_bytes(), 0);
    }

    #[test]
    fn synced_bytes_advances_only_on_sync() {
        let dir = TempDir::new("wal-synced");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.synced_bytes(), WAL_HEADER as u64);
        wal.append(b"one").unwrap();
        assert_eq!(wal.synced_bytes(), WAL_HEADER as u64, "append must not count as durable");
        wal.flush().unwrap();
        assert_eq!(
            wal.synced_bytes(),
            WAL_HEADER as u64,
            "an OS flush must not count as durable"
        );
        wal.sync().unwrap();
        assert_eq!(wal.synced_bytes(), wal.len_bytes());
        wal.append(b"two").unwrap();
        let synced = wal.synced_bytes();
        assert!(synced < wal.len_bytes());
        // Truncating to the synced offset (a power loss) leaves a log
        // that replays exactly the synced prefix.
        drop(wal);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(synced).unwrap();
        drop(f);
        let (wal, replayed) = open_collect(&path);
        assert_eq!(replayed, vec![b"one".to_vec()]);
        assert_eq!(wal.synced_bytes(), synced);
    }

    #[test]
    fn reset_stamps_the_generation() {
        let dir = TempDir::new("wal-reset");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.generation(), 0);
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        wal.reset(7).unwrap();
        assert_eq!(wal.data_bytes(), 0);
        assert_eq!(wal.generation(), 7);
        wal.append(b"y").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (wal, replayed) = open_collect(&path);
        assert_eq!(replayed, vec![b"y".to_vec()]);
        assert_eq!(wal.generation(), 7, "the generation survives a reopen");
    }
}
