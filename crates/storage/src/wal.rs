//! Append-only write-ahead log with checksummed records.

use crate::{crc32, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Error alias for WAL operations.
pub type WalError = StorageError;

/// Header bytes per record: length (u32) + checksum (u32).
const RECORD_HEADER: usize = 8;
/// Refuse to read records larger than this (a corrupt length field
/// would otherwise cause a huge allocation).
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// An append-only log of length-prefixed, CRC-checked records.
///
/// Format per record: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
/// On open, the log is scanned; a truncated or corrupt tail (the result
/// of a crash mid-append) is detected and the file is truncated back to
/// the last valid record, matching the recovery behavior expected of
/// the visitor database ("the objects' forwarding paths are supposed to
/// survive system failures").
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    len_bytes: u64,
    /// Bytes guaranteed on stable storage (advanced by [`Wal::sync`]
    /// only). Appends and [`Wal::flush`] leave bytes in OS/user-space
    /// buffers, which a power loss — unlike a process crash — discards;
    /// the simulator truncates the file back to this offset to model
    /// that (see `power_loss_point` on the durable map).
    synced_bytes: u64,
    records: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, validating existing
    /// records and truncating a corrupt tail.
    ///
    /// Returns the WAL and the payloads of all valid records.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened, read or
    /// truncated. Corrupt tails are *not* errors — they are repaired.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<Vec<u8>>), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;

        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while raw.len() - offset >= RECORD_HEADER {
            let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
            if len > MAX_RECORD {
                break; // corrupt length; treat as tail damage
            }
            let start = offset + RECORD_HEADER;
            let end = start + len as usize;
            if end > raw.len() {
                break; // truncated mid-record
            }
            let payload = &raw[start..end];
            if crc32(payload) != crc {
                break; // corrupt payload
            }
            records.push(payload.to_vec());
            offset = end;
        }

        if offset < raw.len() {
            // Repair: drop the damaged tail.
            file.set_len(offset as u64)?;
        }
        drop(file);

        let file = OpenOptions::new().append(true).open(&path)?;
        let wal = Wal {
            path,
            writer: BufWriter::new(file),
            len_bytes: offset as u64,
            // Everything that survived the scan is on disk already.
            synced_bytes: offset as u64,
            records: records.len() as u64,
        };
        Ok((wal, records))
    }

    /// Appends one record. The record is buffered; call [`Wal::sync`]
    /// to make it durable.
    ///
    /// # Errors
    ///
    /// Returns an error when the write fails or the payload exceeds the
    /// maximum record size.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return Err(StorageError::Corrupt { offset: self.len_bytes, reason: "record too large" });
        }
        let len = (payload.len() as u32).to_le_bytes();
        let crc = crc32(payload).to_le_bytes();
        self.writer.write_all(&len)?;
        self.writer.write_all(&crc)?;
        self.writer.write_all(payload)?;
        self.len_bytes += (RECORD_HEADER + payload.len()) as u64;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file.
    ///
    /// # Errors
    ///
    /// Returns an error when flushing or syncing fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.synced_bytes = self.len_bytes;
        Ok(())
    }

    /// Flushes buffered records to the OS without fsync.
    ///
    /// # Errors
    ///
    /// Returns an error when flushing fails.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Truncates the log to zero records (used after a snapshot).
    ///
    /// # Errors
    ///
    /// Returns an error when truncation fails.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_data()?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.len_bytes = 0;
        self.synced_bytes = 0;
        self.records = 0;
        Ok(())
    }

    /// Size of the log in bytes (including record headers).
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Bytes known to be on stable storage (see [`Wal::sync`]). A
    /// simulated power loss truncates the file to this offset; a
    /// simulated process crash keeps everything (the OS flushes
    /// user-space buffers when the handle drops).
    pub fn synced_bytes(&self) -> u64 {
        self.synced_bytes
    }

    /// Number of records appended (including replayed ones).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;


    /// Minimal unique temp-dir helper (no external tempfile crate).
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "hiloc-test-{tag}-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn roundtrip_records() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[0u8; 1024]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0], b"alpha");
        assert_eq!(replayed[1], b"");
        assert_eq!(replayed[2], vec![0u8; 1024]);
        assert_eq!(wal.record_count(), 3);
    }

    #[test]
    fn truncated_tail_is_repaired() {
        let dir = TempDir::new("wal-trunc");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second-record").unwrap();
            wal.sync().unwrap();
        }
        // Chop 3 bytes off the end — simulates a crash mid-append.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], b"first");
        // The log is usable after repair.
        wal.append(b"third").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1], b"third");
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = TempDir::new("wal-corrupt");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"aaaaaaaa").unwrap();
            wal.append(b"bbbbbbbb").unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the second record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let second_payload_start = 8 + 8 + 8; // header+payload, header
        raw[second_payload_start + 2] ^= 0xFF;
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all(&raw).unwrap();
        drop(f);

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], b"aaaaaaaa");
    }

    #[test]
    fn absurd_length_field_treated_as_damage() {
        let dir = TempDir::new("wal-len");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.sync().unwrap();
        }
        // Append garbage that claims a 4 GB record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&[0u8; 20]).unwrap();
        drop(f);

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn synced_bytes_advances_only_on_sync() {
        let dir = TempDir::new("wal-synced");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.synced_bytes(), 0);
        wal.append(b"one").unwrap();
        assert_eq!(wal.synced_bytes(), 0, "append must not count as durable");
        wal.flush().unwrap();
        assert_eq!(wal.synced_bytes(), 0, "an OS flush must not count as durable");
        wal.sync().unwrap();
        assert_eq!(wal.synced_bytes(), wal.len_bytes());
        wal.append(b"two").unwrap();
        let synced = wal.synced_bytes();
        assert!(synced < wal.len_bytes());
        // Truncating to the synced offset (a power loss) leaves a log
        // that replays exactly the synced prefix.
        drop(wal);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(synced).unwrap();
        drop(f);
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"one".to_vec()]);
        assert_eq!(wal.synced_bytes(), synced);
    }

    #[test]
    fn reset_empties_log() {
        let dir = TempDir::new("wal-reset");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"y").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"y".to_vec()]);
    }
}
