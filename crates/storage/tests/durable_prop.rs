//! Property tests for the durable map: arbitrary operation sequences
//! (with interleaved compactions and crash-reopens) must match an
//! in-memory model, and arbitrary WAL-tail truncation must recover a
//! consistent prefix.

use hiloc_storage::{DurableMap, SyncPolicy};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hiloc-dmprop-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Remove(u64),
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..20, prop::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0u64..20).prop_map(Op::Remove),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn durable_map_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dir = TempDir::new();
        let mut db: DurableMap<Vec<u8>> =
            DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let got = db.insert(k, v.clone()).unwrap();
                    let want = model.insert(k, v);
                    prop_assert_eq!(got, want);
                }
                Op::Remove(k) => {
                    let got = db.remove(k).unwrap();
                    let want = model.remove(&k);
                    prop_assert_eq!(got, want);
                }
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    db.sync().unwrap();
                    drop(db);
                    db = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
                }
            }
            prop_assert_eq!(db.len(), model.len());
        }
        // Final recovery check.
        db.sync().unwrap();
        drop(db);
        let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        for (k, v) in &model {
            prop_assert_eq!(db.get(*k), Some(v));
        }
        prop_assert_eq!(db.len(), model.len());
    }

    /// Truncating the WAL at an arbitrary byte must recover a prefix of
    /// the applied operations — never a corrupted or reordered state.
    #[test]
    fn wal_truncation_recovers_a_prefix(
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 2..20),
        cut_fraction in 0.0..1.0f64,
    ) {
        let dir = TempDir::new();
        {
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
            for (i, v) in values.iter().enumerate() {
                db.insert(i as u64, v.clone()).unwrap();
            }
            db.sync().unwrap();
        }
        // Truncate the log somewhere in the middle.
        let wal = dir.0.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = (len as f64 * cut_fraction) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        let n = db.len();
        prop_assert!(n <= values.len());
        // The surviving records are exactly the first n inserts.
        for (i, v) in values.iter().enumerate().take(n) {
            prop_assert_eq!(db.get(i as u64), Some(v), "prefix property violated");
        }
        for i in n..values.len() {
            prop_assert!(db.get(i as u64).is_none());
        }
    }
}
