//! Property tests for the durable map: arbitrary operation sequences
//! (with interleaved compactions and crash-reopens) must match an
//! in-memory model, arbitrary WAL-tail truncation must recover a
//! consistent prefix, and checkpointed recovery (manifest + WAL
//! suffix) must be indistinguishable from full-log replay. Runs on the
//! in-tree seeded harness ([`hiloc_util::prop`]).

use hiloc_storage::{DurableMap, SyncPolicy};
use hiloc_util::prop::{check, Gen};
use hiloc_util::rng::RngExt;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hiloc-dmprop-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Remove(u64),
    Compact,
    Reopen,
}

/// Weighted as the original proptest strategy: 5 insert, 3 remove,
/// 1 compact, 1 reopen.
fn random_op(g: &mut Gen) -> Op {
    match g.random_range(0..10u32) {
        0..=4 => Op::Insert(g.random_range(0..20u64), g.bytes(23)),
        5..=7 => Op::Remove(g.random_range(0..20u64)),
        8 => Op::Compact,
        _ => Op::Reopen,
    }
}

#[test]
fn durable_map_matches_model() {
    check(48, |g| {
        let n_ops = g.random_range(1..60usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(g)).collect();
        let dir = TempDir::new();
        let mut db: DurableMap<Vec<u8>> =
            DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    db.insert(k, v.clone()).unwrap();
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let got = db.remove(k).unwrap();
                    let want = model.remove(&k);
                    assert_eq!(got, want.is_some());
                }
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    db.sync().unwrap();
                    drop(db);
                    db = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
                }
            }
            assert_eq!(db.len(), model.len());
        }
        // Final recovery check.
        db.sync().unwrap();
        drop(db);
        let mut db: DurableMap<Vec<u8>> = DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        for (k, v) in &model {
            assert_eq!(db.get(*k).unwrap().as_ref(), Some(v));
        }
        assert_eq!(db.len(), model.len());
    });
}

/// Loading the checkpoint and replaying only the WAL suffix must
/// produce exactly the state that replaying the entire history would:
/// the same random op sequence runs once with a checkpoint at a random
/// position and once without any, and the recovered maps must agree on
/// every key.
#[test]
fn checkpointed_recovery_equals_full_log_replay() {
    check(48, |g| {
        let n_ops = g.random_range(2..80usize);
        let ops: Vec<(bool, u64, Vec<u8>)> = (0..n_ops)
            .map(|_| {
                let put = g.random_range(0..10u32) < 7;
                let len = g.random_range(1..40usize);
                (put, g.random_range(0..16u64), g.bytes(len))
            })
            .collect();
        let checkpoint_at = g.random_range(0..n_ops);

        let run = |home: &std::path::Path, compact_at: Option<usize>| {
            // Which ops actually hit the WAL (removing an absent key
            // appends nothing) — identical across both runs, since the
            // op sequence and state evolution are.
            let mut appended = Vec::with_capacity(ops.len());
            {
                let mut db: DurableMap<Vec<u8>> =
                    DurableMap::open(home, SyncPolicy::OsFlush).unwrap();
                for (i, (put, k, v)) in ops.iter().enumerate() {
                    if *put {
                        db.insert(*k, v.clone()).unwrap();
                        appended.push(true);
                    } else {
                        appended.push(db.remove(*k).unwrap());
                    }
                    if compact_at == Some(i) {
                        db.compact().unwrap();
                    }
                }
                db.sync().unwrap();
            }
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(home, SyncPolicy::OsFlush).unwrap();
            let mut contents: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            db.for_each(|k, v| {
                contents.insert(k, v.clone());
            })
            .unwrap();
            (contents, db.stats(), appended)
        };

        let a = TempDir::new();
        let b = TempDir::new();
        let (checkpointed, ck_stats, appended) = run(&a.0, Some(checkpoint_at));
        let (full_replay, full_stats, appended_b) = run(&b.0, None);
        assert_eq!(appended, appended_b, "runs diverged before recovery");

        assert_eq!(checkpointed, full_replay, "checkpoint changed the recovered state");
        // The checkpointed run replayed exactly the post-checkpoint
        // suffix; the other run replayed the whole history.
        let records = |slice: &[bool]| slice.iter().filter(|&&a| a).count() as u64;
        assert_eq!(ck_stats.replayed, records(&appended[checkpoint_at + 1..]));
        assert_eq!(full_stats.replayed, records(&appended));
    });
}

/// Truncating the WAL at an arbitrary byte must recover a prefix of
/// the applied operations — never a corrupted or reordered state.
#[test]
fn wal_truncation_recovers_a_prefix() {
    check(48, |g| {
        let n_values = g.random_range(2..20usize);
        let values: Vec<Vec<u8>> = (0..n_values)
            .map(|_| {
                let len = g.random_range(1..16usize);
                let mut v = vec![0u8; len];
                g.fill_bytes(&mut v);
                v
            })
            .collect();
        let cut_fraction = g.random_range(0.0..1.0);

        let dir = TempDir::new();
        {
            let mut db: DurableMap<Vec<u8>> =
                DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
            for (i, v) in values.iter().enumerate() {
                db.insert(i as u64, v.clone()).unwrap();
            }
            db.sync().unwrap();
        }
        // Truncate the log somewhere in the middle.
        let wal = dir.0.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = (len as f64 * cut_fraction) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let mut db: DurableMap<Vec<u8>> =
            DurableMap::open(&dir.0, SyncPolicy::OsFlush).unwrap();
        let n = db.len();
        assert!(n <= values.len());
        // The surviving records are exactly the first n inserts.
        for (i, v) in values.iter().enumerate().take(n) {
            assert_eq!(db.get(i as u64).unwrap().as_ref(), Some(v), "prefix property violated");
        }
        for i in n..values.len() {
            assert!(db.get(i as u64).unwrap().is_none());
        }
    });
}
