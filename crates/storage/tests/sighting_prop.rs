//! Property test: the slab-backed `SightingDb` (arena slots + expiry
//! wheel) must behave exactly like a naive `HashMap` + linear-scan
//! oracle under randomized upsert/remove/expire/query workloads —
//! including slot reuse after removal and stale-wheel-entry handling
//! after refreshes.

use hiloc_geo::{Point, Rect};
use hiloc_storage::{SightingDb, StoredSighting};
use hiloc_util::prop::{check, Gen};
use hiloc_util::rng::RngExt;
use std::collections::HashMap;

const KEYS: u64 = 24;
const AREA: f64 = 200.0;

fn random_sighting(g: &mut Gen, now: u64) -> StoredSighting {
    StoredSighting {
        key: g.random_range(0..KEYS),
        pos: Point::new(g.random_range(0.0..AREA), g.random_range(0.0..AREA)),
        time_us: now,
        acc_sens_m: g.random_range(1.0..50.0),
        expires_us: now + g.random_range(1..5_000_000u64),
    }
}

/// The oracle's expiry: everything with `expires_us <= now`, delivered
/// in `(deadline, key)` order — the contract the wheel must match.
fn oracle_expire(oracle: &mut HashMap<u64, StoredSighting>, now: u64) -> Vec<StoredSighting> {
    let mut due: Vec<StoredSighting> =
        oracle.values().filter(|r| r.expires_us <= now).copied().collect();
    due.sort_by_key(|r| (r.expires_us, r.key));
    for r in &due {
        oracle.remove(&r.key);
    }
    due
}

fn oracle_query(oracle: &HashMap<u64, StoredSighting>, rect: &Rect) -> Vec<u64> {
    let mut keys: Vec<u64> =
        oracle.values().filter(|r| rect.contains(r.pos)).map(|r| r.key).collect();
    keys.sort_unstable();
    keys
}

fn db_query(db: &SightingDb, rect: &Rect) -> Vec<u64> {
    let mut keys = Vec::new();
    db.query_rect(rect, &mut |r| keys.push(r.key));
    keys.sort_unstable();
    keys
}

fn run_against_oracle(g: &mut Gen, mut db: SightingDb, name: &str) {
    let mut oracle: HashMap<u64, StoredSighting> = HashMap::new();
    let mut now = 0u64;
    let steps = g.random_range(20..200usize);
    for step in 0..steps {
        match g.random_range(0..10u32) {
            // Upserts dominate: the update-storm shape.
            0..=4 => {
                let s = random_sighting(g, now);
                let a = db.upsert(s);
                let b = oracle.insert(s.key, s);
                assert_eq!(a, b, "[{name}] step {step}: upsert return mismatch");
            }
            5 => {
                let key = g.random_range(0..KEYS);
                let a = db.remove(key);
                let b = oracle.remove(&key);
                assert_eq!(a, b, "[{name}] step {step}: remove return mismatch");
            }
            6 => {
                // Advance the clock and expire; lists must match in
                // content *and* order.
                now += g.random_range(0..3_000_000u64);
                let a = db.expire_due(now);
                let b = oracle_expire(&mut oracle, now);
                assert_eq!(a, b, "[{name}] step {step}: expire_due mismatch at now={now}");
            }
            7 => {
                let key = g.random_range(0..KEYS);
                assert_eq!(
                    db.get(key).copied(),
                    oracle.get(&key).copied(),
                    "[{name}] step {step}: get mismatch"
                );
            }
            _ => {
                let a = Point::new(g.random_range(-10.0..AREA), g.random_range(-10.0..AREA));
                let b = Point::new(g.random_range(-10.0..AREA), g.random_range(-10.0..AREA));
                let rect = Rect::new(a, b);
                assert_eq!(
                    db_query(&db, &rect),
                    oracle_query(&oracle, &rect),
                    "[{name}] step {step}: query_rect mismatch on {rect}"
                );
            }
        }
        assert_eq!(db.len(), oracle.len(), "[{name}] step {step}: len mismatch");
        // The slab is bounded by the key universe (slots are reused
        // after removal), and the wheel by 2× live + the compaction
        // floor — the memory invariants of the rework.
        assert!(
            db.slot_capacity() <= KEYS as usize,
            "[{name}] step {step}: slab grew past the peak live set"
        );
        assert!(
            db.expiry_entries() <= 2 * db.len() + 64,
            "[{name}] step {step}: wheel entries {} exceed bound for {} live",
            db.expiry_entries(),
            db.len()
        );
        // The expiry hint may be stale-early but never later than the
        // earliest real deadline.
        if let Some(min_live) = oracle.values().map(|r| r.expires_us).min() {
            let hint = db.next_expiry().expect("live records imply a pending expiry");
            assert!(
                hint <= min_live,
                "[{name}] step {step}: hint {hint} after earliest deadline {min_live}"
            );
        }
    }
    // Drain: everything expires eventually, leaving the wheel empty.
    let a = db.expire_due(u64::MAX);
    let b = oracle_expire(&mut oracle, u64::MAX);
    assert_eq!(a, b, "[{name}] final drain mismatch");
    assert!(db.is_empty());
    assert_eq!(db.expiry_entries(), 0, "[{name}] stale entries must not outlive the drain");
}

const CASES: u32 = 48;

#[test]
fn slab_db_matches_oracle_quadtree() {
    check(CASES, |g| run_against_oracle(g, SightingDb::new_quadtree(), "quadtree"));
}

#[test]
fn slab_db_matches_oracle_rtree() {
    check(CASES, |g| run_against_oracle(g, SightingDb::new_rtree(), "rtree"));
}

#[test]
fn slab_db_matches_oracle_grid() {
    check(CASES, |g| run_against_oracle(g, SightingDb::new_grid(20.0), "grid"));
}

/// Slot reuse after removal, driven hard: a churn loop that
/// deregisters and re-registers disjoint key ranges must keep the
/// arena at the peak population while answering queries exactly.
#[test]
fn slot_reuse_churn() {
    let mut db = SightingDb::new_grid(25.0);
    let mut oracle: HashMap<u64, StoredSighting> = HashMap::new();
    for round in 0..50u64 {
        let base = (round % 4) * 25; // rotating key window
        for k in base..base + 25 {
            let s = StoredSighting {
                key: k,
                pos: Point::new((k % 10) as f64 * 10.0, (round % 7) as f64 * 10.0),
                time_us: round,
                acc_sens_m: 5.0,
                expires_us: 1_000 * (round + 1),
            };
            assert_eq!(db.upsert(s), oracle.insert(k, s));
        }
        for k in base..base + 12 {
            assert_eq!(db.remove(k), oracle.remove(&k));
        }
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 70.0));
        assert_eq!(db_query(&db, &rect), oracle_query(&oracle, &rect), "round {round}");
    }
    assert!(db.slot_capacity() <= 100, "churn must reuse slots, not grow the arena");
}
