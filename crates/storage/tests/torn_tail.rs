//! Exhaustive crash-consistency tests: a crash mid-append can truncate
//! the WAL at *any* byte. For every possible truncation offset the
//! stores must recover the longest valid record prefix — silently, and
//! without ever erroring or resurrecting partial records.
//!
//! (The sighting database is volatile by design — the paper restores
//! sightings on demand after a restart — so its "recovery" is the
//! probe/update path exercised by the chaos scenario suite in
//! `crates/sim`; the durable structures tested here are the [`Wal`]
//! and the [`DurableMap`] backing the visitor database. The checkpoint
//! manifest gets the same every-offset treatment in
//! `crates/storage/src/checkpoint.rs`, where torn means *error*, not
//! repair.)

use hiloc_storage::{DurableMap, SyncPolicy, Wal};
use hiloc_util::tempdir::TempDir;
use std::path::Path;

/// Bytes the WAL file header occupies: magic + generation + reserved.
const WAL_HEADER: usize = 16;

/// Bytes a WAL record occupies on disk: `[len][crc]` header + payload.
fn record_size(payload: &[u8]) -> usize {
    8 + payload.len()
}

fn truncate_copy(src: &Path, dst: &Path, len: usize) {
    let mut raw = std::fs::read(src).unwrap();
    raw.truncate(len);
    std::fs::write(dst, &raw).unwrap();
}

#[test]
fn wal_recovers_longest_valid_prefix_at_every_byte_offset() {
    let payloads: [&[u8]; 4] = [b"alpha", b"", b"a-noticeably-longer-third-record", b"tail"];
    let dir = TempDir::new("wal");
    let golden = dir.path().join("golden.log");
    {
        let (mut wal, _) = Wal::open(&golden).unwrap();
        for p in payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
    }
    let full = std::fs::metadata(&golden).unwrap().len() as usize;
    assert_eq!(full, WAL_HEADER + payloads.iter().map(|p| record_size(p)).sum::<usize>());

    // Record end offsets, to map a cut to the surviving prefix. A cut
    // inside the 16-byte file header resets the log to empty.
    let ends: Vec<usize> = payloads
        .iter()
        .scan(WAL_HEADER, |acc, p| {
            *acc += record_size(p);
            Some(*acc)
        })
        .collect();

    for cut in 0..=full {
        let torn = dir.path().join(format!("torn-{cut}.log"));
        truncate_copy(&golden, &torn, cut);
        let (mut wal, replay) = Wal::open(&torn)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: open must repair, got {e:?}"));
        let replayed = replay.collect_records().unwrap();
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(replayed.len(), survivors, "cut at byte {cut}");
        for (i, p) in payloads.iter().take(survivors).enumerate() {
            assert_eq!(&replayed[i], p, "cut at byte {cut}, record {i}");
        }
        // The repaired log stays usable: append and read back.
        wal.append(b"post-repair").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&torn).unwrap();
        let again = replay.collect_records().unwrap();
        assert_eq!(again.len(), survivors + 1, "cut at byte {cut}");
        assert_eq!(again.last().unwrap(), b"post-repair");
        std::fs::remove_file(&torn).unwrap();
    }
}

#[test]
fn durable_map_recovers_longest_valid_prefix_at_every_byte_offset() {
    // Ops: insert 1, insert 2, remove 1, insert 3 — so every prefix
    // length has a distinct, easily predictable state.
    let dir = TempDir::new("map");
    let golden = dir.path().join("golden");
    {
        let mut db: DurableMap<Vec<u8>> = DurableMap::open(&golden, SyncPolicy::Always).unwrap();
        db.insert(1, b"one".to_vec()).unwrap();
        db.insert(2, b"two-longer".to_vec()).unwrap();
        db.remove(1).unwrap();
        db.insert(3, b"three".to_vec()).unwrap();
    }
    // WAL record payloads: op byte + key (8) + value bytes.
    let op_sizes = [8 + 1 + 8 + 3, 8 + 1 + 8 + 10, 8 + 1 + 8, 8 + 1 + 8 + 5];
    let wal_src = golden.join("wal.log");
    let full = std::fs::metadata(&wal_src).unwrap().len() as usize;
    assert_eq!(full, WAL_HEADER + op_sizes.iter().sum::<usize>());
    let ends: Vec<usize> = op_sizes
        .iter()
        .scan(WAL_HEADER, |acc, s| {
            *acc += s;
            Some(*acc)
        })
        .collect();

    // Expected (len, has_1, has_2, has_3) after each op-prefix.
    let expected = [
        (0, false, false, false),
        (1, true, false, false),
        (2, true, true, false),
        (1, false, true, false),
        (2, false, true, true),
    ];

    for cut in 0..=full {
        let case = dir.path().join(format!("case-{cut}"));
        std::fs::create_dir_all(&case).unwrap();
        truncate_copy(&wal_src, &case.join("wal.log"), cut);
        let db: DurableMap<Vec<u8>> = DurableMap::open(&case, SyncPolicy::Always)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: open must repair, got {e:?}"));
        let ops = ends.iter().filter(|&&e| e <= cut).count();
        let (len, has_1, has_2, has_3) = expected[ops];
        assert_eq!(db.len(), len, "cut at byte {cut} ({ops} ops survive)");
        assert_eq!(db.contains_key(1), has_1, "cut at byte {cut}");
        assert_eq!(db.contains_key(2), has_2, "cut at byte {cut}");
        assert_eq!(db.contains_key(3), has_3, "cut at byte {cut}");
        assert_eq!(db.stats().replayed, ops as u64, "cut at byte {cut}");
        drop(db);
        std::fs::remove_dir_all(&case).unwrap();
    }
}

#[test]
fn torn_tail_after_checkpoint_only_loses_tail_mutations() {
    // A checkpoint plus a torn WAL tail: the checkpointed state must
    // be intact and only the torn tail record lost.
    let dir = TempDir::new("snap");
    let home = dir.path().join("db");
    {
        let mut db: DurableMap<Vec<u8>> = DurableMap::open(&home, SyncPolicy::Always).unwrap();
        for k in 0..20u64 {
            db.insert(k, vec![k as u8; 4]).unwrap();
        }
        db.compact().unwrap();
        db.insert(100, b"after-snapshot".to_vec()).unwrap();
    }
    let wal = home.join("wal.log");
    let full = std::fs::metadata(&wal).unwrap().len();
    // Cut mid-record (the exhaustive per-byte scan lives above).
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(WAL_HEADER as u64 + (full - WAL_HEADER as u64) / 2).unwrap();
    drop(f);
    let db: DurableMap<Vec<u8>> = DurableMap::open(&home, SyncPolicy::Always).unwrap();
    assert_eq!(db.len(), 20, "checkpoint entries survive a torn WAL tail");
    assert!(!db.contains_key(100), "the torn tail mutation is gone");
    assert_eq!(db.stats().snapshot_loaded, 20);
    assert_eq!(db.stats().replayed, 0);
}
