//! Wall-clock micro-benchmark harness.
//!
//! Exposes the subset of the `criterion` API the workspace's benches
//! use — `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, `criterion_group!`/`criterion_main!`
//! — so the bench sources only change their import line. Measurement is
//! a plain `Instant` loop: calibrate an iteration count that fills a
//! ~2 ms sample, take N samples, report min/median/max ns per
//! iteration to stdout.
//!
//! This is deliberately simpler than criterion (no outlier analysis, no
//! HTML reports); the numbers are for Table 1/2-style comparisons where
//! an order-of-magnitude-accurate median is what the paper reports.

use std::time::{Duration, Instant};

/// Target wall-clock time for one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// How the setup cost of `iter_batched` relates to the routine cost.
/// Only a hint in criterion; ignored here (setup is always excluded
/// from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self
            .sample_size
            .unwrap_or(self._criterion.default_sample_size);
        let mut b = Bencher { samples_wanted: samples, ns_per_iter: Vec::new() };
        f(&mut b);
        report(&self.name, &id.into(), &mut b.ns_per_iter);
        self
    }

    /// Ends the group (no-op; kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples_wanted: usize,
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called in calibrated batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: double the batch until it fills the
        // per-sample budget.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || batch >= 1 << 24 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 2;
        };
        // Re-derive the batch so each sample is ~SAMPLE_TARGET.
        let batch = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns.max(1.0)).ceil() as u64).max(1);
        for _ in 0..self.samples_wanted {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.ns_per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples_wanted {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.ns_per_iter.push(start.elapsed().as_nanos() as f64);
            std::hint::black_box(out);
        }
    }
}

fn report(group: &str, id: &str, ns: &mut [f64]) {
    if ns.is_empty() {
        println!("bench {group}/{id}: no samples");
        return;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = ns[ns.len() / 2];
    println!(
        "bench {group}/{id}: median {} (min {}, max {}, {} samples)",
        fmt_ns(median),
        fmt_ns(ns[0]),
        fmt_ns(ns[ns.len() - 1]),
        ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

/// Bundles benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher { samples_wanted: 3, ns_per_iter: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.ns_per_iter.len(), 3);
        assert!(b.ns_per_iter.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { samples_wanted: 2, ns_per_iter: Vec::new() };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(b.ns_per_iter.len(), 2);
    }

    #[test]
    fn group_runs_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2e9).contains("s/iter"));
    }
}
