//! Little-endian byte-buffer extension traits.
//!
//! In-tree replacement for the `bytes` crate's `Buf`/`BufMut` pair as
//! the storage layer uses them: [`BufMut`] appends fixed-width
//! little-endian values to a `Vec<u8>`, [`Buf`] consumes them from a
//! `&[u8]`, advancing the slice.
//!
//! The reading methods **panic** on underflow, exactly like their
//! `bytes` namesakes; callers that face hostile input must check
//! [`Buf::remaining`] first (the wire codec in `hiloc-net` does).

/// Reads fixed-width little-endian values from a byte slice, advancing
/// it.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on an empty buffer.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! take {
    ($self:ident, $n:literal) => {{
        let (head, rest) = $self.split_at($n);
        let arr: [u8; $n] = head.try_into().expect("split_at returned $n bytes");
        *$self = rest;
        arr
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let [b] = take!(self, 1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(take!(self, 2))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(take!(self, 4))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(take!(self, 8))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(take!(self, 8))
    }
}

/// Appends fixed-width little-endian values to a growable buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v = Vec::new();
        v.put_u8(0xAB);
        v.put_u16_le(0x1234);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(u64::MAX - 1);
        v.put_f64_le(-2.5);
        let mut r = v.as_slice();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r = data.as_slice();
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    fn little_endian_layout() {
        let mut v = Vec::new();
        v.put_u32_le(1);
        assert_eq!(v, [1, 0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let data = [1u8];
        let mut r = data.as_slice();
        let _ = r.get_u32_le();
    }
}
