//! A minimal JSON tree: emitter and recursive-descent parser.
//!
//! In-tree replacement for the only thing the workspace used
//! `serde`/`serde_json` for: persisting a deployment configuration as a
//! readable document and loading it back. This is deliberately small —
//! a dynamically-typed [`Json`] value, a pretty writer, and a strict
//! parser (UTF-8 input, `f64` numbers, `\uXXXX` escapes, no trailing
//! commas or comments).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value under `key` when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integers print without a trailing ".0" (like serde_json).
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError { offset: self.pos, reason }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the workspace never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii numeric token");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, reason: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("hiloc \"v1\"\n".into())),
            ("count".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(-0.5)),
            ("ok".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "areas".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_plain_documents() {
        let v = Json::parse(r#"{"a": [1, 2e3, -4.5], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2000.0));
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 7, "s": "x", "b": false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("nope"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"unterminated",
            "{\"a\": 1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = Json::Str("tab\there \"quoted\" \\ \u{1}".into());
        let text = s.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""café – naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café – naïve"));
    }
}
