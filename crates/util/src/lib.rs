//! std-only substrate for the hiloc workspace.
//!
//! The build environment has no crates.io access, so everything the
//! workspace would normally pull from external crates lives here as a
//! small, focused, in-tree substitute:
//!
//! * [`rng`] — a seedable xoshiro256++ PRNG with the `random_range` /
//!   `random_bool` / `shuffle` surface the simulators and benchmarks
//!   use (replaces `rand`).
//! * [`buf`] — `Buf`/`BufMut` extension traits over `&[u8]` and
//!   `Vec<u8>` for little-endian wire encoding (replaces `bytes`).
//! * [`sync`] — poison-transparent `Mutex`/`RwLock` wrappers and an
//!   unbounded MPMC-ish channel with `len()`/`recv_timeout` (replaces
//!   `parking_lot` and `crossbeam-channel`).
//! * [`json`] — a minimal JSON tree with emitter and parser (replaces
//!   `serde`/`serde_json` for configuration persistence).
//! * [`prop`] — a seeded property-test harness with failure-case
//!   reporting (replaces `proptest` for the invariants we check).
//! * [`bench`] — a wall-clock micro-benchmark harness exposing the
//!   subset of the `criterion` API the benches use.
//! * [`tempdir`] — self-deleting scratch directories for tests and
//!   durable-store harnesses (replaces `tempfile`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod buf;
pub mod json;
pub mod prop;
pub mod rng;
pub mod sync;
pub mod tempdir;
