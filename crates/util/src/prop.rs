//! A small seeded property-test harness.
//!
//! In-tree replacement for the way the workspace used `proptest`: each
//! property is an ordinary `#[test]` that calls [`check`] with a closure
//! over a [`Gen`]. The harness runs the closure for N cases, each with a
//! deterministic per-case RNG stream, and on failure reports the case
//! number and seed so the exact inputs can be replayed:
//!
//! ```
//! use hiloc_util::prop::check;
//! use hiloc_util::rng::RngExt;
//!
//! check(64, |g| {
//!     let x = g.random_range(-1_000.0..1_000.0);
//!     assert!(x.abs() <= 1_000.0);
//! });
//! ```
//!
//! * `HILOC_PROP_CASES` scales the case count (useful in CI vs. local).
//! * `HILOC_PROP_SEED` replays a failing run's stream.
//!
//! There is no shrinking; properties here take scalar inputs whose
//! failing values are directly readable from the assertion message, and
//! determinism makes every failure replayable.

use crate::rng::{RngCore, SeedableRng, StdRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed ("HILO" in ASCII).
const DEFAULT_SEED: u64 = 0x4849_4C4F;

/// Per-case input source: a deterministic RNG (use the
/// [`RngExt`](crate::rng::RngExt) drawing methods) plus vector helpers.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
    case: u32,
}

impl RngCore for Gen {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

impl Gen {
    /// A standalone generator for `seed`, outside a [`check`] loop —
    /// the entry point for harnesses (like the scenario fuzzer) that
    /// manage their own case numbering and print the seed themselves
    /// so any drawn structure can be regenerated bit-for-bit.
    pub fn for_seed(seed: u64) -> Self {
        Gen { rng: StdRng::seed_from_u64(seed), case: 0 }
    }

    /// The 0-based case number this generator belongs to.
    pub fn case(&self) -> u32 {
        self.case
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        use crate::rng::RngExt;
        self.random_bool(p)
    }

    /// A uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        use crate::rng::RngExt;
        self.choose(items).expect("pick from an empty slice")
    }

    /// An index drawn with probability proportional to `weights[i]`
    /// (entries with weight 0 are never drawn).
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or sums to 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        use crate::rng::RngExt;
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weighted pick needs a positive total weight");
        let mut draw = self.random_range(0..total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        unreachable!("draw < total by construction")
    }

    /// A random byte vector with length in `0..=max_len`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        use crate::rng::RngExt;
        let len = self.random_range(0..=max_len);
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// A random index into a collection of length `len` (0 when empty).
    pub fn index(&mut self, len: usize) -> usize {
        use crate::rng::RngExt;
        if len == 0 {
            0
        } else {
            self.random_range(0..len)
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `property` for `cases` cases (scaled by `HILOC_PROP_CASES` when
/// set), each with a deterministic per-case input stream.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case
/// number and the seed needed to replay it.
pub fn check<F: FnMut(&mut Gen)>(cases: u32, mut property: F) {
    let cases = env_u64("HILOC_PROP_CASES").map(|n| n as u32).unwrap_or(cases).max(1);
    let seed = env_u64("HILOC_PROP_SEED").unwrap_or(DEFAULT_SEED);
    for case in 0..cases {
        // Distinct, seed-derived stream per case.
        let mut g = Gen {
            rng: StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            case,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            eprintln!(
                "property failed at case {case}/{cases} (base seed {seed:#x}); \
                 replay with HILOC_PROP_SEED={seed} HILOC_PROP_CASES={cases}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngExt;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0u32;
        check(17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_get_distinct_streams() {
        let mut firsts = Vec::new();
        check(8, |g| firsts.push(g.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        check(4, |g| a.push(g.random_range(0..1_000_000u64)));
        check(4, |g| b.push(g.random_range(0..1_000_000u64)));
        assert_eq!(a, b);
    }

    #[test]
    fn failure_is_propagated() {
        let result = std::panic::catch_unwind(|| {
            check(10, |g| assert!(g.case() < 5, "boom at case {}", g.case()));
        });
        assert!(result.is_err());
    }

    #[test]
    fn bytes_respects_bound() {
        check(32, |g| {
            let v = g.bytes(100);
            assert!(v.len() <= 100);
        });
    }

    #[test]
    fn index_in_bounds() {
        check(32, |g| {
            assert!(g.index(7) < 7);
            assert_eq!(g.index(0), 0);
        });
    }

    #[test]
    fn for_seed_is_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| Gen::for_seed(99).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]), "same seed, same first draw");
        let mut g = Gen::for_seed(99);
        let mut h = Gen::for_seed(99);
        for _ in 0..32 {
            assert_eq!(g.next_u64(), h.next_u64());
        }
        assert_ne!(Gen::for_seed(1).next_u64(), Gen::for_seed(2).next_u64());
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut g = Gen::for_seed(5);
        for _ in 0..200 {
            let i = g.weighted(&[0, 3, 0, 1]);
            assert!(i == 1 || i == 3, "zero-weight arm drawn: {i}");
        }
    }

    #[test]
    fn weighted_hits_every_positive_arm() {
        let mut g = Gen::for_seed(6);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[g.weighted(&[1, 1, 1])] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn pick_and_chance_draw_from_the_stream() {
        let mut g = Gen::for_seed(7);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(g.pick(&items)));
        }
        let heads = (0..1000).filter(|_| g.chance(0.5)).count();
        assert!((300..=700).contains(&heads), "fair-ish coin: {heads}");
    }
}
