//! Seedable pseudo-random number generation.
//!
//! A small, deterministic replacement for the `rand` crate surface the
//! workspace uses: [`StdRng`] is xoshiro256++ seeded through SplitMix64,
//! [`RngExt`] provides `random`, `random_range`, `random_bool` and
//! `shuffle`, and [`SeedableRng`] carries the `seed_from_u64`
//! constructor. All streams are fully determined by their seed, which is
//! what the simulators, property tests and benchmark fixtures rely on.

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++.
///
/// Fast, passes BigCrush, 256-bit state; state is expanded from the
/// 64-bit seed with SplitMix64 so similar seeds yield unrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion (Vigna's recommended seeding).
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A value that can be drawn uniformly from a generator via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn uniformly from, used by
/// [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = f64::standard(rng);
        let v = self.start + u * (self.end - self.start);
        // u < 1 keeps v < end mathematically; guard against rounding up.
        if v < self.end { v } else { self.start }
    }
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift (Lemire,
/// without the rejection step — the bias at simulation scales is
/// ≤ 2⁻⁶⁴·span, far below anything the experiments can observe).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws on top of any [`RngCore`]; mirrors the part of
/// `rand::Rng` the workspace uses.
pub trait RngExt: RngCore {
    /// A uniform value of `T` ([`f64`] in `[0, 1)`, full width for
    /// integers).
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` when `slice` is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[below(self, slice.len() as u64) as usize])
        }
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.random_range(-900.0..900.0);
            assert!((-900.0..900.0).contains(&x));
            let n = r.random_range(0..17usize);
            assert!(n < 17);
            let m = r.random_range(0..=5u64);
            assert!(m <= 5);
            let i = r.random_range(-10..10i64);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0..=5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying put is ~impossible");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
