//! Synchronization primitives over `std::sync`.
//!
//! [`Mutex`] and [`RwLock`] are thin poison-transparent wrappers with
//! the `parking_lot` calling convention (`lock()`/`read()`/`write()`
//! return guards directly — a poisoned lock just hands back the inner
//! guard, since hiloc treats a panic while holding a lock as fatal to
//! the test/process, not to the lock). [`channel`] is an unbounded
//! channel with queue introspection and disconnect semantics, standing
//! in for `crossbeam::channel`.

// lint:allow-file(wallclock) condvar wait timeouts are genuine wall-clock deadlines
use std::sync::TryLockError;

/// A mutual-exclusion lock that does not surface poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that does not surface poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub mod channel {
    //! Unbounded and bounded channels with `len()`, `recv_timeout` and
    //! crossbeam-style disconnect semantics.
    //!
    //! Senders are cheap to clone; the receiver observes disconnection
    //! once every sender is dropped **and** the queue has drained.
    //! Bounded channels ([`bounded`]) add backpressure: `send` blocks
    //! until space frees up, while [`Sender::try_send`] reports
    //! [`TrySendError::Full`] immediately — the primitive behind the
    //! sharded runtime's shed-on-overload inboxes.

    use super::Mutex;
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar};
    use std::time::{Duration, Instant};

    /// Sending on a channel whose receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Outcome of a non-blocking send attempt on a bounded channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the value is handed back so the
        /// caller can shed it (count + drop) or retry.
        Full(T),
        /// The receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True for the [`TrySendError::Full`] outcome.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Blocking receive on a channel with no remaining senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with nothing queued.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
        /// `None` for unbounded channels.
        cap: Option<usize>,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        available: Condvar,
        /// Signalled when a bounded queue pops below capacity (or the
        /// receiver goes away) so blocked `send`s re-check.
        space: Condvar,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded channel holding at most `cap` messages.
    ///
    /// `send` blocks while full (backpressure); [`Sender::try_send`]
    /// returns [`TrySendError::Full`] instead, letting the caller shed.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0`: a zero-capacity rendezvous channel is
    /// not supported (every `try_send` would shed).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be at least 1");
        new_channel(Some(cap))
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
                cap,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().receiver_alive = false;
            // Senders parked on a full bounded queue must observe the
            // disconnect rather than wait forever.
            self.inner.space.notify_all();
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded queue is full
        /// (backpressure; unbounded channels never block).
        ///
        /// # Errors
        ///
        /// Returns the value when the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock();
            loop {
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .inner
                            .space
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.available.notify_one();
            Ok(())
        }

        /// Non-blocking enqueue.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded queue is at capacity
        /// (the shed outcome), [`TrySendError::Disconnected`] when the
        /// receiver is gone. Both hand the value back.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock();
            if !st.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.available.notify_one();
            Ok(())
        }

        /// The channel's capacity; `None` when unbounded.
        pub fn capacity(&self) -> Option<usize> {
            self.inner.state.lock().cap
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns an error when all senders are gone and the queue is
        /// empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .available
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the wait elapses,
        /// [`RecvTimeoutError::Disconnected`] when no sender remains.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .available
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock();
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.inner.space.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.state.lock().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(rx.is_empty());
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn disconnect_drains_queue_first() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn clone_tracks_sender_count() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(3).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(99u64).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(99));
            h.join().unwrap();
        }

        #[test]
        fn bounded_try_send_sheds_when_full() {
            let (tx, rx) = bounded::<u32>(2);
            assert_eq!(tx.capacity(), Some(2));
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            let err = tx.try_send(3).unwrap_err();
            assert!(err.is_full());
            assert_eq!(err.into_inner(), 3);
            // Popping one frees one slot.
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_try_send_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
        }

        #[test]
        fn unbounded_try_send_never_full() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(tx.capacity(), None);
            for i in 0..10_000 {
                tx.try_send(i).unwrap();
            }
            assert_eq!(rx.len(), 10_000);
        }

        /// A blocking `send` on a full bounded queue parks until the
        /// receiver drains a slot (backpressure, not shedding).
        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap(); // parks: queue is full
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
            h.join().unwrap();
        }

        /// A sender parked on a full queue must observe the receiver
        /// dropping rather than hang.
        #[test]
        fn bounded_send_wakes_on_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        #[should_panic(expected = "capacity must be at least 1")]
        fn zero_capacity_rejected() {
            let _ = bounded::<u32>(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
