//! Self-deleting scratch directories (replaces the `tempfile` crate
//! for the subset tests and harnesses need).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory under the system temp dir, removed
/// (best-effort) on drop.
///
/// Uniqueness combines the caller's tag, the process id and a global
/// counter, so concurrent tests and repeated runs never collide.
#[derive(Debug)]
pub struct TempDir(PathBuf);

impl TempDir {
    /// Creates `"$TMPDIR/hiloc-<tag>-<pid>-<n>"`, guaranteed fresh:
    /// creation fails-on-exists and retries with the next counter
    /// value, so a stale leftover from a killed process (pid recycling)
    /// is never silently adopted.
    ///
    /// # Panics
    ///
    /// Panics when no directory can be created.
    pub fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("hiloc-{tag}-{}-{n}", std::process::id()));
            match std::fs::create_dir(&dir) {
                Ok(()) => return TempDir(dir),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("scratch dir creation failed at {}: {e}", dir.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_removes_on_drop() {
        let a = TempDir::new("util-test");
        let b = TempDir::new("util-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("x"), b"y").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir must remove its tree");
    }
}
