//! Replay-knob behavior of the `util::prop` harness: `HILOC_PROP_SEED`
//! must reproduce a failing run's exact input stream and
//! `HILOC_PROP_CASES` must scale the case count — that replay loop is
//! how chaos-suite property failures get debugged.
//!
//! Environment variables are process-global, so these assertions live
//! in their own test binary (one `#[test]`, no parallel siblings
//! calling `check` concurrently).

use hiloc_util::prop::check;
use hiloc_util::rng::RngCore;

fn collect_stream(cases: u32) -> Vec<u64> {
    let mut out = Vec::new();
    check(cases, |g| out.push(g.next_u64()));
    out
}

#[test]
fn seed_and_case_knobs_replay_and_scale() {
    // Baseline with the built-in default seed.
    std::env::remove_var("HILOC_PROP_SEED");
    std::env::remove_var("HILOC_PROP_CASES");
    let default_stream = collect_stream(8);
    assert_eq!(default_stream.len(), 8);

    // An explicit seed changes every case's stream and replays exactly.
    std::env::set_var("HILOC_PROP_SEED", "12345");
    let seeded_a = collect_stream(8);
    let seeded_b = collect_stream(8);
    assert_eq!(seeded_a, seeded_b, "a pinned seed must replay bit-for-bit");
    assert_ne!(seeded_a, default_stream, "a different seed must change the inputs");

    // HILOC_PROP_CASES overrides the requested case count (the CI vs.
    // local scaling knob) and its streams are a prefix-compatible
    // replay of the same seed.
    std::env::set_var("HILOC_PROP_CASES", "3");
    let scaled = collect_stream(8);
    assert_eq!(scaled.len(), 3);
    assert_eq!(scaled, seeded_a[..3], "cases are seeded independently of the count");

    // Garbage values fall back to the caller's count.
    std::env::set_var("HILOC_PROP_CASES", "not-a-number");
    assert_eq!(collect_stream(5).len(), 5);

    std::env::remove_var("HILOC_PROP_SEED");
    std::env::remove_var("HILOC_PROP_CASES");
}
