//! Property tests for `util::rng` — the whole chaos suite leans on
//! these draws being in-bounds, roughly uniform and deterministic, so
//! they get their own adversarial coverage beyond the unit tests.

use hiloc_util::prop::check;
use hiloc_util::rng::{RngCore, RngExt, SeedableRng, StdRng};

#[test]
fn random_range_stays_in_arbitrary_integer_bounds() {
    check(256, |g| {
        let lo: i64 = g.random_range(-1_000_000..1_000_000);
        let hi: i64 = g.random_range(lo + 1..lo + 2_000_000);
        let x = g.random_range(lo..hi);
        assert!((lo..hi).contains(&x), "{x} outside {lo}..{hi}");
        let y = g.random_range(lo..=hi);
        assert!((lo..=hi).contains(&y), "{y} outside {lo}..={hi}");
    });
}

#[test]
fn random_range_stays_in_arbitrary_float_bounds() {
    check(256, |g| {
        let lo = g.random_range(-1e9..1e9);
        let span = g.random_range(1e-3..1e9);
        let hi = lo + span;
        let x = g.random_range(lo..hi);
        assert!((lo..hi).contains(&x), "{x} outside {lo}..{hi}");
    });
}

#[test]
fn random_range_hits_extreme_integer_spans() {
    let mut r = StdRng::seed_from_u64(11);
    for _ in 0..1_000 {
        // Full-width inclusive range (span == u64::MAX special case).
        let _: u64 = r.random_range(0..=u64::MAX);
        let x = r.random_range(i64::MIN..=i64::MAX);
        let _ = x;
        // Single-value ranges always return that value.
        assert_eq!(r.random_range(7..8u32), 7);
        assert_eq!(r.random_range(-3..=-3i8), -3);
    }
}

#[test]
fn random_range_buckets_are_roughly_uniform() {
    const BUCKETS: usize = 16;
    const DRAWS: usize = 64_000;
    let mut counts = [0usize; BUCKETS];
    let mut r = StdRng::seed_from_u64(12);
    for _ in 0..DRAWS {
        counts[r.random_range(0..BUCKETS)] += 1;
    }
    let mean = DRAWS / BUCKETS;
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            c > mean * 3 / 4 && c < mean * 5 / 4,
            "bucket {i} count {c} deviates >25% from mean {mean}: {counts:?}"
        );
    }
}

#[test]
fn float_unit_draws_are_roughly_uniform() {
    const BUCKETS: usize = 10;
    const DRAWS: usize = 50_000;
    let mut counts = [0usize; BUCKETS];
    let mut r = StdRng::seed_from_u64(13);
    for _ in 0..DRAWS {
        let x: f64 = r.random();
        counts[(x * BUCKETS as f64) as usize] += 1;
    }
    let mean = DRAWS / BUCKETS;
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            c > mean * 3 / 4 && c < mean * 5 / 4,
            "bucket {i} count {c} deviates >25% from mean {mean}: {counts:?}"
        );
    }
}

#[test]
fn shuffle_is_a_permutation_of_any_input() {
    check(128, |g| {
        let len = g.index(200);
        let mut v: Vec<u32> = (0..len as u32).map(|i| i * 3).collect();
        let original = v.clone();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let mut expected = original.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "shuffle must preserve the multiset");
    });
}

#[test]
fn shuffle_is_deterministic_per_seed_and_varies_across_seeds() {
    let shuffled = |seed: u64| {
        let mut r = StdRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        v
    };
    assert_eq!(shuffled(5), shuffled(5));
    assert_ne!(shuffled(5), shuffled(6));
}

#[test]
fn choose_only_returns_elements_of_the_slice() {
    check(128, |g| {
        let len = 1 + g.index(50);
        let v: Vec<usize> = (0..len).map(|i| i * 7 + 1).collect();
        let picked = *g.choose(&v).expect("non-empty");
        assert!(v.contains(&picked));
    });
}

#[test]
fn next_u32_uses_the_high_half() {
    // The default next_u32 takes the upper 64→32 bits; both halves of
    // the stream must still look alive.
    let mut r = StdRng::seed_from_u64(14);
    let words: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
    assert!(words.iter().any(|&w| w != 0));
    assert!(words.windows(2).any(|w| w[0] != w[1]));
}
