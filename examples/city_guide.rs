//! City guide — the paper's situated-information-space scenario, using
//! real WGS84 coordinates: pedestrians stroll around central Stuttgart;
//! the public-transport information service announces a bus delay to
//! everyone waiting at a station (range query over a geographic area),
//! and a visitor asks for the nearest other user.
//!
//! Demonstrates the geographic boundary: the service's planar frame is
//! anchored with a [`LocalProjection`]; applications speak latitude and
//! longitude.
//!
//! ```sh
//! cargo run --example city_guide
//! ```

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{GeoPoint, LocalProjection, Point, Rect, Region};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

fn main() {
    // Anchor a 2 km x 2 km service area on central Stuttgart (the
    // paper's home turf). The projection maps WGS84 to service meters.
    let anchor = GeoPoint::new(48.7758, 9.1829); // Schlossplatz
    let proj = LocalProjection::new(anchor);
    let area = Rect::from_center_size(Point::new(0.0, 0.0), 2_000.0, 2_000.0);
    let hierarchy = HierarchyBuilder::grid(area, 1, 2).build().expect("valid hierarchy");
    let mut ls = SimDeployment::new(hierarchy, Default::default(), 11);

    // Sixty pedestrians with GPS-grade (10 m) sensors scattered around
    // the center.
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..60u64 {
        let pos = Point::new(rng.random_range(-900.0..900.0), rng.random_range(-900.0..900.0));
        let entry = ls.leaf_for(pos);
        ls.register(entry, Sighting::new(ObjectId(i), 0, pos, 10.0), 25.0, 100.0)
            .expect("registration succeeds");
    }

    // The central station, as geographic coordinates.
    let station_geo = GeoPoint::new(48.7840, 9.1829); // Hauptbahnhof, ~900 m north
    let station_local = proj.to_local(station_geo);
    println!("station {station_geo} -> local frame {station_local}");

    // "Bus 42 is delayed — who is waiting within 150 m of the station?"
    let entry = ls.leaf_for(station_local);
    let waiting_area = Region::from(Rect::from_center_size(station_local, 300.0, 300.0));
    let waiting = ls
        .range_query(entry, RangeQuery::new(waiting_area, 50.0, 0.5))
        .expect("range query succeeds");
    println!("announce the delay to {} user(s) near the station:", waiting.objects.len());
    for (oid, ld) in &waiting.objects {
        println!("  {oid} at {} (±{} m)", proj.to_geo(ld.pos), ld.acc_m);
    }

    // A user at the station wants to meet the nearest other user.
    let nn = ls
        .neighbor_query(entry, station_local, 50.0, 100.0)
        .expect("neighbor query succeeds");
    if let Some((oid, ld)) = nn.nearest {
        println!(
            "nearest user to the station: {oid}, {:.0} m away at {}",
            ld.distance_to(station_local),
            proj.to_geo(ld.pos),
        );
        println!("  {} other user(s) within 100 m of that distance", nn.near_set.len());
    }
}
