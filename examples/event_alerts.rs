//! Event-based interaction (paper §1 and §8): applications register
//! predicates — "more than five objects are in a certain area" or
//! geofence enter/leave alerts — and the service notifies them
//! asynchronously as tracked objects move.
//!
//! ```sh
//! cargo run --example event_alerts
//! ```

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::events::{EventKind, Predicate};
use hiloc::core::model::{ObjectId, Sighting};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect, Region};

fn main() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let hierarchy = HierarchyBuilder::grid(area, 1, 2).build().expect("valid hierarchy");
    let mut ls = SimDeployment::new(hierarchy, Default::default(), 5);

    // The watched plaza straddles two leaf service areas on purpose:
    // observers are installed at every overlapping leaf and the
    // coordinator aggregates their reports.
    let plaza = Region::from(Rect::new(Point::new(400.0, 400.0), Point::new(600.0, 600.0)));
    let entry = ls.leaf_for(Point::new(100.0, 100.0));
    let app = ls.new_client();

    let crowd_event = ls
        .event_register(entry, app, Predicate::CountAtLeast { area: plaza.clone(), threshold: 3 })
        .expect("event registers");
    let enter_event = ls
        .event_register(entry, app, Predicate::Enter { area: plaza.clone(), oid: None })
        .expect("event registers");
    println!("registered events: crowd #{crowd_event}, enter #{enter_event}");

    // Five objects walk towards the plaza one by one.
    let mut agents = Vec::new();
    for i in 0..5u64 {
        let start = Point::new(100.0 + 50.0 * i as f64, 100.0);
        let entry = ls.leaf_for(start);
        let (agent, _) = ls
            .register(entry, Sighting::new(ObjectId(i), 0, start, 10.0), 25.0, 100.0)
            .expect("registration succeeds");
        agents.push(agent);
    }
    for i in 0..5u64 {
        // Step into the plaza (different corners, so both leaves see
        // arrivals).
        let inside = Point::new(450.0 + 20.0 * i as f64, 480.0 + 15.0 * i as f64);
        if let hiloc::core::runtime::UpdateOutcome::NewAgent { agent, .. } = ls
            .update(agents[i as usize], Sighting::new(ObjectId(i), 1_000_000 + i, inside, 10.0))
            .expect("update succeeds") {
            agents[i as usize] = agent
        }
        for (event_id, kind) in ls.poll_events(app) {
            match kind {
                EventKind::Entered { oid } => println!("event #{event_id}: {oid} entered the plaza"),
                EventKind::CountReached { count } => {
                    println!("event #{event_id}: crowd alert — {count} objects in the plaza")
                }
                EventKind::Left { oid } => println!("event #{event_id}: {oid} left the plaza"),
            }
        }
    }

    // One object leaves again; the crowd alert re-arms.
    ls.update(agents[0], Sighting::new(ObjectId(0), 9_000_000, Point::new(100.0, 100.0), 10.0))
        .expect("update succeeds");
    for (event_id, kind) in ls.poll_events(app) {
        println!("event #{event_id}: {kind:?}");
    }

    ls.event_cancel(entry, app, crowd_event);
    ls.event_cancel(entry, app, enter_event);
    println!("events cancelled");
}
