//! Fleet management — the paper's motivating scenario: trucks moving
//! through a city street grid; a dispatcher locates a specific truck
//! (position query), lists all trucks in a district (range query), and
//! finds the nearest truck to a pickup (nearest-neighbor query with a
//! near set, "to find the nearest (free) truck for a load of goods").
//!
//! ```sh
//! cargo run --example fleet_management
//! ```

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{ObjectId, RangeQuery};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect, Region};
use hiloc::sim::mobility::MobilityKind;
use hiloc::sim::{Fleet, FleetConfig};

fn main() {
    // A 3 km x 3 km city, two hierarchy levels (1 root + 4 + 16 leaves).
    let city = Rect::new(Point::new(0.0, 0.0), Point::new(3_000.0, 3_000.0));
    let hierarchy = HierarchyBuilder::grid(city, 2, 2).build().expect("valid hierarchy");
    let mut ls = SimDeployment::new(hierarchy, Default::default(), 7);

    // 40 trucks driving the street grid at ~30 km/h, reporting when
    // they deviate more than 25 m from their last report.
    let cfg = FleetConfig {
        num_objects: 40,
        speed_mps: 8.3,
        mobility: MobilityKind::Manhattan { spacing_m: 150.0 },
        ..Default::default()
    };
    let mut fleet = Fleet::register(cfg, &mut ls).expect("fleet registers");
    println!("registered {} trucks across {} servers", fleet.len(), ls.hierarchy().len());

    // Let the fleet drive for five simulated minutes.
    let mut updates = 0;
    let mut handovers = 0;
    for _ in 0..300 {
        let s = fleet.step(&mut ls, 1.0);
        updates += s.updates_sent;
        handovers += s.handovers;
    }
    println!("5 simulated minutes: {updates} updates transmitted, {handovers} handovers");

    let dispatch_entry = ls.leaf_for(Point::new(1_500.0, 1_500.0));

    // "Where is truck 7?" — it was scheduled for an inspection.
    let ld = ls.pos_query(dispatch_entry, ObjectId(7)).expect("truck 7 is tracked");
    println!("truck o7 is at {} (±{} m)", ld.pos, ld.acc_m);

    // "Which trucks are in the old-town district right now?"
    let district = Region::from(Rect::new(Point::new(1_000.0, 1_000.0), Point::new(2_000.0, 2_000.0)));
    let in_district = ls
        .range_query(dispatch_entry, RangeQuery::new(district, 100.0, 0.5))
        .expect("range query succeeds");
    let ids: Vec<u64> = in_district.objects.iter().map(|(o, _)| o.0).collect();
    println!("trucks in the district: {ids:?}");

    // "Nearest truck to the pickup at the train station?" nearQual
    // returns close runners-up so dispatch can pick a *free* one.
    let pickup = Point::new(2_200.0, 800.0);
    let nn = ls
        .neighbor_query(dispatch_entry, pickup, 100.0, 300.0)
        .expect("neighbor query succeeds");
    if let Some((oid, ld)) = nn.nearest {
        println!(
            "nearest truck to the pickup: {oid} at {:.0} m (guaranteed ≥ {:.0} m away)",
            ld.distance_to(pickup),
            (ld.distance_to(pickup) - ld.acc_m).max(0.0),
        );
    }
    let alternates: Vec<String> = nn
        .near_set
        .iter()
        .map(|(o, ld)| format!("{o} ({:.0} m)", ld.distance_to(pickup)))
        .collect();
    println!("alternates within 300 m of the nearest: {alternates:?}");
}
