//! Mixed workload — the paper's §8 evaluation agenda in one binary:
//! a moving fleet plus a generated query mix with locality, reporting
//! per-operation latency summaries and per-server load.
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::RangeQuery;
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect, Region};
use hiloc::sim::mobility::MobilityKind;
use hiloc::sim::{Fleet, FleetConfig, OpKind, QueryMix, Samples, WorkloadGen, WorkloadParams};

fn main() {
    // A 2 km x 2 km city with a 2-level hierarchy (21 servers).
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(2_000.0, 2_000.0));
    let hierarchy = HierarchyBuilder::grid(area, 2, 2).build().expect("valid hierarchy");
    let mut ls = SimDeployment::new(hierarchy, Default::default(), 2026);

    // 200 pedestrians.
    let fleet_cfg = FleetConfig {
        num_objects: 200,
        speed_mps: 1.4,
        mobility: MobilityKind::RandomWaypoint,
        ..Default::default()
    };
    let mut fleet = Fleet::register(fleet_cfg, &mut ls).expect("fleet registers");

    // A query-heavy application mix with 80% locality.
    let params = WorkloadParams {
        mix: QueryMix::query_heavy(),
        locality: 0.8,
        local_radius_m: 300.0,
        range_extent_m: 100.0,
        mean_interarrival_s: 0.05,
    };
    let mut gen = WorkloadGen::new(params, area, 7);

    let mut pos_lat = Samples::new();
    let mut range_lat = Samples::new();
    let mut nn_lat = Samples::new();
    let mut ops = 0u64;

    // Ten simulated minutes: one fleet step per second, queries per the
    // generated arrival process.
    for _second in 0..600 {
        fleet.step(&mut ls, 1.0);
        let mut budget = 1.0;
        loop {
            let gap = gen.next_interarrival_s();
            if gap > budget {
                break;
            }
            budget -= gap;
            ops += 1;
            // The querying client stands at a random spot; its leaf is
            // the entry server.
            let client_pos = gen.uniform_point();
            let entry = ls.leaf_for(client_pos);
            let t0 = ls.now_us();
            match gen.next_op() {
                OpKind::Update => { /* the fleet already reports */ }
                OpKind::PosQuery => {
                    let oid = gen.random_oid(fleet.len() as u64);
                    let _ = ls.pos_query(entry, oid);
                    pos_lat.record((ls.now_us() - t0) as f64 / 1e3);
                }
                OpKind::RangeQuery => {
                    let q = RangeQuery::new(
                        Region::from(gen.query_area(client_pos)),
                        100.0,
                        0.5,
                    );
                    let _ = ls.range_query(entry, q);
                    range_lat.record((ls.now_us() - t0) as f64 / 1e3);
                }
                OpKind::NeighborQuery => {
                    let p = gen.query_point(client_pos);
                    let _ = ls.neighbor_query(entry, p, 100.0, 50.0);
                    nn_lat.record((ls.now_us() - t0) as f64 / 1e3);
                }
            }
        }
    }

    println!("10 simulated minutes, {ops} client operations\n");
    println!("position queries:  {}", pos_lat.summary());
    println!("range queries:     {}", range_lat.summary());
    println!("neighbor queries:  {}", nn_lat.summary());

    let total = ls.total_stats();
    println!(
        "\nservice totals: {} updates applied, {} handovers, {} sub-results, {} messages",
        total.updates, total.handovers_completed, total.sub_results, total.msgs_in
    );
    println!("\nper-leaf sightings (load balance):");
    let leaves: Vec<_> = ls.hierarchy().leaves().map(|cfg| cfg.id).collect();
    for id in leaves {
        println!("  {}: {} objects", id, ls.server(id).sighting_count());
    }
}
