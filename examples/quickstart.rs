//! Quickstart: stand up a location service, track an object, and run
//! all three query types.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{Point, Rect, Region};

fn main() {
    // 1. A 1 km x 1 km service area, split into 2x2 leaf areas — one
    //    root server and four leaf servers.
    let hierarchy = HierarchyBuilder::grid(
        Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)),
        1,
        2,
    )
    .build()
    .expect("valid hierarchy");
    let mut ls = SimDeployment::new(hierarchy, Default::default(), 42);
    println!("deployed {} location servers", ls.hierarchy().len());

    // 2. Register a tracked object: desired accuracy 25 m, minimally
    //    acceptable 100 m.
    let oid = ObjectId(1);
    let start = Point::new(120.0, 80.0);
    let entry = ls.leaf_for(start);
    let (agent, offered) = ls
        .register(entry, Sighting::new(oid, 0, start, 10.0), 25.0, 100.0)
        .expect("registration succeeds");
    println!("registered {oid} at {start}; agent {agent}, offered accuracy {offered} m");

    // 3. Send a position update that crosses into another leaf area —
    //    the service hands tracking over transparently.
    let moved = Point::new(900.0, 80.0);
    match ls.update(agent, Sighting::new(oid, 1_000_000, moved, 10.0)).expect("update succeeds") {
        UpdateOutcome::NewAgent { agent, .. } => println!("moved to {moved}; new agent {agent}"),
        outcome => println!("update outcome: {outcome:?}"),
    }

    // 4. Position query from any entry server.
    let ld = ls.pos_query(entry, oid).expect("object is tracked");
    println!("posQuery  -> {ld}");

    // 5. Range query: everything in the south-east quadrant.
    let answer = ls
        .range_query(
            entry,
            RangeQuery::new(
                Region::from(Rect::new(Point::new(500.0, 0.0), Point::new(1_000.0, 500.0))),
                50.0,
                0.5,
            ),
        )
        .expect("range query succeeds");
    println!("rangeQuery -> {} object(s), complete: {}", answer.objects.len(), answer.complete);

    // 6. Nearest-neighbor query.
    let nn = ls
        .neighbor_query(entry, Point::new(850.0, 120.0), 100.0, 0.0)
        .expect("neighbor query succeeds");
    match nn.nearest {
        Some((oid, ld)) => println!("neighborQuery -> nearest {oid} at {ld}"),
        None => println!("neighborQuery -> no qualified object"),
    }
}
