//! # hiloc — a large-scale hierarchical location service
//!
//! Facade crate re-exporting the hiloc workspace: a from-scratch Rust
//! reproduction of *"Architecture of a Large-Scale Location Service"*
//! (Leonhardi & Rothermel). See the `README.md` for a tour of the
//! workspace and its zero-external-dependency policy.
//!
//! * [`util`] — std-only substrate: PRNG, buffers, sync, JSON, test
//!   and bench harnesses (the in-tree substitutes for external crates).
//! * [`geo`] — coordinates, projections, polygons, circle overlap areas.
//! * [`spatial`] — point quadtree, R-tree, grid indexes.
//! * [`storage`] — sighting database (volatile) and visitor database
//!   (durable WAL + snapshots).
//! * [`net`] — protocol messages, binary codec and transports.
//! * [`core`] — the location service itself: model, hierarchy, servers,
//!   algorithms, caching, events, client API and runtimes.
//! * [`sim`] — mobility models, workload generators and statistics.

#![forbid(unsafe_code)]

pub use hiloc_core as core;
pub use hiloc_geo as geo;
pub use hiloc_net as net;
pub use hiloc_sim as sim;
pub use hiloc_spatial as spatial;
pub use hiloc_storage as storage;
pub use hiloc_util as util;
