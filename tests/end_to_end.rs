//! Facade-level end-to-end test: geographic coordinates in, full
//! register → move → query lifecycle through the hierarchy.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{LsError, ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{GeoPoint, LocalProjection, Point, Rect, Region};

#[test]
fn geographic_workflow_end_to_end() {
    // Anchor a 2 km service area on Stuttgart; applications use WGS84.
    let proj = LocalProjection::new(GeoPoint::new(48.7758, 9.1829));
    let area = Rect::from_center_size(Point::new(0.0, 0.0), 2_000.0, 2_000.0);
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 99);

    // A tram at the Schlossplatz.
    let tram_geo = GeoPoint::new(48.7770, 9.1815);
    let tram_local = proj.to_local(tram_geo);
    let entry = ls.leaf_for(tram_local);
    let (agent, offered) = ls
        .register(entry, Sighting::new(ObjectId(1), 0, tram_local, 10.0), 25.0, 100.0)
        .unwrap();
    assert_eq!(offered, 25.0);

    // It drives ~700 m east — across a leaf boundary.
    let moved_geo = GeoPoint::new(48.7770, 9.1910);
    let moved_local = proj.to_local(moved_geo);
    let out = ls.update(agent, Sighting::new(ObjectId(1), 1_000_000, moved_local, 10.0)).unwrap();
    let agent = match out {
        UpdateOutcome::NewAgent { agent, .. } => agent,
        UpdateOutcome::Ack { .. } => agent,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(agent, ls.leaf_for(moved_local));

    // Query it back and convert to geographic coordinates: within a
    // meter of where it reported.
    let ld = ls.pos_query(entry, ObjectId(1)).unwrap();
    let got_geo = proj.to_geo(ld.pos);
    assert!(got_geo.distance(moved_geo) < 1.0, "drifted {} m", got_geo.distance(moved_geo));

    // A range query over a geographic box around the new position.
    let query_area = Region::from(Rect::from_center_size(moved_local, 200.0, 200.0));
    let ans = ls.range_query(entry, RangeQuery::new(query_area, 50.0, 0.5)).unwrap();
    assert!(ans.complete);
    assert_eq!(ans.objects.len(), 1);
    assert_eq!(ans.objects[0].0, ObjectId(1));

    // Deregistration removes it everywhere.
    ls.deregister(agent, ObjectId(1));
    assert!(matches!(ls.pos_query(entry, ObjectId(1)), Err(LsError::UnknownObject(_))));
}

#[test]
fn hundred_objects_three_level_hierarchy() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(4_000.0, 4_000.0));
    let h = HierarchyBuilder::grid(area, 2, 2).build().unwrap();
    assert_eq!(h.len(), 21);
    let mut ls = SimDeployment::new(h, Default::default(), 123);

    // Register a 10x10 grid of objects.
    for i in 0..100u64 {
        let p = Point::new(200.0 + (i % 10) as f64 * 380.0, 200.0 + (i / 10) as f64 * 380.0);
        let entry = ls.leaf_for(p);
        ls.register(entry, Sighting::new(ObjectId(i), 0, p, 5.0), 10.0, 50.0).unwrap();
    }
    ls.run_until_quiet();

    // The root knows all 100; leaves partition them.
    assert_eq!(ls.server(ls.hierarchy().root()).visitor_count(), 100);
    let leaf_total: usize = ls
        .hierarchy()
        .leaves()
        .map(|cfg| ls.server(cfg.id).sighting_count())
        .sum();
    assert_eq!(leaf_total, 100);

    // A whole-area range query finds everything, from any entry.
    let everything = RangeQuery::new(
        Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(4_000.0, 4_000.0))),
        50.0,
        0.5,
    );
    let entry = ls.leaf_for(Point::new(3_900.0, 3_900.0));
    let ans = ls.range_query(entry, everything).unwrap();
    assert!(ans.complete);
    assert_eq!(ans.objects.len(), 100);

    // Nearest-neighbor from a corner: the object at (200, 200).
    let nn = ls.neighbor_query(entry, Point::new(0.0, 0.0), 50.0, 0.0).unwrap();
    assert_eq!(nn.nearest.unwrap().0, ObjectId(0));
}

#[test]
fn polygon_query_areas_work_distributed() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 5);

    // Objects at the three corners of a triangle and one outside it.
    let inside = [Point::new(300.0, 300.0), Point::new(700.0, 300.0), Point::new(500.0, 600.0)];
    for (i, p) in inside.iter().enumerate() {
        let entry = ls.leaf_for(*p);
        ls.register(entry, Sighting::new(ObjectId(i as u64), 0, *p, 5.0), 10.0, 50.0).unwrap();
    }
    let outside = Point::new(500.0, 900.0);
    let entry = ls.leaf_for(outside);
    ls.register(entry, Sighting::new(ObjectId(9), 0, outside, 5.0), 10.0, 50.0).unwrap();

    // A triangular query area covering the three inner objects.
    let triangle = hiloc::geo::Polygon::new(vec![
        Point::new(200.0, 200.0),
        Point::new(800.0, 200.0),
        Point::new(500.0, 700.0),
    ])
    .unwrap();
    let ans = ls
        .range_query(entry, RangeQuery::new(Region::from(triangle), 50.0, 0.5))
        .unwrap();
    assert!(ans.complete);
    let mut ids: Vec<u64> = ans.objects.iter().map(|(o, _)| o.0).collect();
    ids.sort();
    assert_eq!(ids, vec![0, 1, 2]);
}
