//! Event-mechanism consistency: notifications must track ground truth
//! while objects move randomly across leaf boundaries through a watched
//! area.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::events::{EventKind, Predicate};
use hiloc::core::model::{ObjectId, Sighting};
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{Point, Rect, Region};
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};
use std::collections::HashSet;

#[test]
fn enter_leave_notifications_match_ground_truth() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 0xE7E7);
    let mut rng = StdRng::seed_from_u64(99);

    // The watched area straddles all four leaves.
    let watched = Rect::new(Point::new(300.0, 300.0), Point::new(700.0, 700.0));
    let entry = ls.leaf_for(Point::new(10.0, 10.0));
    let app = ls.new_client();
    ls.event_register(entry, app, Predicate::Enter { area: Region::from(watched), oid: None })
        .unwrap();
    ls.event_register(entry, app, Predicate::Leave { area: Region::from(watched), oid: None })
        .unwrap();

    // Objects start outside the watched area.
    let n = 20u64;
    let mut agents = Vec::new();
    let mut inside: HashSet<ObjectId> = HashSet::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..200.0), rng.random_range(0.0..200.0));
        let e = ls.leaf_for(p);
        let (agent, _) =
            ls.register(e, Sighting::new(ObjectId(oid), 0, p, 5.0), 10.0, 50.0).unwrap();
        agents.push(agent);
    }
    assert!(ls.poll_events(app).is_empty(), "no objects inside yet");

    // Random movement; track expected membership transitions.
    let mut expected_enters = 0u32;
    let mut expected_leaves = 0u32;
    for step in 0..200 {
        let oid = rng.random_range(0..n);
        let p = Point::new(rng.random_range(1.0..999.0), rng.random_range(1.0..999.0));
        let was_inside = inside.contains(&ObjectId(oid));
        let is_inside = watched.contains(p);
        if is_inside && !was_inside {
            expected_enters += 1;
            inside.insert(ObjectId(oid));
        } else if !is_inside && was_inside {
            expected_leaves += 1;
            inside.remove(&ObjectId(oid));
        }
        match ls
            .update(agents[oid as usize], Sighting::new(ObjectId(oid), step, p, 5.0))
            .unwrap()
        {
            UpdateOutcome::NewAgent { agent, .. } => agents[oid as usize] = agent,
            UpdateOutcome::Ack { .. } => {}
            UpdateOutcome::OutOfServiceArea => panic!("inside the service area"),
        }
    }

    let fired = ls.poll_events(app);
    let enters = fired.iter().filter(|(_, k)| matches!(k, EventKind::Entered { .. })).count();
    let leaves = fired.iter().filter(|(_, k)| matches!(k, EventKind::Left { .. })).count();
    assert!(expected_enters > 10, "scenario must exercise entries");
    assert_eq!(enters as u32, expected_enters, "enter notifications");
    assert_eq!(leaves as u32, expected_leaves, "leave notifications");
}

#[test]
fn count_threshold_tracks_aggregate_across_leaves() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 0xC0);

    // Watched area centered on the four-corner point: each leaf holds a
    // quarter of it.
    let watched = Region::from(Rect::new(Point::new(400.0, 400.0), Point::new(600.0, 600.0)));
    let entry = ls.leaf_for(Point::new(10.0, 10.0));
    let app = ls.new_client();
    ls.event_register(entry, app, Predicate::CountAtLeast { area: watched, threshold: 4 })
        .unwrap();

    // One object per quadrant, placed inside the watched area one at a
    // time — the threshold only fires once the 4th (aggregated across
    // all four leaves) arrives.
    let spots =
        [Point::new(450.0, 450.0), Point::new(550.0, 450.0), Point::new(450.0, 550.0), Point::new(550.0, 550.0)];
    for (i, spot) in spots.iter().enumerate() {
        let e = ls.leaf_for(*spot);
        ls.register(e, Sighting::new(ObjectId(i as u64), 0, *spot, 5.0), 10.0, 50.0).unwrap();
        let fired = ls.poll_events(app);
        if i < 3 {
            assert!(fired.is_empty(), "below threshold after {} objects", i + 1);
        } else {
            assert_eq!(fired.len(), 1);
            assert!(matches!(fired[0].1, EventKind::CountReached { count: 4 }));
        }
    }
    // Verify the four objects really are on four different leaves.
    let distinct: HashSet<_> = spots.iter().map(|s| ls.leaf_for(*s)).collect();
    assert_eq!(distinct.len(), 4);
}
