//! Fault tolerance under a lossy network: the protocol's soft-state,
//! client-retry philosophy (the paper runs over plain UDP) must make
//! progress despite dropped messages.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{LsError, ObjectId, RangeQuery, Sighting, SECOND};
use hiloc::core::node::ServerOptions;
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{Point, Rect, Region};
use hiloc::net::{FaultPlan, LatencyModel};

fn lossy_deployment(drop_prob: f64, seed: u64) -> SimDeployment {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let opts = ServerOptions { query_timeout_us: SECOND / 4, ..Default::default() };
    SimDeployment::with_network(
        h,
        opts,
        LatencyModel::default(),
        FaultPlan::uniform(drop_prob, 0.02),
        seed,
    )
}

/// Retries an operation until it succeeds, bounded.
fn retry<T>(mut op: impl FnMut() -> Result<T, LsError>, attempts: usize) -> T {
    let mut last = None;
    for _ in 0..attempts {
        match op() {
            Ok(v) => return v,
            Err(e) => last = Some(e),
        }
    }
    panic!("operation failed after {attempts} attempts: {last:?}");
}

#[test]
fn lifecycle_progresses_under_10_percent_loss() {
    let mut ls = lossy_deployment(0.10, 0x10);
    let p = Point::new(100.0, 100.0);
    let entry = ls.leaf_for(p);

    // Registration with retries (idempotent: re-registering refreshes).
    let (agent, _) = retry(
        || ls.register(entry, Sighting::new(ObjectId(1), 0, p, 10.0), 25.0, 100.0),
        20,
    );

    // Updates with retries, including one that needs a handover. After
    // a `NewAgent` outcome the client re-sends to the new agent
    // (idempotent) until it gets a plain ack — this also exercises the
    // AgentLookup recovery path when AgentChanged notifications or
    // handover responses are lost.
    let far = Point::new(900.0, 900.0);
    let mut current_agent = agent;
    let mut settled = false;
    for _ in 0..60 {
        match ls.update(current_agent, Sighting::new(ObjectId(1), SECOND, far, 10.0)) {
            Ok(UpdateOutcome::Ack { .. }) => {
                settled = true;
                break;
            }
            Ok(UpdateOutcome::NewAgent { agent, .. }) => current_agent = agent,
            Ok(UpdateOutcome::OutOfServiceArea) => {
                // The service lost the registration (a CreatePath or
                // handover record fell to the lossy network): the
                // client re-registers, as the soft-state design
                // prescribes.
                let entry_far = ls.leaf_for(far);
                if ls
                    .register(entry_far, Sighting::new(ObjectId(1), SECOND, far, 10.0), 25.0, 100.0)
                    .is_ok()
                {
                    settled = true;
                    break;
                }
            }
            Err(_) => {}
        }
    }
    assert!(settled, "the object must converge onto a working agent");

    // Queries with retries from the far entry.
    let ld = retry(|| ls.pos_query(entry, ObjectId(1)), 30);
    assert_eq!(ld.pos, far);

    // Range queries: a partial (incomplete) answer is acceptable under
    // loss, but a *complete* one must eventually arrive.
    let q = RangeQuery::new(
        Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(999.0, 999.0))),
        50.0,
        0.5,
    );
    let ans = retry(
        || {
            let a = ls.range_query(entry, q.clone())?;
            if a.complete {
                Ok(a)
            } else {
                Err(LsError::Timeout) // partial: retry for a full answer
            }
        },
        40,
    );
    assert_eq!(ans.objects.len(), 1);
}

#[test]
fn partial_range_results_are_flagged_not_fabricated() {
    // At substantial loss, gathers time out: the answer must carry
    // complete=false and only genuinely collected objects. (A 4-leaf
    // range query needs ~13 surviving messages, so 20% loss makes
    // partial answers common while complete ones stay reachable.)
    let mut ls = lossy_deployment(0.20, 0x22);
    let entry = ls.leaf_for(Point::new(100.0, 100.0));
    // Register a handful of objects (with retries).
    let mut registered = 0;
    for i in 0..8u64 {
        let p = Point::new(100.0 + 100.0 * i as f64, 500.0);
        let e = ls.leaf_for(p);
        for _ in 0..30 {
            if ls.register(e, Sighting::new(ObjectId(i), 0, p, 10.0), 25.0, 100.0).is_ok() {
                registered += 1;
                break;
            }
        }
    }
    assert!(registered >= 4, "some registrations must survive 45% loss");

    let q = RangeQuery::new(
        Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(999.0, 999.0))),
        50.0,
        0.5,
    );
    let mut saw_partial = false;
    let mut saw_complete = false;
    for _ in 0..80 {
        match ls.range_query(entry, q.clone()) {
            Ok(ans) if ans.complete => {
                assert_eq!(ans.objects.len(), registered, "complete answers must be complete");
                saw_complete = true;
            }
            Ok(ans) => {
                assert!(ans.objects.len() <= registered);
                saw_partial = true;
            }
            Err(LsError::Timeout) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        if saw_partial && saw_complete {
            break;
        }
    }
    assert!(saw_complete, "a complete answer must eventually get through");
}

#[test]
fn soft_state_cleans_up_after_lost_handover() {
    // If handover responses are lost, records may linger — but the
    // soft-state TTL bounds the inconsistency window.
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let opts = ServerOptions {
        sighting_ttl_us: 10 * SECOND,
        // Path soft state scaled down to match: keep-alives every 15 s,
        // unrefreshed forwarding records dropped after 40 s.
        path_refresh_us: 15 * SECOND,
        path_ttl_us: 40 * SECOND,
        query_timeout_us: SECOND / 4,
        ..Default::default()
    };
    let mut ls = SimDeployment::with_network(
        h,
        opts,
        LatencyModel::default(),
        FaultPlan::uniform(0.3, 0.0),
        0x33,
    );
    let p = Point::new(100.0, 100.0);
    let entry = ls.leaf_for(p);
    let reg = (0..30).find_map(|_| {
        ls.register(entry, Sighting::new(ObjectId(1), 0, p, 10.0), 25.0, 100.0).ok()
    });
    assert!(reg.is_some());

    // Fire a few handover attempts into the lossy network; ignore
    // outcomes entirely.
    for i in 0..5u64 {
        let _ = ls.update(entry, Sighting::new(ObjectId(1), i * SECOND, Point::new(900.0, 900.0), 10.0));
    }
    // After several TTLs of silence every record is gone everywhere —
    // no zombie paths survive.
    ls.advance_time(120 * SECOND);
    for cfg in ls.hierarchy().servers() {
        assert!(
            ls.server(cfg.id).visitors().get(ObjectId(1)).is_none(),
            "zombie record at {}",
            cfg.id
        );
    }
}
