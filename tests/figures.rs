//! Reproduction tests for the paper's worked figures (3, 4 and 6),
//! checked at the facade level.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::semantics::{guaranteed_min_distance, overlap, qualifies_for_range};
use hiloc::core::model::{LocationDescriptor, ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{Point, Rect, Region};

/// Figure 3: the five-object range-query scenario with
/// `reqOverlap = 0.3` and an accuracy threshold.
#[test]
fn figure3_range_semantics() {
    let area = Region::from(Rect::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0)));
    let req_acc = 50.0;
    let req_overlap = 0.3;

    // o1: location area fully inside — overlap 100%, included.
    let o1 = LocationDescriptor::new(Point::new(100.0, 100.0), 20.0);
    assert!((overlap(&area, &o1) - 1.0).abs() < 1e-9);
    assert!(qualifies_for_range(&area, &o1, req_acc, req_overlap));

    // o2: disjoint — overlap 0%, excluded.
    let o2 = LocationDescriptor::new(Point::new(400.0, 100.0), 20.0);
    assert_eq!(overlap(&area, &o2), 0.0);
    assert!(!qualifies_for_range(&area, &o2, req_acc, req_overlap));

    // o3: ~40% overlap — included at reqOverlap 0.3.
    let o3 = LocationDescriptor::new(Point::new(200.0 + 3.95, 100.0), 20.0);
    let ov3 = overlap(&area, &o3);
    assert!((0.3..0.5).contains(&ov3), "o3 overlap {ov3}");
    assert!(qualifies_for_range(&area, &o3, req_acc, req_overlap));

    // o4: ~10% overlap — excluded.
    let o4 = LocationDescriptor::new(Point::new(200.0 + 12.0, 100.0), 20.0);
    let ov4 = overlap(&area, &o4);
    assert!(ov4 < 0.2, "o4 overlap {ov4}");
    assert!(!qualifies_for_range(&area, &o4, req_acc, req_overlap));

    // o5: well inside but accuracy 200 m > reqAcc — excluded.
    let o5 = LocationDescriptor::new(Point::new(100.0, 50.0), 200.0);
    assert!(!qualifies_for_range(&area, &o5, req_acc, req_overlap));
}

/// Figure 4: nearest-neighbor selection, near set, accuracy filter and
/// the guaranteed-minimal-distance bound — through the full distributed
/// service.
#[test]
fn figure4_nn_semantics() {
    let area = Rect::new(Point::new(-500.0, -500.0), Point::new(500.0, 500.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 4);

    let p = Point::new(0.0, 0.0);
    // o: returned object at distance 100 with accuracy 25.
    // o1: at 120 — inside the nearQual = 40 ring (120 <= 100 + 40).
    // o2: at 200 — outside the ring.
    // o3: nearest of all (42) but offered accuracy 80 > reqAcc = 30.
    let objs: &[(u64, Point, f64, f64)] = &[
        (1, Point::new(100.0, 0.0), 25.0, 100.0),
        (2, Point::new(0.0, 120.0), 25.0, 100.0),
        (3, Point::new(-200.0, 0.0), 25.0, 100.0),
        (4, Point::new(30.0, 30.0), 80.0, 200.0),
    ];
    for &(oid, pos, des, min) in objs {
        let entry = ls.leaf_for(pos);
        ls.register(entry, Sighting::new(ObjectId(oid), 0, pos, 10.0), des, min).unwrap();
    }
    ls.run_until_quiet();

    let entry = ls.leaf_for(Point::new(1.0, 1.0));
    let ans = ls.neighbor_query(entry, p, 30.0, 40.0).unwrap();
    assert!(ans.complete);
    let (oid, ld) = ans.nearest.unwrap();
    assert_eq!(oid, ObjectId(1), "o is the accuracy-qualified nearest");
    assert_eq!(ld.distance_to(p), 100.0);
    assert_eq!(guaranteed_min_distance(p, &ld), 75.0); // 100 - 25

    let near_ids: Vec<u64> = ans.near_set.iter().map(|(o, _)| o.0).collect();
    assert_eq!(near_ids, vec![2], "only o1 is within nearQual");
}

/// Figure 6: the three message flows across the three-level hierarchy,
/// verified by exact hop traces.
#[test]
fn figure6_flows() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_600.0, 1_600.0));
    let h = HierarchyBuilder::binary(area, 2).build().unwrap();
    assert_eq!(h.len(), 7);
    let mut ls = SimDeployment::new(h, Default::default(), 6);
    ls.enable_trace();

    let sw = Point::new(100.0, 100.0);
    let nw = Point::new(100.0, 1_500.0);
    let se = Point::new(1_500.0, 100.0);
    let s3 = ls.leaf_for(sw);
    let s4 = ls.leaf_for(nw);
    let s5 = ls.leaf_for(se);

    let (agent, _) = ls.register(s3, Sighting::new(ObjectId(1), 0, sw, 5.0), 10.0, 50.0).unwrap();
    ls.register(s5, Sighting::new(ObjectId(2), 0, se, 5.0), 10.0, 50.0).unwrap();
    ls.run_until_quiet();

    // Flow 1 (handover to the sibling leaf): only the old leaf, the
    // common parent and the new leaf exchange handover messages — the
    // root is spared, exactly as in the figure.
    ls.clear_trace();
    let out = ls.update(agent, Sighting::new(ObjectId(1), 1, nw, 5.0)).unwrap();
    assert!(matches!(out, UpdateOutcome::NewAgent { agent, .. } if agent == s4));
    ls.run_until_quiet();
    let handover_hops: Vec<(String, String)> = ls
        .trace()
        .iter()
        .filter(|t| t.label.starts_with("handover"))
        .map(|t| (t.from.to_string(), t.to.to_string()))
        .collect();
    let parent = ls.hierarchy().server(s3).parent.unwrap();
    assert_eq!(
        handover_hops,
        vec![
            (s3.to_string(), parent.to_string()),
            (parent.to_string(), s4.to_string()),
            (s4.to_string(), parent.to_string()),
            (parent.to_string(), s3.to_string()),
        ]
    );

    // Flow 2 (remote position query): forwarded up to the root (where
    // the forwarding reference is found), down to the agent, and the
    // answer returns directly to the entry server.
    ls.clear_trace();
    let ld = ls.pos_query(s4, ObjectId(2)).unwrap();
    assert_eq!(ld.pos, se);
    let labels: Vec<&str> = ls
        .trace()
        .iter()
        .filter(|t| t.label == "posQueryFwd" || t.label == "posQueryRes")
        .map(|t| t.label)
        .collect();
    assert_eq!(labels, vec!["posQueryFwd"; 4].into_iter().chain(["posQueryRes", "posQueryRes"]).collect::<Vec<_>>());
    assert!(ls.trace().iter().any(|t| t.to.to_string() == "s0"), "query must reach the root");

    // Flow 3 (range query spanning the east half): both east leaves
    // produce sub-results sent directly to the entry server s4.
    ls.clear_trace();
    let q = RangeQuery::new(
        Region::from(Rect::new(Point::new(900.0, 100.0), Point::new(1_500.0, 1_500.0))),
        10.0,
        0.5,
    );
    let ans = ls.range_query(s4, q).unwrap();
    assert!(ans.complete);
    let sub_res: Vec<(String, String)> = ls
        .trace()
        .iter()
        .filter(|t| t.label == "rangeQuerySubRes")
        .map(|t| (t.from.to_string(), t.to.to_string()))
        .collect();
    assert_eq!(sub_res.len(), 2);
    assert!(sub_res.iter().all(|(_, to)| *to == s4.to_string()));
}
