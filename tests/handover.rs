//! Randomized handover stress: objects random-walk across leaf
//! boundaries; after every movement batch the hierarchy must stay
//! internally consistent and fully queryable.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{ObjectId, Sighting, SECOND};
use hiloc::core::node::{ServerOptions, VisitorRecord};
use hiloc::core::runtime::{SimDeployment, UpdateOutcome};
use hiloc::geo::{Point, Rect};
use hiloc::net::ServerId;
use hiloc_util::rng::StdRng;
use hiloc_util::rng::{RngExt, SeedableRng};

const AREA: f64 = 2_000.0;

/// Walks the forwarding path from the root and asserts it terminates at
/// a leaf record whose leaf is responsible for `expected_pos`.
fn assert_path_consistent(ls: &SimDeployment, oid: ObjectId, expected_pos: Point) {
    let mut cur = ls.hierarchy().root();
    loop {
        match ls.server(cur).visitors().get(oid) {
            Some(VisitorRecord::Forward { child, .. }) => cur = *child,
            Some(VisitorRecord::Leaf { .. }) => {
                assert_eq!(
                    cur,
                    ls.hierarchy().leaf_for(expected_pos).unwrap(),
                    "{oid} agent mismatch"
                );
                return;
            }
            None => panic!("{oid}: forwarding path broken at {cur}"),
        }
    }
}

#[test]
fn random_walk_consistency_three_levels() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(AREA, AREA));
    let h = HierarchyBuilder::grid(area, 2, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 0xDADA);
    let mut rng = StdRng::seed_from_u64(0x5EED);

    let n = 60u64;
    let mut agents = Vec::new();
    let mut positions = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(1.0..AREA - 1.0), rng.random_range(1.0..AREA - 1.0));
        let entry = ls.leaf_for(p);
        let (agent, _) =
            ls.register(entry, Sighting::new(ObjectId(oid), 0, p, 5.0), 10.0, 50.0).unwrap();
        agents.push(agent);
        positions.push(p);
    }

    for round in 0..8 {
        for oid in 0..n {
            // Random jump anywhere (maximizes cross-subtree handovers).
            let p = Point::new(
                rng.random_range(1.0..AREA - 1.0),
                rng.random_range(1.0..AREA - 1.0),
            );
            let t = (round * 100 + oid) * SECOND;
            match ls.update(agents[oid as usize], Sighting::new(ObjectId(oid), t, p, 5.0)).unwrap()
            {
                UpdateOutcome::Ack { .. } => {}
                UpdateOutcome::NewAgent { agent, .. } => agents[oid as usize] = agent,
                UpdateOutcome::OutOfServiceArea => panic!("object stayed inside"),
            }
            positions[oid as usize] = p;
        }
        ls.run_until_quiet();
        for oid in 0..n {
            assert_path_consistent(&ls, ObjectId(oid), positions[oid as usize]);
        }
        // Exactly one leaf record per object across all leaves.
        let leaf_records: usize = ls
            .hierarchy()
            .leaves()
            .map(|cfg| ls.server(cfg.id).sighting_count())
            .sum();
        assert_eq!(leaf_records, n as usize, "round {round}");
    }
    // Handovers actually happened (random jumps cross leaves often).
    let total = ls.total_stats();
    assert!(total.handovers_completed > 100, "only {} handovers", total.handovers_completed);
}

#[test]
fn expiry_and_reregistration_interleaved_with_handover() {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let opts = ServerOptions { sighting_ttl_us: 20 * SECOND, ..Default::default() };
    let mut ls = SimDeployment::new(h, opts, 0xE0);

    let a = Point::new(100.0, 100.0);
    let b = Point::new(900.0, 900.0);
    let entry = ls.leaf_for(a);
    let (agent, _) = ls.register(entry, Sighting::new(ObjectId(1), 0, a, 5.0), 10.0, 50.0).unwrap();

    // Move across leaves, then go silent past the TTL.
    let out = ls.update(agent, Sighting::new(ObjectId(1), SECOND, b, 5.0)).unwrap();
    let UpdateOutcome::NewAgent { agent: new_agent, .. } = out else {
        panic!("expected handover")
    };
    ls.advance_time(60 * SECOND);
    assert!(ls.pos_query(entry, ObjectId(1)).is_err(), "expired after silence");
    for sid in 0..ls.hierarchy().len() as u32 {
        assert!(ls.server(ServerId(sid)).visitors().get(ObjectId(1)).is_none());
    }
    let _ = new_agent;

    // Re-registration works cleanly after expiry.
    let entry_b = ls.leaf_for(b);
    let (agent2, _) =
        ls.register(entry_b, Sighting::new(ObjectId(1), 61 * SECOND, b, 5.0), 10.0, 50.0).unwrap();
    assert_eq!(agent2, entry_b);
    assert!(ls.pos_query(entry, ObjectId(1)).is_ok());
}

#[test]
fn interleaved_queries_during_handover_storm() {
    // Queries issued while many handovers are in flight must still
    // resolve (possibly to the pre- or post-handover position, but
    // never hang or corrupt state).
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 0xF00D);
    let mut rng = StdRng::seed_from_u64(1);

    let n = 30u64;
    let mut agents = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(1.0..999.0), rng.random_range(1.0..999.0));
        let entry = ls.leaf_for(p);
        let (agent, _) =
            ls.register(entry, Sighting::new(ObjectId(oid), 0, p, 5.0), 10.0, 50.0).unwrap();
        agents.push(agent);
    }

    for step in 0..50 {
        let oid = rng.random_range(0..n);
        let p = Point::new(rng.random_range(1.0..999.0), rng.random_range(1.0..999.0));
        match ls
            .update(agents[oid as usize], Sighting::new(ObjectId(oid), step, p, 5.0))
            .unwrap()
        {
            UpdateOutcome::NewAgent { agent, .. } => agents[oid as usize] = agent,
            UpdateOutcome::Ack { .. } => {}
            UpdateOutcome::OutOfServiceArea => panic!("inside area"),
        }
        // Immediately query a random other object from a random entry.
        let target = ObjectId(rng.random_range(0..n));
        let entry = ls.leaf_for(Point::new(rng.random_range(1.0..999.0), rng.random_range(1.0..999.0)));
        let ld = ls.pos_query(entry, target).unwrap();
        assert!(area.contains(ld.pos));
    }
    // Nothing leaked in pending tables once quiet.
    ls.run_until_quiet();
    for sid in 0..ls.hierarchy().len() as u32 {
        assert_eq!(ls.server(ServerId(sid)).pending_count(), 0, "pending leak at s{sid}");
    }
}
