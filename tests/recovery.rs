//! Crash/recovery tests for the paper's §5 durability model: the
//! visitor database (forwarding paths, registration info) survives
//! restarts; the sighting database is volatile and restored on demand.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::{LsError, ObjectId, Sighting};
use hiloc::core::node::{DurabilityOptions, ServerOptions};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect};
use hiloc::storage::SyncPolicy;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hiloc-recovery-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_deployment(dir: &TempDir, seed: u64) -> SimDeployment {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let opts = ServerOptions {
        durability: Some(DurabilityOptions { dir: dir.0.clone(), policy: SyncPolicy::OsFlush }),
        ..Default::default()
    };
    SimDeployment::new(h, opts, seed)
}

#[test]
fn forwarding_paths_survive_full_restart() {
    let dir = TempDir::new("paths");
    let mut ls = durable_deployment(&dir, 1);
    let positions = [Point::new(100.0, 100.0), Point::new(900.0, 100.0), Point::new(100.0, 900.0)];
    for (i, p) in positions.iter().enumerate() {
        let entry = ls.leaf_for(*p);
        ls.register(entry, Sighting::new(ObjectId(i as u64), 0, *p, 10.0), 25.0, 100.0).unwrap();
    }
    ls.run_until_quiet();

    // Crash-restart every server: volatile sightings are gone, durable
    // visitor records recovered.
    for cfg in ls.hierarchy().servers().to_vec() {
        ls.restart_server(cfg.id);
    }
    let root = ls.hierarchy().root();
    assert_eq!(ls.server(root).visitor_count(), 3, "root forwarding refs recovered");
    for (i, p) in positions.iter().enumerate() {
        let agent = ls.leaf_for(*p);
        assert_eq!(ls.server(agent).visitor_count(), 1, "agent record for object {i}");
        assert_eq!(ls.server(agent).sighting_count(), 0, "sightings are volatile");
    }
}

#[test]
fn position_query_after_restart_probes_and_recovers_on_update() {
    let dir = TempDir::new("probe");
    let mut ls = durable_deployment(&dir, 2);
    let p = Point::new(100.0, 100.0);
    let entry = ls.leaf_for(p);
    let (agent, _) =
        ls.register(entry, Sighting::new(ObjectId(7), 0, p, 10.0), 25.0, 100.0).unwrap();
    ls.run_until_quiet();

    ls.restart_server(agent);

    // The query cannot be answered yet (sighting lost) — the server
    // asks the registrant for a fresh update (restore-on-demand, §5).
    // At least one probe is sent for the query itself; the path
    // keep-alive additionally probes restore-pending records
    // proactively each refresh period, so the count is a floor.
    let err = ls.pos_query(entry, ObjectId(7)).unwrap_err();
    assert!(matches!(err, LsError::UnknownObject(_)));
    assert!(ls.server(agent).stats().probes_sent >= 1);
    ls.run_until_quiet(); // let the in-flight probe reach the object
    let probes = ls.drain_client(SimDeployment::object_endpoint(ObjectId(7)));
    assert!(
        probes.iter().any(|m| m.label() == "positionProbe"),
        "tracked object must receive a probe, got {probes:?}"
    );

    // The object reports its position; the service answers again.
    ls.update(agent, Sighting::new(ObjectId(7), 5_000_000, p, 10.0)).unwrap();
    let ld = ls.pos_query(entry, ObjectId(7)).unwrap();
    assert_eq!(ld.pos, p);
}

#[test]
fn restart_preserves_queryability_of_other_leaves() {
    let dir = TempDir::new("others");
    let mut ls = durable_deployment(&dir, 3);
    let a = Point::new(100.0, 100.0);
    let b = Point::new(900.0, 900.0);
    for (i, p) in [a, b].iter().enumerate() {
        let entry = ls.leaf_for(*p);
        ls.register(entry, Sighting::new(ObjectId(i as u64), 0, *p, 10.0), 25.0, 100.0).unwrap();
    }
    ls.run_until_quiet();

    // Restart only the leaf owning object 0.
    let crashed = ls.leaf_for(a);
    ls.restart_server(crashed);

    // Object 1 on another leaf is still fully queryable from anywhere,
    // including from the restarted leaf as entry.
    let ld = ls.pos_query(crashed, ObjectId(1)).unwrap();
    assert_eq!(ld.pos, b);
}

#[test]
fn without_durability_restart_loses_registrations() {
    // Control experiment: a volatile deployment forgets everything.
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0));
    let h = HierarchyBuilder::grid(area, 1, 2).build().unwrap();
    let mut ls = SimDeployment::new(h, ServerOptions::default(), 4);
    let p = Point::new(100.0, 100.0);
    let entry = ls.leaf_for(p);
    let (agent, _) =
        ls.register(entry, Sighting::new(ObjectId(1), 0, p, 10.0), 25.0, 100.0).unwrap();
    ls.run_until_quiet();

    ls.restart_server(agent);
    assert_eq!(ls.server(agent).visitor_count(), 0);
    // No probe possible — registration info is gone with the record.
    let err = ls.pos_query(agent, ObjectId(1)).unwrap_err();
    assert!(matches!(err, LsError::UnknownObject(_) | LsError::Timeout));
}
