//! Property tests: the *distributed* service must agree with a local
//! brute-force evaluation of the paper's query semantics, for random
//! populations, random query parameters and random hierarchy shapes.

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::semantics::{qualifies_for_range, select_neighbors};
use hiloc::core::model::{LocationDescriptor, ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect, Region};
use proptest::prelude::*;

const AREA: f64 = 1_000.0;

#[derive(Debug, Clone)]
struct Population {
    positions: Vec<(f64, f64)>,
}

fn population() -> impl Strategy<Value = Population> {
    prop::collection::vec((1.0..AREA - 1.0, 1.0..AREA - 1.0), 1..40)
        .prop_map(|positions| Population { positions })
}

fn hierarchy_shape() -> impl Strategy<Value = (u32, u32)> {
    prop_oneof![Just((0, 2)), Just((1, 2)), Just((2, 2)), Just((1, 3))]
}

fn deploy(pop: &Population, shape: (u32, u32)) -> (SimDeployment, Vec<(ObjectId, LocationDescriptor)>) {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(AREA, AREA));
    let h = HierarchyBuilder::grid(area, shape.0, shape.1).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 77);
    let mut oracle = Vec::new();
    for (i, &(x, y)) in pop.positions.iter().enumerate() {
        let p = Point::new(x, y);
        let entry = ls.leaf_for(p);
        let oid = ObjectId(i as u64);
        let (_, offered) =
            ls.register(entry, Sighting::new(oid, 0, p, 5.0), 25.0, 100.0).unwrap();
        oracle.push((oid, LocationDescriptor::new(p, offered)));
    }
    ls.run_until_quiet();
    (ls, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Distributed range queries return exactly the objects the
    /// semantics predicate selects.
    #[test]
    fn distributed_range_query_matches_oracle(
        pop in population(),
        shape in hierarchy_shape(),
        cx in 0.0..AREA,
        cy in 0.0..AREA,
        extent in 10.0..600.0f64,
        req_acc in 10.0..200.0f64,
        req_overlap in 0.1..1.0f64,
        entry_x in 1.0..AREA - 1.0,
        entry_y in 1.0..AREA - 1.0,
    ) {
        let (mut ls, oracle) = deploy(&pop, shape);
        let region = Region::from(Rect::from_center_size(Point::new(cx, cy), extent, extent));
        let query = RangeQuery::new(region.clone(), req_acc, req_overlap);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        let ans = ls.range_query(entry, query).unwrap();
        prop_assert!(ans.complete);

        let mut got: Vec<u64> = ans.objects.iter().map(|(o, _)| o.0).collect();
        got.sort();
        let mut expect: Vec<u64> = oracle
            .iter()
            .filter(|(_, ld)| qualifies_for_range(&region, ld, req_acc, req_overlap))
            .map(|(o, _)| o.0)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Distributed nearest-neighbor queries select the same object and
    /// near set as the local semantics.
    #[test]
    fn distributed_nn_query_matches_oracle(
        pop in population(),
        shape in hierarchy_shape(),
        px in 0.0..AREA,
        py in 0.0..AREA,
        req_acc in 10.0..200.0f64,
        near_qual in 0.0..300.0f64,
        entry_x in 1.0..AREA - 1.0,
        entry_y in 1.0..AREA - 1.0,
    ) {
        let (mut ls, oracle) = deploy(&pop, shape);
        let p = Point::new(px, py);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        let ans = ls.neighbor_query(entry, p, req_acc, near_qual).unwrap();
        prop_assert!(ans.complete);

        let (expect_nearest, expect_near) = select_neighbors(p, &oracle, req_acc, near_qual);
        prop_assert_eq!(
            ans.nearest.map(|(o, _)| o),
            expect_nearest.map(|(o, _)| o),
            "nearest mismatch"
        );
        let mut got_near: Vec<u64> = ans.near_set.iter().map(|(o, _)| o.0).collect();
        got_near.sort();
        let mut want_near: Vec<u64> = expect_near.iter().map(|(o, _)| o.0).collect();
        want_near.sort();
        prop_assert_eq!(got_near, want_near, "near-set mismatch");
    }

    /// Position queries from arbitrary entries return the registered
    /// descriptor for every object.
    #[test]
    fn distributed_pos_query_matches_oracle(
        pop in population(),
        shape in hierarchy_shape(),
        entry_x in 1.0..AREA - 1.0,
        entry_y in 1.0..AREA - 1.0,
    ) {
        let (mut ls, oracle) = deploy(&pop, shape);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        for (oid, ld) in &oracle {
            let got = ls.pos_query(entry, *oid).unwrap();
            prop_assert_eq!(got.pos, ld.pos);
            prop_assert_eq!(got.acc_m, ld.acc_m);
        }
    }
}
