//! Property tests: the *distributed* service must agree with a local
//! brute-force evaluation of the paper's query semantics, for random
//! populations, random query parameters and random hierarchy shapes.
//! Runs on the in-tree seeded harness ([`hiloc_util::prop`]).

use hiloc::core::area::HierarchyBuilder;
use hiloc::core::model::semantics::{qualifies_for_range, select_neighbors};
use hiloc::core::model::{LocationDescriptor, ObjectId, RangeQuery, Sighting};
use hiloc::core::runtime::SimDeployment;
use hiloc::geo::{Point, Rect, Region};
use hiloc_util::prop::{check, Gen};
use hiloc_util::rng::RngExt;

const AREA: f64 = 1_000.0;
const CASES: u32 = 24;

#[derive(Debug, Clone)]
struct Population {
    positions: Vec<(f64, f64)>,
}

fn population(g: &mut Gen) -> Population {
    let n = g.random_range(1..40usize);
    let positions = (0..n)
        .map(|_| {
            let x = g.random_range(1.0..AREA - 1.0);
            let y = g.random_range(1.0..AREA - 1.0);
            (x, y)
        })
        .collect();
    Population { positions }
}

fn hierarchy_shape(g: &mut Gen) -> (u32, u32) {
    *g.choose(&[(0, 2), (1, 2), (2, 2), (1, 3)]).expect("non-empty")
}

fn deploy(pop: &Population, shape: (u32, u32)) -> (SimDeployment, Vec<(ObjectId, LocationDescriptor)>) {
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(AREA, AREA));
    let h = HierarchyBuilder::grid(area, shape.0, shape.1).build().unwrap();
    let mut ls = SimDeployment::new(h, Default::default(), 77);
    let mut oracle = Vec::new();
    for (i, &(x, y)) in pop.positions.iter().enumerate() {
        let p = Point::new(x, y);
        let entry = ls.leaf_for(p);
        let oid = ObjectId(i as u64);
        let (_, offered) =
            ls.register(entry, Sighting::new(oid, 0, p, 5.0), 25.0, 100.0).unwrap();
        oracle.push((oid, LocationDescriptor::new(p, offered)));
    }
    ls.run_until_quiet();
    (ls, oracle)
}

/// Distributed range queries return exactly the objects the semantics
/// predicate selects.
#[test]
fn distributed_range_query_matches_oracle() {
    check(CASES, |g| {
        let pop = population(g);
        let shape = hierarchy_shape(g);
        let cx = g.random_range(0.0..AREA);
        let cy = g.random_range(0.0..AREA);
        let extent = g.random_range(10.0..600.0);
        let req_acc = g.random_range(10.0..200.0);
        let req_overlap = g.random_range(0.1..1.0);
        let entry_x = g.random_range(1.0..AREA - 1.0);
        let entry_y = g.random_range(1.0..AREA - 1.0);

        let (mut ls, oracle) = deploy(&pop, shape);
        let region = Region::from(Rect::from_center_size(Point::new(cx, cy), extent, extent));
        let query = RangeQuery::new(region.clone(), req_acc, req_overlap);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        let ans = ls.range_query(entry, query).unwrap();
        assert!(ans.complete);

        let mut got: Vec<u64> = ans.objects.iter().map(|(o, _)| o.0).collect();
        got.sort();
        let mut expect: Vec<u64> = oracle
            .iter()
            .filter(|(_, ld)| qualifies_for_range(&region, ld, req_acc, req_overlap))
            .map(|(o, _)| o.0)
            .collect();
        expect.sort();
        assert_eq!(got, expect);
    });
}

/// Distributed nearest-neighbor queries select the same object and
/// near set as the local semantics.
#[test]
fn distributed_nn_query_matches_oracle() {
    check(CASES, |g| {
        let pop = population(g);
        let shape = hierarchy_shape(g);
        let px = g.random_range(0.0..AREA);
        let py = g.random_range(0.0..AREA);
        let req_acc = g.random_range(10.0..200.0);
        let near_qual = g.random_range(0.0..300.0);
        let entry_x = g.random_range(1.0..AREA - 1.0);
        let entry_y = g.random_range(1.0..AREA - 1.0);

        let (mut ls, oracle) = deploy(&pop, shape);
        let p = Point::new(px, py);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        let ans = ls.neighbor_query(entry, p, req_acc, near_qual).unwrap();
        assert!(ans.complete);

        let (expect_nearest, expect_near) = select_neighbors(p, &oracle, req_acc, near_qual);
        assert_eq!(
            ans.nearest.map(|(o, _)| o),
            expect_nearest.map(|(o, _)| o),
            "nearest mismatch"
        );
        let mut got_near: Vec<u64> = ans.near_set.iter().map(|(o, _)| o.0).collect();
        got_near.sort();
        let mut want_near: Vec<u64> = expect_near.iter().map(|(o, _)| o.0).collect();
        want_near.sort();
        assert_eq!(got_near, want_near, "near-set mismatch");
    });
}

/// Position queries from arbitrary entries return the registered
/// descriptor for every object.
#[test]
fn distributed_pos_query_matches_oracle() {
    check(CASES, |g| {
        let pop = population(g);
        let shape = hierarchy_shape(g);
        let entry_x = g.random_range(1.0..AREA - 1.0);
        let entry_y = g.random_range(1.0..AREA - 1.0);

        let (mut ls, oracle) = deploy(&pop, shape);
        let entry = ls.leaf_for(Point::new(entry_x, entry_y));
        for (oid, ld) in &oracle {
            let got = ls.pos_query(entry, *oid).unwrap();
            assert_eq!(got.pos, ld.pos);
            assert_eq!(got.acc_m, ld.acc_m);
        }
    });
}
